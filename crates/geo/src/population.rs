//! Region population figures (2020 census).

use crate::state::State;

/// Resident population of a region (2020 census).
///
/// The trends simulator scales each region's synthetic search population by
/// this figure. Because the service normalizes interest *within* a region,
/// population does not directly inflate spike counts — it controls how
/// large the service's random samples are, and therefore how noisy small
/// regions' indices look (exactly the effect the paper's re-fetch averaging
/// exists to tame).
pub fn population(state: State) -> u64 {
    state.census_population()
}

/// Total population over all study regions.
pub fn total_population() -> u64 {
    State::ALL.iter().map(|s| population(*s)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn california_is_largest() {
        let max = State::ALL
            .iter()
            .max_by_key(|s| population(**s))
            .copied()
            .unwrap();
        assert_eq!(max, State::CA);
    }

    #[test]
    fn wyoming_is_smallest() {
        let min = State::ALL
            .iter()
            .min_by_key(|s| population(**s))
            .copied()
            .unwrap();
        assert_eq!(min, State::WY);
    }

    #[test]
    fn total_close_to_us_population() {
        let t = total_population();
        // 2020 census: ~331.4M for the 50 states + DC.
        assert!((330_000_000..335_000_000).contains(&t), "total {t}");
    }
}

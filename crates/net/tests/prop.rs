//! Property tests: HTTP wire-format round trips, truncation torture,
//! retry-loop termination under total fault rates, and rate-limiter
//! conservation.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use sift_net::http::{parse_request, parse_response, serialize_request, serialize_response};
use sift_net::{
    BreakerConfig, BreakerState, CircuitBreaker, FaultKind, FaultPlan, Headers, HttpClient, Method,
    RateLimitDecision, RateLimiter, RateLimiterConfig, Request, Response, RetryPolicy, Router,
    Server, StatusCode,
};
use std::time::Duration;

fn token() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9-]{0,15}".prop_map(|s| s)
}

fn header_value() -> impl Strategy<Value = String> {
    "[ -~&&[^\r\n]]{0,30}".prop_map(|s| s.trim().to_owned())
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        prop_oneof![Just(Method::Get), Just(Method::Post)],
        "/[a-z0-9/]{0,20}",
        proptest::collection::vec((token(), header_value()), 0..6),
        proptest::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(|(method, path, headers, body)| {
            let mut h = Headers::new();
            for (name, value) in headers {
                // content-length is owned by the serializer.
                if !name.eq_ignore_ascii_case("content-length") {
                    h.set(&name, value);
                }
            }
            Request {
                method,
                path,
                headers: h,
                body: Bytes::from(body),
            }
        })
}

proptest! {
    /// serialize ∘ parse is the identity on requests (up to the
    /// recomputed content-length).
    #[test]
    fn request_round_trip(req in request_strategy()) {
        let wire = serialize_request(&req);
        let mut buf = BytesMut::from(&wire[..]);
        let back = parse_request(&mut buf).expect("parse ok").expect("complete");
        prop_assert!(buf.is_empty());
        prop_assert_eq!(back.method, req.method);
        prop_assert_eq!(&back.path, &req.path);
        prop_assert_eq!(&back.body, &req.body);
        for (name, value) in req.headers.iter() {
            prop_assert_eq!(back.headers.get(name), Some(value));
        }
    }

    /// Responses round-trip likewise, for every status code we emit.
    #[test]
    fn response_round_trip(code in 100u16..600, body in proptest::collection::vec(any::<u8>(), 0..300)) {
        let resp = Response {
            status: StatusCode(code),
            headers: Headers::new(),
            body: Bytes::from(body),
        };
        let wire = serialize_response(&resp);
        let mut buf = BytesMut::from(&wire[..]);
        let back = parse_response(&mut buf).expect("parse ok").expect("complete");
        prop_assert_eq!(back.status.0, code);
        prop_assert_eq!(&back.body, &resp.body);
    }

    /// Feeding the wire bytes one chunk at a time parses the same message
    /// (incremental parsing never depends on chunk boundaries).
    #[test]
    fn incremental_parse_chunking(req in request_strategy(), chunk in 1usize..40) {
        let wire = serialize_request(&req);
        let mut buf = BytesMut::new();
        let mut parsed = None;
        for piece in wire.chunks(chunk) {
            buf.extend_from_slice(piece);
            if let Some(msg) = parse_request(&mut buf).expect("parse ok") {
                parsed = Some(msg);
                break;
            }
        }
        let back = parsed.expect("message completes");
        prop_assert_eq!(back.method, req.method);
        prop_assert_eq!(back.path, req.path);
        prop_assert_eq!(back.body, req.body);
    }

    /// The parser never panics on arbitrary junk: it returns an error or
    /// waits for more input.
    #[test]
    fn parser_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut buf = BytesMut::from(&junk[..]);
        let _ = parse_request(&mut buf);
        let mut buf = BytesMut::from(&junk[..]);
        let _ = parse_response(&mut buf);
    }

    /// Truncation torture: every byte-truncated prefix of a valid
    /// serialized response is incomplete input — the parser waits for
    /// more bytes (`Ok(None)`), never completes early, errors or panics.
    /// This is exactly the wire a `Truncate` fault injection produces.
    #[test]
    fn truncated_response_prefixes_parse_cleanly(
        code in 100u16..600,
        body in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let resp = Response {
            status: StatusCode(code),
            headers: Headers::new(),
            body: Bytes::from(body),
        };
        let wire = serialize_response(&resp);
        for cut in 0..wire.len() {
            let mut buf = BytesMut::from(&wire[..cut]);
            let parsed = parse_response(&mut buf);
            prop_assert!(
                matches!(parsed, Ok(None)),
                "prefix {}/{} must be incomplete, got {:?}",
                cut,
                wire.len(),
                parsed.map(|r| r.map(|m| m.status))
            );
        }
        let mut buf = BytesMut::from(&wire[..]);
        prop_assert!(parse_response(&mut buf).expect("full wire parses").is_some());
    }

    /// The same torture for requests (a client cut off mid-write).
    #[test]
    fn truncated_request_prefixes_parse_cleanly(req in request_strategy()) {
        let wire = serialize_request(&req);
        for cut in 0..wire.len() {
            let mut buf = BytesMut::from(&wire[..cut]);
            let parsed = parse_request(&mut buf);
            prop_assert!(
                matches!(parsed, Ok(None)),
                "prefix {}/{} must be incomplete, got {:?}",
                cut,
                wire.len(),
                parsed.map(|r| r.map(|m| m.path))
            );
        }
    }

    /// Circuit-breaker liveness: whatever sequence of successes, failures,
    /// admission checks and clock skips is thrown at it, the breaker never
    /// wedges — recovery (cooldown, probe admission, enough successes)
    /// always reaches `Closed`, and every transition is between distinct
    /// adjacent states.
    #[test]
    fn breaker_transitions_never_deadlock(
        ops in proptest::collection::vec(
            prop_oneof![
                Just(0u8), // record_success
                Just(1u8), // record_failure
                Just(2u8), // allow (may flip open -> half-open)
                Just(3u8), // fast_forward past the cooldown
                Just(4u8), // fast_forward a sliver of the cooldown
            ],
            0..80,
        ),
        failure_threshold in 1u32..6,
        success_threshold in 1u32..4,
        cooldown_ms in 1u64..5_000,
    ) {
        let cooldown = Duration::from_millis(cooldown_ms);
        let breaker = CircuitBreaker::new(
            "prop",
            BreakerConfig {
                failure_threshold,
                cooldown,
                success_threshold,
            },
        );
        for op in ops {
            match op {
                0 => breaker.record_success(),
                1 => breaker.record_failure(),
                2 => {
                    let _ = breaker.allow();
                }
                3 => breaker.fast_forward(cooldown + Duration::from_millis(1)),
                _ => breaker.fast_forward(Duration::from_millis(cooldown_ms / 2)),
            }
        }
        // No transition is a self-loop, and none skips half-open on the
        // way back from open.
        for (from, to) in breaker.transitions() {
            prop_assert!(from != to, "self-loop transition {from:?}");
            prop_assert!(
                !(from == BreakerState::Open && to == BreakerState::Closed),
                "open must recover via half-open"
            );
        }
        // Liveness: from any reachable state, cooldown + probe +
        // successes always reaches Closed.
        breaker.fast_forward(cooldown + Duration::from_millis(1));
        prop_assert!(breaker.allow(), "post-cooldown probe must be admitted");
        for _ in 0..success_threshold {
            breaker.record_success();
        }
        prop_assert_eq!(breaker.state(), BreakerState::Closed);
        prop_assert!(breaker.allow(), "closed breaker admits traffic");
    }

    /// Token-bucket conservation: over any request pattern, the number of
    /// allowed requests never exceeds capacity + refill * elapsed.
    #[test]
    fn rate_limiter_conservation(
        gaps in proptest::collection::vec(0u64..2000, 1..60),
        capacity in 1.0f64..20.0,
        refill in 0.5f64..20.0,
    ) {
        let limiter = RateLimiter::new(RateLimiterConfig {
            capacity,
            refill_per_sec: refill,
            ..RateLimiterConfig::default()
        });
        let mut now = 0u64;
        let mut allowed = 0u64;
        for gap in gaps.iter() {
            now += gap;
            if limiter.check("k", now) == RateLimitDecision::Allowed {
                allowed += 1;
            }
        }
        let budget = capacity + refill * now as f64 / 1000.0;
        prop_assert!(
            (allowed as f64) <= budget + 1.0,
            "allowed {} exceeds budget {}",
            allowed,
            budget
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// At a 100% connection-reset rate, `send_with_retry` terminates:
    /// it makes exactly `max_attempts` tries (each retry counted under
    /// `status="io"`) and then surfaces the I/O error — no infinite loop,
    /// no hang, whatever the fault seed.
    #[test]
    fn retry_loop_terminates_under_total_faults(
        max_attempts in 1u32..4,
        seed in 0u64..1_000,
    ) {
        let router = Router::new().route(Method::Get, "/ping", |_| {
            Response::text(StatusCode(200), "pong")
        });
        let server = Server::new(router)
            .with_fault_plan(FaultPlan::new(seed).everywhere(&[(FaultKind::Reset, 1.0)]))
            .bind("127.0.0.1:0")
            .expect("bind");
        let client = HttpClient::new(server.addr()).with_retry(RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter: true,
        });
        let io_retries = sift_obs::counter("sift_client_retries_total", &[("status", "io")]);
        let before = io_retries.get();
        let req = Request {
            method: Method::Get,
            path: "/ping".into(),
            headers: Headers::new(),
            body: Bytes::new(),
        };
        let result = client.send_with_retry(&req);
        prop_assert!(result.is_err(), "100% resets cannot produce a response");
        prop_assert_eq!(io_retries.get() - before, u64::from(max_attempts - 1));
        server.shutdown();
    }
}

//! Networking substrate: a small, dependency-light HTTP/1.1 stack.
//!
//! SIFT's collection module crawls the trends service over HTTP, subject
//! to IP-based rate limiting (§4, *Implementation*). No HTTP crate is in
//! the sanctioned dependency set, so this crate implements the slice of
//! HTTP/1.1 the system needs, production-grade within that slice:
//!
//! * [`http`] — request/response types, an incremental zero-copy-ish
//!   parser over [`bytes`], and serializers; `Content-Length` framing,
//!   keep-alive and `Connection: close`, hard limits on head and body
//!   sizes.
//! * [`server`] — a threaded TCP server: acceptor thread + worker pool fed
//!   over a crossbeam channel, per-connection keep-alive loops, graceful
//!   shutdown.
//! * [`router`] — exact-match method/path routing with typed JSON helpers.
//! * [`client`] — a pooling, retrying client with timeouts; honours
//!   `Retry-After` on 429 responses, applies full-jitter backoff, and can
//!   carry a circuit breaker, shared retry budget and per-request
//!   deadline.
//! * [`admission`] — server-side admission control: bounded accept queue
//!   and in-flight cap shedding excess load with `503 + Retry-After`,
//!   deadline-aware rejection, graceful drain.
//! * [`breaker`] — the client-side circuit breaker
//!   (closed → open → half-open) and the Finagle-style retry budget that
//!   stops fleet-wide retry storms.
//! * [`ratelimit`] — the per-client token-bucket limiter the service runs,
//!   which is exactly why the paper's fetcher spreads load across units
//!   "hosted behind separate IP addresses".
//! * [`fault`] — deterministic, seedable fault injection (error bursts,
//!   `Retry-After`-less 429 storms, connection resets, truncated bodies,
//!   read stalls) so the whole pipeline can be chaos-tested reproducibly.
//!
//! Threads rather than an async runtime: the workload is a few dozen
//! long-lived connections moving small JSON bodies, squarely in the regime
//! where the async-Rust guides themselves recommend blocking I/O on a
//! thread pool over pulling in a runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod client;
pub mod fault;
pub mod http;
pub mod obs;
pub mod ratelimit;
pub mod router;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionController, ParkedSlot, ShedReason};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, RetryBudget, RetryBudgetConfig};
pub use client::{ClientError, HttpClient, RetryPolicy};
pub use fault::{
    FaultInjector, FaultKind, FaultPlan, LinkAction, LinkRule, NemesisDriver, NemesisFaultKind,
    NemesisOp, NemesisPlan, NemesisState, NemesisStep, RouteFaults,
};
pub use http::{Headers, Method, ParseError, Request, Response, StatusCode};
pub use obs::{mount_observability, METRICS_CONTENT_TYPE};
pub use ratelimit::{RateLimitDecision, RateLimiter, RateLimiterConfig};
pub use router::Router;
pub use server::{Server, ServerHandle};

/// The header a fetcher unit uses to declare its source identity.
///
/// The paper's collection module hosts fetcher units "behind separate IP
/// addresses" to spread the service's IP-keyed rate limiting. The standard
/// library cannot bind a specific source address before connecting, so
/// units declare their identity in this header and the service's limiter
/// keys on it (falling back to the TCP peer address when absent) — the
/// same mechanism, observable end-to-end over real sockets. See DESIGN.md.
pub const FETCHER_IDENTITY_HEADER: &str = "x-fetcher-ip";

/// The header carrying a request's remaining deadline budget in
/// milliseconds.
///
/// Contract (see DESIGN.md, "Overload model"): the client sets it to the
/// time left before its caller stops caring about the answer; the server
/// compares it against how long the request waited before being picked up
/// and sheds work whose budget is already spent with `503 + Retry-After`
/// instead of computing an answer nobody will read. A missing header
/// means "no deadline"; a value of `0` is by definition already spent.
pub const X_SIFT_DEADLINE_MS: &str = "x-sift-deadline-ms";

/// The header carrying a request's trace context across the HTTP
/// boundary.
///
/// Value format: `<trace_id hex16>-<span_id hex16>`
/// ([`sift_obs::SpanContext::to_header`]). The client stamps it from the
/// span active at send time — under retries that is the attempt span, so
/// each attempt's server-side work parents onto that very attempt — and
/// the server reopens the context around dispatch, joining fetcher →
/// HTTP → trends spans into one trace tree even across retries, breaker
/// probes and fault-injected replays. A missing or malformed header
/// starts a detached server-side trace; it never fails the request.
pub const X_SIFT_TRACE: &str = "x-sift-trace";

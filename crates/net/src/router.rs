//! Exact-match request routing.

use crate::http::{Method, Request, Response, StatusCode};
use std::collections::HashMap;

/// A request handler.
pub type Handler = Box<dyn Fn(&Request) -> Response + Send + Sync>;

/// Routes requests to handlers by method and exact path (the query string,
/// if any, is ignored for matching and left on the request).
#[derive(Default)]
pub struct Router {
    routes: HashMap<(Method, String), Handler>,
}

impl Router {
    /// An empty router: every request 404s.
    pub fn new() -> Self {
        Router::default()
    }

    /// Registers a handler. Re-registering a route replaces the handler.
    pub fn route(
        mut self,
        method: Method,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes
            .insert((method, path.to_owned()), Box::new(handler));
        self
    }

    /// Dispatches a request: 404 for unknown paths, 405 when the path
    /// exists under a different method.
    pub fn dispatch(&self, req: &Request) -> Response {
        let path = req.path.split('?').next().unwrap_or("").to_owned();
        if let Some(h) = self.routes.get(&(req.method, path.clone())) {
            return h(req);
        }
        let other_method = match req.method {
            Method::Get => Method::Post,
            Method::Post => Method::Get,
        };
        if self.routes.contains_key(&(other_method, path)) {
            Response::text(StatusCode::METHOD_NOT_ALLOWED, "method not allowed")
        } else {
            Response::text(StatusCode::NOT_FOUND, "not found")
        }
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        Router::new()
            .route(Method::Get, "/health", |_| {
                Response::text(StatusCode::OK, "ok")
            })
            .route(Method::Post, "/api/frame", |req| {
                Response::text(StatusCode::OK, format!("got {} bytes", req.body.len()))
            })
    }

    #[test]
    fn dispatch_matches_method_and_path() {
        let r = router();
        let resp = r.dispatch(&Request::get("/health"));
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(&resp.body[..], b"ok");
    }

    #[test]
    fn query_string_ignored_for_matching() {
        let r = router();
        let resp = r.dispatch(&Request::get("/health?verbose=1"));
        assert_eq!(resp.status, StatusCode::OK);
    }

    #[test]
    fn unknown_path_404s() {
        let r = router();
        assert_eq!(
            r.dispatch(&Request::get("/nope")).status,
            StatusCode::NOT_FOUND
        );
    }

    #[test]
    fn wrong_method_405s() {
        let r = router();
        let resp = r.dispatch(&Request::get("/api/frame"));
        assert_eq!(resp.status, StatusCode::METHOD_NOT_ALLOWED);
    }

    #[test]
    fn len_and_replace() {
        let r = router().route(Method::Get, "/health", |_| {
            Response::text(StatusCode::OK, "replaced")
        });
        assert_eq!(r.len(), 2);
        assert_eq!(&r.dispatch(&Request::get("/health")).body[..], b"replaced");
    }
}

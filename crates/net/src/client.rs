//! Pooling, retrying HTTP client.
//!
//! Beyond connection reuse and status-aware retries, the client carries
//! the outbound half of the overload model (DESIGN.md, "Overload model"):
//! an optional per-endpoint [`CircuitBreaker`] that fails fast while the
//! server is melting down, an optional shared [`RetryBudget`] so a
//! flapping endpoint cannot trigger a fleet-wide retry storm, and an
//! optional per-request deadline that is both enforced locally (a retry
//! never fires if it cannot fit in the remaining budget) and propagated
//! to the server as [`crate::X_SIFT_DEADLINE_MS`] so expired work is shed
//! there too. Retry backoff applies full jitter drawn from a per-request
//! seeded RNG stream, keeping chaos replays deterministic.

use crate::breaker::{CircuitBreaker, RetryBudget};
use crate::http::{parse_response, serialize_request, ParseError, Request, Response, StatusCode};
use crate::{FETCHER_IDENTITY_HEADER, X_SIFT_DEADLINE_MS, X_SIFT_TRACE};
use bytes::BytesMut;
use parking_lot::Mutex;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read or write).
    Io(std::io::Error),
    /// The response could not be parsed.
    Parse(ParseError),
    /// The server kept answering 429 past the retry budget.
    RateLimited {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A non-success status after retries were exhausted (or the status is
    /// not retryable).
    Status {
        /// The final status.
        status: StatusCode,
        /// Body text (truncated) for diagnostics.
        body: String,
    },
    /// The response body was not the expected JSON document.
    Json(serde_json::Error),
    /// The endpoint's circuit breaker is open: the request failed fast
    /// without touching the network.
    BreakerOpen {
        /// The breaker's endpoint label.
        endpoint: String,
    },
    /// The request's deadline budget ran out (or the next retry could not
    /// fit in what remained).
    DeadlineExceeded {
        /// Time already spent, in milliseconds.
        elapsed_ms: u64,
        /// The configured budget, in milliseconds.
        budget_ms: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Parse(e) => write!(f, "bad response: {e}"),
            ClientError::RateLimited { attempts } => {
                write!(f, "rate limited after {attempts} attempts")
            }
            ClientError::Status { status, body } => write!(f, "server said {status}: {body}"),
            ClientError::Json(e) => write!(f, "bad JSON payload: {e}"),
            ClientError::BreakerOpen { endpoint } => {
                write!(f, "circuit breaker open for endpoint {endpoint}")
            }
            ClientError::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms}ms spent of {budget_ms}ms"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

/// Retry behaviour for transient failures (429 and 5xx).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Base backoff; attempt `n` waits up to `base * 2^(n-1)` unless the
    /// server sent a `Retry-After`.
    pub base_backoff: Duration,
    /// Ceiling on any single wait.
    pub max_backoff: Duration,
    /// Apply full jitter to backoff waits (a uniform draw in
    /// `[0, backoff]` from a per-request seeded RNG stream). Server
    /// `Retry-After` hints are never jittered.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            jitter: true,
        }
    }
}

/// A blocking HTTP/1.1 client with connection reuse.
///
/// Connections are pooled per client instance; a request taken over a
/// pooled connection that turns out to be dead is retried once on a fresh
/// connection before the failure is surfaced (the standard keep-alive
/// race).
pub struct HttpClient {
    addr: SocketAddr,
    identity: Option<String>,
    pool: Mutex<Vec<TcpStream>>,
    timeout: Duration,
    retry: RetryPolicy,
    breaker: Option<Arc<CircuitBreaker>>,
    retry_budget: Option<Arc<RetryBudget>>,
    deadline: Option<Duration>,
    jitter_seed: u64,
}

impl HttpClient {
    /// A client for one server address.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            identity: None,
            pool: Mutex::new(Vec::new()),
            timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
            breaker: None,
            retry_budget: None,
            deadline: None,
            jitter_seed: 0,
        }
    }

    /// Declares this client's fetcher identity (sent as the
    /// [`FETCHER_IDENTITY_HEADER`] on every request).
    pub fn with_identity(mut self, identity: impl Into<String>) -> Self {
        self.identity = Some(identity.into());
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the per-operation socket timeout.
    pub fn with_timeout(mut self, t: Duration) -> Self {
        self.timeout = t;
        self
    }

    /// Routes every retried send through a circuit breaker: requests fail
    /// fast with [`ClientError::BreakerOpen`] while it is open, and
    /// outcomes feed its state machine. Share one `Arc` across clients to
    /// break per endpoint rather than per connection.
    pub fn with_breaker(mut self, breaker: Arc<CircuitBreaker>) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Draws every retry from a shared [`RetryBudget`]; when the budget is
    /// empty the underlying error surfaces instead of another retry
    /// firing. Share one `Arc` fleet-wide to prevent retry storms.
    pub fn with_retry_budget(mut self, budget: Arc<RetryBudget>) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// Gives every retried send a total deadline: the remaining budget is
    /// attached as [`crate::X_SIFT_DEADLINE_MS`] (so the server can shed
    /// expired work) and a retry never fires if it cannot fit in what
    /// remains.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Seeds the jitter RNG stream (full-jitter backoff is a pure function
    /// of this seed, the request and the attempt number, so chaos replays
    /// stay deterministic).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends one request (no status-based retries; transport-level
    /// keep-alive races are retried once).
    pub fn send(&self, req: &Request) -> Result<Response, ClientError> {
        let mut req = req.clone();
        if let Some(id) = &self.identity {
            req.headers.set(FETCHER_IDENTITY_HEADER, id.clone());
        }
        // Carry the caller's trace across the wire: the span active at
        // send time (under retries, the attempt span) becomes the parent
        // of the server-side work. A caller-set header wins.
        if req.headers.get(X_SIFT_TRACE).is_none() {
            if let Some(ctx) = sift_obs::SpanContext::current() {
                req.headers.set(X_SIFT_TRACE, ctx.to_header());
            }
        }
        let wire = serialize_request(&req);

        // First try a pooled connection, if any. Pop in its own statement:
        // an `if let` scrutinee's temporary MutexGuard would otherwise
        // live for the whole block and deadlock against `maybe_pool`.
        let pooled = self.pool.lock().pop();
        if let Some(mut stream) = pooled {
            match round_trip(&mut stream, &wire) {
                Ok(resp) => {
                    sift_obs::counter("sift_client_pool_total", &[("outcome", "hit")]).inc();
                    self.maybe_pool(stream, &resp);
                    return Ok(resp);
                }
                Err(_stale) => { /* fall through to a fresh connection */ }
            }
        }
        sift_obs::counter("sift_client_pool_total", &[("outcome", "miss")]).inc();

        let mut stream = TcpStream::connect(self.addr).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(ClientError::Io)?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(ClientError::Io)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        match round_trip(&mut stream, &wire) {
            Ok(resp) => {
                self.maybe_pool(stream, &resp);
                Ok(resp)
            }
            Err(e) => Err(e),
        }
    }

    /// Sends a request, retrying 429 (honouring `Retry-After`), 5xx and
    /// transport-level I/O failures (connection refused, reset
    /// mid-exchange, truncated response) with full-jitter exponential
    /// backoff per the client's [`RetryPolicy`] — gated by the circuit
    /// breaker, retry budget and deadline when configured.
    pub fn send_with_retry(&self, req: &Request) -> Result<Response, ClientError> {
        let started = Instant::now();
        // One deposit per logical call funds roughly `deposit_per_call`
        // retries: the Finagle-style budget shape.
        if let Some(budget) = &self.retry_budget {
            budget.deposit();
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if let Some(b) = &self.breaker {
                if !b.allow() {
                    sift_obs::counter(
                        "sift_client_breaker_fastfail_total",
                        &[("endpoint", b.endpoint())],
                    )
                    .inc();
                    return Err(ClientError::BreakerOpen {
                        endpoint: b.endpoint().to_owned(),
                    });
                }
            }
            if let Some(deadline) = self.deadline {
                if started.elapsed() >= deadline {
                    return Err(self.deadline_error(started, deadline));
                }
            }
            // Each attempt is its own span: it is the context stamped
            // into X-Sift-Trace by `send`, so the server-side work for a
            // retried request parents onto the exact attempt that
            // carried it — retries show up as attempt-numbered siblings,
            // never as orphan roots.
            let _attempt_span = sift_obs::span("request");
            sift_obs::attr_set("attempt", u64::from(attempt));
            let resp = match self.send(&self.stamped(req, started)) {
                Ok(resp) => resp,
                // A transport failure consumed no retry budget before this
                // fix: a single reset aborted the whole exchange even with
                // attempts left. Retry it like a 5xx, minus `Retry-After`.
                Err(ClientError::Io(e)) => {
                    self.record_outcome(false);
                    if attempt >= self.retry.max_attempts {
                        return Err(ClientError::Io(e));
                    }
                    let wait = self.jittered_backoff(req, attempt);
                    let wait = self.gate_retry(started, wait, ClientError::Io(e))?;
                    sift_obs::attr_add("retries", 1);
                    sift_obs::counter("sift_client_retries_total", &[("status", "io")]).inc();
                    sift_obs::histogram("sift_client_backoff_seconds", &[]).observe_duration(wait);
                    sift_obs::event(
                        sift_obs::Level::Warn,
                        "net.client",
                        "transport error, backing off",
                        &[
                            ("attempt", serde_json::Value::UInt(u64::from(attempt))),
                            ("wait_ms", serde_json::Value::UInt(wait.as_millis() as u64)),
                        ],
                    );
                    std::thread::sleep(wait);
                    continue;
                }
                Err(other) => return Err(other),
            };
            // Any parsed response below 500 means the server is up and
            // making decisions — 4xx and 429 included. Only 5xx (and
            // transport failures above) count against the breaker.
            self.record_outcome(resp.status.0 < 500);
            if resp.status.is_success() {
                sift_obs::attr_add("bytes", u64::try_from(resp.body.len()).unwrap_or(u64::MAX));
                return Ok(resp);
            }
            let retryable =
                resp.status == StatusCode::TOO_MANY_REQUESTS || (500..600).contains(&resp.status.0);
            if !retryable {
                return Err(ClientError::Status {
                    status: resp.status,
                    body: body_excerpt(&resp),
                });
            }
            if attempt >= self.retry.max_attempts {
                if resp.status == StatusCode::TOO_MANY_REQUESTS {
                    return Err(ClientError::RateLimited { attempts: attempt });
                }
                return Err(ClientError::Status {
                    status: resp.status,
                    body: body_excerpt(&resp),
                });
            }
            // An explicit server hint is an instruction, not a guess: it
            // is honoured as-is (capped), never jittered.
            let wait = match server_hint(&resp) {
                Some(hint) => hint.min(self.retry.max_backoff),
                None => self.jittered_backoff(req, attempt),
            };
            let status_label = resp.status.0.to_string();
            let underlying = if resp.status == StatusCode::TOO_MANY_REQUESTS {
                ClientError::RateLimited { attempts: attempt }
            } else {
                ClientError::Status {
                    status: resp.status,
                    body: body_excerpt(&resp),
                }
            };
            let wait = self.gate_retry(started, wait, underlying)?;
            sift_obs::attr_add("retries", 1);
            sift_obs::counter("sift_client_retries_total", &[("status", &status_label)]).inc();
            sift_obs::histogram("sift_client_backoff_seconds", &[]).observe_duration(wait);
            sift_obs::event(
                sift_obs::Level::Warn,
                "net.client",
                "backing off",
                &[
                    ("status", serde_json::Value::UInt(u64::from(resp.status.0))),
                    ("attempt", serde_json::Value::UInt(u64::from(attempt))),
                    ("wait_ms", serde_json::Value::UInt(wait.as_millis() as u64)),
                ],
            );
            std::thread::sleep(wait);
        }
    }

    /// POSTs a JSON document and decodes a JSON response, with retries.
    pub fn post_json<T: serde::Serialize, R: serde::de::DeserializeOwned>(
        &self,
        path: &str,
        body: &T,
    ) -> Result<R, ClientError> {
        let req = Request::post_json(path, body).map_err(ClientError::Json)?;
        let resp = self.send_with_retry(&req)?;
        resp.parse_json().map_err(ClientError::Json)
    }

    /// GETs a path and decodes a JSON response, with retries.
    pub fn get_json<R: serde::de::DeserializeOwned>(&self, path: &str) -> Result<R, ClientError> {
        let resp = self.send_with_retry(&Request::get(path))?;
        resp.parse_json().map_err(ClientError::Json)
    }

    /// Number of idle pooled connections (for tests and metrics).
    pub fn pooled_connections(&self) -> usize {
        self.pool.lock().len()
    }

    fn maybe_pool(&self, stream: TcpStream, resp: &Response) {
        if !resp.headers.wants_close() {
            let mut pool = self.pool.lock();
            if pool.len() < 8 {
                pool.push(stream);
            }
        }
    }

    /// The request as actually sent: with the remaining deadline budget
    /// attached when one is configured.
    fn stamped(&self, req: &Request, started: Instant) -> Request {
        let Some(deadline) = self.deadline else {
            return req.clone();
        };
        let remaining = deadline.saturating_sub(started.elapsed());
        let mut req = req.clone();
        req.headers.set(
            X_SIFT_DEADLINE_MS,
            (remaining.as_millis() as u64).to_string(),
        );
        req
    }

    fn record_outcome(&self, success: bool) {
        if let Some(b) = &self.breaker {
            if success {
                b.record_success();
            } else {
                b.record_failure();
            }
        }
    }

    /// Decides whether one more retry may fire after waiting `wait`:
    /// refused when the wait cannot fit in the remaining deadline or the
    /// shared retry budget is empty (the underlying error surfaces).
    fn gate_retry(
        &self,
        started: Instant,
        wait: Duration,
        underlying: ClientError,
    ) -> Result<Duration, ClientError> {
        if let Some(deadline) = self.deadline {
            let elapsed = started.elapsed();
            if elapsed + wait >= deadline {
                return Err(self.deadline_error(started, deadline));
            }
        }
        if let Some(budget) = &self.retry_budget {
            if !budget.try_withdraw() {
                sift_obs::counter("sift_client_retry_budget_exhausted_total", &[]).inc();
                sift_obs::event(
                    sift_obs::Level::Warn,
                    "net.client",
                    "retry budget exhausted",
                    &[("error", serde_json::Value::Str(underlying.to_string()))],
                );
                return Err(underlying);
            }
        }
        Ok(wait)
    }

    fn deadline_error(&self, started: Instant, deadline: Duration) -> ClientError {
        ClientError::DeadlineExceeded {
            elapsed_ms: started.elapsed().as_millis() as u64,
            budget_ms: deadline.as_millis() as u64,
        }
    }

    /// Full-jitter exponential backoff: a uniform draw in `[0, backoff]`
    /// from a ChaCha8 stream keyed by (client jitter seed, request,
    /// attempt) — deterministic per replay, decorrelated across requests.
    fn jittered_backoff(&self, req: &Request, attempt: u32) -> Duration {
        let exp = backoff_wait(&self.retry, attempt);
        if !self.retry.jitter {
            return exp;
        }
        let span_ms = exp.as_millis() as u64;
        let key = crate::fault::request_key(&req.path, &req.body);
        let mut seed = [0u8; 32];
        seed[0..8].copy_from_slice(&self.jitter_seed.to_le_bytes());
        seed[8..16].copy_from_slice(&key.to_le_bytes());
        seed[16..20].copy_from_slice(&attempt.to_le_bytes());
        // Domain tag ("JITR") keeps this stream disjoint from the fault
        // injector's, which seeds from the same request key.
        seed[24..28].copy_from_slice(&0x4a49_5452u32.to_le_bytes());
        let mut rng = ChaCha8Rng::from_seed(seed);
        Duration::from_millis(rng.next_u64() % (span_ms + 1))
    }
}

/// Hard ceiling on any server-supplied `Retry-After` hint. A server (or a
/// middlebox mangling the header) telling a crawler to come back in a
/// week must not stall the retry loop; anything past this cap degrades to
/// the cap, and the policy's own `max_backoff` still applies on top at
/// the call site.
const MAX_SERVER_HINT: Duration = Duration::from_secs(60);

/// The server's explicit `Retry-After` hint, if the response carries a
/// usable one. Defensive by design: an empty value, non-numeric garbage
/// (`"soon"`, HTTP-dates, `"2.5"`), or a number too large for `u64` all
/// parse as *absent*, sending the caller to the jittered-backoff path
/// instead of trusting the wire verbatim. Values that do parse are capped
/// at [`MAX_SERVER_HINT`].
fn server_hint(resp: &Response) -> Option<Duration> {
    let raw = resp.headers.get("retry-after")?.trim();
    if raw.is_empty() {
        return None;
    }
    let secs: u64 = raw.parse().ok()?;
    Some(Duration::from_secs(secs).min(MAX_SERVER_HINT))
}

/// Pure exponential backoff ceiling for `attempt` (the jitter draw spans
/// `[0, this]`; transport errors and `Retry-After`-less 429 storms land
/// here too).
fn backoff_wait(policy: &RetryPolicy, attempt: u32) -> Duration {
    let exp = policy
        .base_backoff
        .saturating_mul(1u32 << (attempt - 1).min(16));
    exp.min(policy.max_backoff)
}

fn round_trip(stream: &mut TcpStream, wire: &[u8]) -> Result<Response, ClientError> {
    stream.write_all(wire).map_err(ClientError::Io)?;
    let mut buf = BytesMut::with_capacity(8 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match parse_response(&mut buf) {
            Ok(Some(resp)) => return Ok(resp),
            Ok(None) => {
                let n = stream.read(&mut chunk).map_err(ClientError::Io)?;
                if n == 0 {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    )));
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) => return Err(ClientError::Parse(e)),
        }
    }
}

fn body_excerpt(resp: &Response) -> String {
    let text = String::from_utf8_lossy(&resp.body);
    text.chars().take(200).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::{BreakerConfig, BreakerState, RetryBudgetConfig};
    use crate::http::Method;
    use crate::ratelimit::RateLimiterConfig;
    use crate::router::Router;
    use crate::server::Server;

    fn spawn_server() -> crate::server::ServerHandle {
        let router = Router::new()
            .route(Method::Get, "/ping", |_| {
                Response::text(StatusCode::OK, "pong")
            })
            .route(Method::Post, "/double", |req| {
                let n: u64 = req.json().expect("json body");
                Response::json(&(n * 2)).expect("encode")
            })
            .route(Method::Get, "/whoami", |req| {
                let id = req
                    .headers
                    .get(FETCHER_IDENTITY_HEADER)
                    .unwrap_or("anonymous")
                    .to_owned();
                Response::text(StatusCode::OK, id)
            })
            .route(Method::Get, "/fail", |_| {
                Response::text(StatusCode::INTERNAL_SERVER_ERROR, "always broken")
            })
            .route(Method::Get, "/budget", |req| {
                let budget = req
                    .headers
                    .get(X_SIFT_DEADLINE_MS)
                    .unwrap_or("none")
                    .to_owned();
                Response::text(StatusCode::OK, budget)
            });
        Server::new(router).bind("127.0.0.1:0").expect("bind")
    }

    fn fast_retry(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            jitter: true,
        }
    }

    #[test]
    fn get_and_pooling() {
        let h = spawn_server();
        let c = HttpClient::new(h.addr());
        for _ in 0..3 {
            let resp = c.send(&Request::get("/ping")).expect("send");
            assert_eq!(resp.status, StatusCode::OK);
            assert_eq!(&resp.body[..], b"pong");
        }
        assert_eq!(
            c.pooled_connections(),
            1,
            "connection reused, not re-opened"
        );
        h.shutdown();
    }

    #[test]
    fn typed_json_round_trip() {
        let h = spawn_server();
        let c = HttpClient::new(h.addr());
        let doubled: u64 = c.post_json("/double", &21u64).expect("post");
        assert_eq!(doubled, 42);
        h.shutdown();
    }

    #[test]
    fn identity_header_is_attached() {
        let h = spawn_server();
        let c = HttpClient::new(h.addr()).with_identity("127.0.0.42");
        let resp = c.send(&Request::get("/whoami")).expect("send");
        assert_eq!(&resp.body[..], b"127.0.0.42");
        h.shutdown();
    }

    #[test]
    fn non_retryable_status_is_an_error() {
        let h = spawn_server();
        let c = HttpClient::new(h.addr());
        let err = c.send_with_retry(&Request::get("/missing")).unwrap_err();
        match err {
            ClientError::Status { status, .. } => assert_eq!(status, StatusCode::NOT_FOUND),
            other => panic!("expected status error, got {other}"),
        }
        h.shutdown();
    }

    #[test]
    fn rate_limited_requests_retry_until_allowed() {
        let router = Router::new().route(Method::Get, "/ping", |_| {
            Response::text(StatusCode::OK, "pong")
        });
        let h = Server::new(router)
            .with_rate_limiter(RateLimiterConfig {
                capacity: 2.0,
                refill_per_sec: 50.0, // refills fast enough for the test
                ..RateLimiterConfig::default()
            })
            .bind("127.0.0.1:0")
            .expect("bind");
        let c = HttpClient::new(h.addr())
            .with_identity("unit-A")
            .with_retry(RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_millis(20),
                max_backoff: Duration::from_millis(100),
                jitter: true,
            });
        // Hammer past the burst capacity; retries absorb the 429s.
        for _ in 0..6 {
            let resp = c.send_with_retry(&Request::get("/ping")).expect("retry");
            assert_eq!(resp.status, StatusCode::OK);
        }
        h.shutdown();
    }

    #[test]
    fn stale_pooled_connection_recovers() {
        let h = spawn_server();
        let c = HttpClient::new(h.addr());
        let _ = c.send(&Request::get("/ping")).expect("first");
        assert_eq!(c.pooled_connections(), 1);
        // Kill the server; the pooled connection goes stale.
        let addr = h.addr();
        h.shutdown();
        // Restart on the same port (racy in principle; retry binds).
        let router = Router::new().route(Method::Get, "/ping", |_| {
            Response::text(StatusCode::OK, "pong2")
        });
        let h2 = Server::new(router)
            .bind(&addr.to_string())
            .expect("rebind same port");
        let resp = c.send(&Request::get("/ping")).expect("recovered send");
        assert_eq!(&resp.body[..], b"pong2");
        h2.shutdown();
    }

    #[test]
    fn transport_errors_consume_retry_budget_then_surface() {
        use crate::fault::{FaultKind, FaultPlan};
        let router = Router::new().route(Method::Get, "/ping", |_| {
            Response::text(StatusCode::OK, "pong")
        });
        let h = Server::new(router)
            .with_fault_plan(FaultPlan::new(3).everywhere(&[(FaultKind::Reset, 1.0)]))
            .bind("127.0.0.1:0")
            .expect("bind");
        let c = HttpClient::new(h.addr()).with_retry(fast_retry(3));
        let before = sift_obs::counter("sift_client_retries_total", &[("status", "io")]).get();
        let err = c.send_with_retry(&Request::get("/ping")).unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "{err}");
        // Other tests share the global registry, so only a lower bound is
        // safe: attempts 1 and 2 retried, the 3rd surfaced.
        let after = sift_obs::counter("sift_client_retries_total", &[("status", "io")]).get();
        assert!(
            after - before >= 2,
            "io retries counted: {before} -> {after}"
        );
        h.shutdown();
    }

    #[test]
    fn mixed_transport_and_status_faults_are_absorbed() {
        use crate::fault::{FaultKind, FaultPlan};
        let router = Router::new().route(Method::Get, "/ping", |_| {
            Response::text(StatusCode::OK, "pong")
        });
        let h = Server::new(router)
            .with_fault_plan(FaultPlan::new(11).everywhere(&[
                (FaultKind::Reset, 0.25),
                (FaultKind::Truncate, 0.15),
                (FaultKind::InternalError, 0.15),
                (FaultKind::RateStorm, 0.15),
            ]))
            .bind("127.0.0.1:0")
            .expect("bind");
        let c = HttpClient::new(h.addr()).with_retry(fast_retry(25));
        for _ in 0..10 {
            let resp = c.send_with_retry(&Request::get("/ping")).expect("absorbed");
            assert_eq!(&resp.body[..], b"pong");
        }
        h.shutdown();
    }

    #[test]
    fn stalls_are_latency_not_errors() {
        use crate::fault::{FaultKind, FaultPlan};
        let router = Router::new().route(Method::Get, "/ping", |_| {
            Response::text(StatusCode::OK, "pong")
        });
        let h = Server::new(router)
            .with_fault_plan(
                FaultPlan::new(5)
                    .everywhere(&[(FaultKind::Stall, 1.0)])
                    .with_stall(Duration::from_millis(5)),
            )
            .bind("127.0.0.1:0")
            .expect("bind");
        let c = HttpClient::new(h.addr());
        let resp = c.send(&Request::get("/ping")).expect("stalled but served");
        assert_eq!(&resp.body[..], b"pong");
        h.shutdown();
    }

    #[test]
    fn server_hint_is_honoured_unjittered() {
        let mut resp = Response::text(StatusCode::TOO_MANY_REQUESTS, "slow down");
        resp.headers.set("retry-after", "2");
        assert_eq!(server_hint(&resp), Some(Duration::from_secs(2)));
        let resp = Response::text(StatusCode::INTERNAL_SERVER_ERROR, "oops");
        assert_eq!(server_hint(&resp), None);
        // The hintless ceiling is still the exponential curve.
        let policy = RetryPolicy::default();
        assert_eq!(backoff_wait(&policy, 1), policy.base_backoff);
        assert_eq!(backoff_wait(&policy, 3), policy.base_backoff * 4);
        assert!(backoff_wait(&policy, 30) <= policy.max_backoff);
    }

    /// Regression (`Retry-After` robustness): malformed, empty, or
    /// absurdly large header values must degrade to the jittered-backoff
    /// path (hint absent) or be capped — never trusted verbatim.
    #[test]
    fn server_hint_rejects_garbage_and_caps_huge_values() {
        let hint = |value: &str| {
            let mut resp = Response::text(StatusCode::TOO_MANY_REQUESTS, "slow down");
            resp.headers.set("retry-after", value);
            server_hint(&resp)
        };
        // Garbage of every flavour parses as absent.
        assert_eq!(hint(""), None);
        assert_eq!(hint("   "), None);
        assert_eq!(hint("soon"), None);
        assert_eq!(hint("2.5"), None);
        assert_eq!(hint("-1"), None);
        assert_eq!(hint("1e9"), None);
        assert_eq!(hint("Fri, 31 Dec 1999 23:59:59 GMT"), None);
        // Overflow past u64 is a parse failure, not a huge wait.
        assert_eq!(hint("99999999999999999999999999"), None);
        // Valid values survive (whitespace-tolerant)...
        assert_eq!(hint("2"), Some(Duration::from_secs(2)));
        assert_eq!(hint(" 7 "), Some(Duration::from_secs(7)));
        // ...but are capped: a week-long hint becomes the ceiling.
        assert_eq!(hint("604800"), Some(MAX_SERVER_HINT));
        assert_eq!(hint(&u64::MAX.to_string()), Some(MAX_SERVER_HINT));
        // And the retry loop caps the hint again with its own policy.
        let policy = RetryPolicy::default();
        let wait = hint("604800").expect("capped hint").min(policy.max_backoff);
        assert_eq!(wait, policy.max_backoff);
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let h = spawn_server();
        let a = HttpClient::new(h.addr()).with_jitter_seed(9);
        let b = HttpClient::new(h.addr()).with_jitter_seed(9);
        let other = HttpClient::new(h.addr()).with_jitter_seed(10);
        let req = Request::get("/ping");
        let mut seeds_differ = false;
        for attempt in 1..=6 {
            let wa = a.jittered_backoff(&req, attempt);
            let wb = b.jittered_backoff(&req, attempt);
            assert_eq!(wa, wb, "same seed, same request, same attempt");
            assert!(
                wa <= backoff_wait(&a.retry, attempt),
                "full jitter stays in range"
            );
            if other.jittered_backoff(&req, attempt) != wa {
                seeds_differ = true;
            }
        }
        assert!(seeds_differ, "different seeds decorrelate");
        h.shutdown();
    }

    #[test]
    fn breaker_opens_and_fails_fast_without_touching_the_network() {
        use crate::fault::{FaultKind, FaultPlan};
        let router = Router::new().route(Method::Get, "/ping", |_| {
            Response::text(StatusCode::OK, "pong")
        });
        let h = Server::new(router)
            .with_fault_plan(FaultPlan::new(3).everywhere(&[(FaultKind::Reset, 1.0)]))
            .bind("127.0.0.1:0")
            .expect("bind");
        let breaker = Arc::new(CircuitBreaker::new(
            "unit-test",
            BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(60),
                success_threshold: 1,
            },
        ));
        let c = HttpClient::new(h.addr())
            .with_retry(fast_retry(1))
            .with_breaker(Arc::clone(&breaker));
        for _ in 0..2 {
            let err = c.send_with_retry(&Request::get("/ping")).unwrap_err();
            assert!(matches!(err, ClientError::Io(_)), "{err}");
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        // Kill the server: a fast-failing client never notices.
        h.shutdown();
        let err = c.send_with_retry(&Request::get("/ping")).unwrap_err();
        assert!(matches!(err, ClientError::BreakerOpen { .. }), "{err}");
        assert_eq!(breaker.transition_log(), vec!["closed->open".to_owned()]);
    }

    #[test]
    fn breaker_recovers_through_half_open_probe() {
        let h = spawn_server();
        let breaker = Arc::new(CircuitBreaker::new(
            "recovery-test",
            BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_secs(60),
                success_threshold: 1,
            },
        ));
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        let c = HttpClient::new(h.addr()).with_breaker(Arc::clone(&breaker));
        // Still inside the cooldown: fail fast.
        assert!(matches!(
            c.send_with_retry(&Request::get("/ping")).unwrap_err(),
            ClientError::BreakerOpen { .. }
        ));
        // After the cooldown the next send is the half-open probe; its
        // success closes the breaker.
        breaker.fast_forward(Duration::from_secs(61));
        let resp = c.send_with_retry(&Request::get("/ping")).expect("probe");
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(
            breaker.transition_log(),
            vec![
                "closed->open".to_owned(),
                "open->half_open".to_owned(),
                "half_open->closed".to_owned(),
            ]
        );
        h.shutdown();
    }

    #[test]
    fn empty_retry_budget_surfaces_the_underlying_error() {
        let h = spawn_server();
        let budget = Arc::new(RetryBudget::new(RetryBudgetConfig {
            capacity: 1.0,
            deposit_per_call: 0.0,
            withdraw_per_retry: 1.0,
        }));
        let c = HttpClient::new(h.addr())
            .with_retry(fast_retry(10))
            .with_retry_budget(Arc::clone(&budget));
        let before = sift_obs::counter("sift_client_retry_budget_exhausted_total", &[]).get();
        let err = c.send_with_retry(&Request::get("/fail")).unwrap_err();
        // One funded retry, then the budget is dry and the 500 surfaces
        // long before the 10-attempt policy would have given up.
        match err {
            ClientError::Status { status, .. } => {
                assert_eq!(status, StatusCode::INTERNAL_SERVER_ERROR)
            }
            other => panic!("expected status error, got {other}"),
        }
        assert!(budget.available() < 1.0);
        let after = sift_obs::counter("sift_client_retry_budget_exhausted_total", &[]).get();
        assert!(after > before, "exhaustion counted: {before} -> {after}");
        h.shutdown();
    }

    #[test]
    fn retry_never_fires_when_it_cannot_fit_the_deadline() {
        let h = spawn_server();
        let c = HttpClient::new(h.addr())
            .with_retry(RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_secs(2),
                max_backoff: Duration::from_secs(2),
                jitter: false, // a deterministic 2 s wait against a 100 ms budget
            })
            .with_deadline(Duration::from_millis(100));
        let err = c.send_with_retry(&Request::get("/fail")).unwrap_err();
        match err {
            ClientError::DeadlineExceeded { budget_ms, .. } => assert_eq!(budget_ms, 100),
            other => panic!("expected deadline error, got {other}"),
        }
        h.shutdown();
    }

    #[test]
    fn trace_context_joins_client_and_server_spans() {
        let h = spawn_server();
        let c = HttpClient::new(h.addr());
        let tid = {
            let root = sift_obs::span_root("client-server-trace-test");
            let resp = c.send_with_retry(&Request::get("/ping")).expect("send");
            assert_eq!(resp.status, StatusCode::OK);
            root.context().trace_id
        };
        let trace =
            sift_obs::trace::wait_completed(tid, Duration::from_secs(5)).expect("trace completed");
        let request = trace
            .spans
            .iter()
            .find(|s| s.name == "request")
            .expect("attempt span recorded");
        assert_eq!(request.arg("attempt"), Some(1));
        assert!(request.arg("bytes").is_some(), "response bytes attributed");
        let serve = trace
            .spans
            .iter()
            .find(|s| s.name == "serve")
            .expect("server span joined the client trace");
        assert_eq!(
            serve.parent_id,
            Some(request.span_id),
            "serve parents onto the exact attempt"
        );
        assert_eq!(serve.arg("status"), Some(200));
        assert!(trace.orphans().is_empty());
        h.shutdown();
    }

    #[test]
    fn deadline_budget_is_propagated_as_a_header() {
        let h = spawn_server();
        let c = HttpClient::new(h.addr()).with_deadline(Duration::from_secs(60));
        let resp = c.send_with_retry(&Request::get("/budget")).expect("send");
        let budget: u64 = String::from_utf8_lossy(&resp.body)
            .parse()
            .expect("numeric budget header");
        assert!(budget > 0 && budget <= 60_000, "remaining budget: {budget}");
        // Without a deadline the header is absent.
        let bare = HttpClient::new(h.addr());
        let resp = bare
            .send_with_retry(&Request::get("/budget"))
            .expect("send");
        assert_eq!(&resp.body[..], b"none");
        h.shutdown();
    }
}

//! Pooling, retrying HTTP client.

use crate::http::{parse_response, serialize_request, ParseError, Request, Response, StatusCode};
use crate::FETCHER_IDENTITY_HEADER;
use bytes::BytesMut;
use parking_lot::Mutex;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read or write).
    Io(std::io::Error),
    /// The response could not be parsed.
    Parse(ParseError),
    /// The server kept answering 429 past the retry budget.
    RateLimited {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A non-success status after retries were exhausted (or the status is
    /// not retryable).
    Status {
        /// The final status.
        status: StatusCode,
        /// Body text (truncated) for diagnostics.
        body: String,
    },
    /// The response body was not the expected JSON document.
    Json(serde_json::Error),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Parse(e) => write!(f, "bad response: {e}"),
            ClientError::RateLimited { attempts } => {
                write!(f, "rate limited after {attempts} attempts")
            }
            ClientError::Status { status, body } => write!(f, "server said {status}: {body}"),
            ClientError::Json(e) => write!(f, "bad JSON payload: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Retry behaviour for transient failures (429 and 5xx).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Base backoff; attempt `n` waits `base * 2^(n-1)` unless the server
    /// sent a `Retry-After`.
    pub base_backoff: Duration,
    /// Ceiling on any single wait.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
        }
    }
}

/// A blocking HTTP/1.1 client with connection reuse.
///
/// Connections are pooled per client instance; a request taken over a
/// pooled connection that turns out to be dead is retried once on a fresh
/// connection before the failure is surfaced (the standard keep-alive
/// race).
pub struct HttpClient {
    addr: SocketAddr,
    identity: Option<String>,
    pool: Mutex<Vec<TcpStream>>,
    timeout: Duration,
    retry: RetryPolicy,
}

impl HttpClient {
    /// A client for one server address.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            identity: None,
            pool: Mutex::new(Vec::new()),
            timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
        }
    }

    /// Declares this client's fetcher identity (sent as the
    /// [`FETCHER_IDENTITY_HEADER`] on every request).
    pub fn with_identity(mut self, identity: impl Into<String>) -> Self {
        self.identity = Some(identity.into());
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the per-operation socket timeout.
    pub fn with_timeout(mut self, t: Duration) -> Self {
        self.timeout = t;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends one request (no status-based retries; transport-level
    /// keep-alive races are retried once).
    pub fn send(&self, req: &Request) -> Result<Response, ClientError> {
        let mut req = req.clone();
        if let Some(id) = &self.identity {
            req.headers.set(FETCHER_IDENTITY_HEADER, id.clone());
        }
        let wire = serialize_request(&req);

        // First try a pooled connection, if any. Pop in its own statement:
        // an `if let` scrutinee's temporary MutexGuard would otherwise
        // live for the whole block and deadlock against `maybe_pool`.
        let pooled = self.pool.lock().pop();
        if let Some(mut stream) = pooled {
            match round_trip(&mut stream, &wire) {
                Ok(resp) => {
                    sift_obs::counter("sift_client_pool_total", &[("outcome", "hit")]).inc();
                    self.maybe_pool(stream, &resp);
                    return Ok(resp);
                }
                Err(_stale) => { /* fall through to a fresh connection */ }
            }
        }
        sift_obs::counter("sift_client_pool_total", &[("outcome", "miss")]).inc();

        let mut stream = TcpStream::connect(self.addr).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(ClientError::Io)?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(ClientError::Io)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        match round_trip(&mut stream, &wire) {
            Ok(resp) => {
                self.maybe_pool(stream, &resp);
                Ok(resp)
            }
            Err(e) => Err(e),
        }
    }

    /// Sends a request, retrying 429 (honouring `Retry-After`), 5xx and
    /// transport-level I/O failures (connection refused, reset
    /// mid-exchange, truncated response) with exponential backoff per the
    /// client's [`RetryPolicy`].
    pub fn send_with_retry(&self, req: &Request) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let resp = match self.send(req) {
                Ok(resp) => resp,
                // A transport failure consumed no retry budget before this
                // fix: a single reset aborted the whole exchange even with
                // attempts left. Retry it like a 5xx, minus `Retry-After`.
                Err(ClientError::Io(e)) => {
                    if attempt >= self.retry.max_attempts {
                        return Err(ClientError::Io(e));
                    }
                    let wait = backoff_wait(&self.retry, attempt);
                    sift_obs::counter("sift_client_retries_total", &[("status", "io")]).inc();
                    sift_obs::histogram("sift_client_backoff_seconds", &[]).observe_duration(wait);
                    sift_obs::event(
                        sift_obs::Level::Warn,
                        "net.client",
                        "transport error, backing off",
                        &[
                            ("error", serde_json::Value::Str(e.to_string())),
                            ("attempt", serde_json::Value::UInt(u64::from(attempt))),
                            ("wait_ms", serde_json::Value::UInt(wait.as_millis() as u64)),
                        ],
                    );
                    std::thread::sleep(wait);
                    continue;
                }
                Err(other) => return Err(other),
            };
            if resp.status.is_success() {
                return Ok(resp);
            }
            let retryable =
                resp.status == StatusCode::TOO_MANY_REQUESTS || (500..600).contains(&resp.status.0);
            if !retryable {
                return Err(ClientError::Status {
                    status: resp.status,
                    body: body_excerpt(&resp),
                });
            }
            if attempt >= self.retry.max_attempts {
                if resp.status == StatusCode::TOO_MANY_REQUESTS {
                    return Err(ClientError::RateLimited { attempts: attempt });
                }
                return Err(ClientError::Status {
                    status: resp.status,
                    body: body_excerpt(&resp),
                });
            }
            let wait = retry_wait(&self.retry, attempt, &resp);
            sift_obs::counter(
                "sift_client_retries_total",
                &[("status", &resp.status.0.to_string())],
            )
            .inc();
            sift_obs::histogram("sift_client_backoff_seconds", &[]).observe_duration(wait);
            sift_obs::event(
                sift_obs::Level::Warn,
                "net.client",
                "backing off",
                &[
                    ("status", serde_json::Value::UInt(u64::from(resp.status.0))),
                    ("attempt", serde_json::Value::UInt(u64::from(attempt))),
                    ("wait_ms", serde_json::Value::UInt(wait.as_millis() as u64)),
                ],
            );
            std::thread::sleep(wait);
        }
    }

    /// POSTs a JSON document and decodes a JSON response, with retries.
    pub fn post_json<T: serde::Serialize, R: serde::de::DeserializeOwned>(
        &self,
        path: &str,
        body: &T,
    ) -> Result<R, ClientError> {
        let req = Request::post_json(path, body).map_err(ClientError::Json)?;
        let resp = self.send_with_retry(&req)?;
        resp.parse_json().map_err(ClientError::Json)
    }

    /// GETs a path and decodes a JSON response, with retries.
    pub fn get_json<R: serde::de::DeserializeOwned>(&self, path: &str) -> Result<R, ClientError> {
        let resp = self.send_with_retry(&Request::get(path))?;
        resp.parse_json().map_err(ClientError::Json)
    }

    /// Number of idle pooled connections (for tests and metrics).
    pub fn pooled_connections(&self) -> usize {
        self.pool.lock().len()
    }

    fn maybe_pool(&self, stream: TcpStream, resp: &Response) {
        if !resp.headers.wants_close() {
            let mut pool = self.pool.lock();
            if pool.len() < 8 {
                pool.push(stream);
            }
        }
    }
}

/// How long to wait before retrying `attempt` given the server's response.
fn retry_wait(policy: &RetryPolicy, attempt: u32, resp: &Response) -> Duration {
    if let Some(ra) = resp
        .headers
        .get("retry-after")
        .and_then(|v| v.trim().parse::<u64>().ok())
    {
        return Duration::from_secs(ra).min(policy.max_backoff);
    }
    backoff_wait(policy, attempt)
}

/// Pure exponential backoff (no server hint available — transport errors
/// and `Retry-After`-less 429 storms).
fn backoff_wait(policy: &RetryPolicy, attempt: u32) -> Duration {
    let exp = policy
        .base_backoff
        .saturating_mul(1u32 << (attempt - 1).min(16));
    exp.min(policy.max_backoff)
}

fn round_trip(stream: &mut TcpStream, wire: &[u8]) -> Result<Response, ClientError> {
    stream.write_all(wire).map_err(ClientError::Io)?;
    let mut buf = BytesMut::with_capacity(8 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match parse_response(&mut buf) {
            Ok(Some(resp)) => return Ok(resp),
            Ok(None) => {
                let n = stream.read(&mut chunk).map_err(ClientError::Io)?;
                if n == 0 {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    )));
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) => return Err(ClientError::Parse(e)),
        }
    }
}

fn body_excerpt(resp: &Response) -> String {
    let text = String::from_utf8_lossy(&resp.body);
    text.chars().take(200).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use crate::ratelimit::RateLimiterConfig;
    use crate::router::Router;
    use crate::server::Server;

    fn spawn_server() -> crate::server::ServerHandle {
        let router = Router::new()
            .route(Method::Get, "/ping", |_| {
                Response::text(StatusCode::OK, "pong")
            })
            .route(Method::Post, "/double", |req| {
                let n: u64 = req.json().expect("json body");
                Response::json(&(n * 2)).expect("encode")
            })
            .route(Method::Get, "/whoami", |req| {
                let id = req
                    .headers
                    .get(FETCHER_IDENTITY_HEADER)
                    .unwrap_or("anonymous")
                    .to_owned();
                Response::text(StatusCode::OK, id)
            });
        Server::new(router).bind("127.0.0.1:0").expect("bind")
    }

    #[test]
    fn get_and_pooling() {
        let h = spawn_server();
        let c = HttpClient::new(h.addr());
        for _ in 0..3 {
            let resp = c.send(&Request::get("/ping")).expect("send");
            assert_eq!(resp.status, StatusCode::OK);
            assert_eq!(&resp.body[..], b"pong");
        }
        assert_eq!(
            c.pooled_connections(),
            1,
            "connection reused, not re-opened"
        );
        h.shutdown();
    }

    #[test]
    fn typed_json_round_trip() {
        let h = spawn_server();
        let c = HttpClient::new(h.addr());
        let doubled: u64 = c.post_json("/double", &21u64).expect("post");
        assert_eq!(doubled, 42);
        h.shutdown();
    }

    #[test]
    fn identity_header_is_attached() {
        let h = spawn_server();
        let c = HttpClient::new(h.addr()).with_identity("127.0.0.42");
        let resp = c.send(&Request::get("/whoami")).expect("send");
        assert_eq!(&resp.body[..], b"127.0.0.42");
        h.shutdown();
    }

    #[test]
    fn non_retryable_status_is_an_error() {
        let h = spawn_server();
        let c = HttpClient::new(h.addr());
        let err = c.send_with_retry(&Request::get("/missing")).unwrap_err();
        match err {
            ClientError::Status { status, .. } => assert_eq!(status, StatusCode::NOT_FOUND),
            other => panic!("expected status error, got {other}"),
        }
        h.shutdown();
    }

    #[test]
    fn rate_limited_requests_retry_until_allowed() {
        let router = Router::new().route(Method::Get, "/ping", |_| {
            Response::text(StatusCode::OK, "pong")
        });
        let h = Server::new(router)
            .with_rate_limiter(RateLimiterConfig {
                capacity: 2.0,
                refill_per_sec: 50.0, // refills fast enough for the test
            })
            .bind("127.0.0.1:0")
            .expect("bind");
        let c = HttpClient::new(h.addr())
            .with_identity("unit-A")
            .with_retry(RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_millis(20),
                max_backoff: Duration::from_millis(100),
            });
        // Hammer past the burst capacity; retries absorb the 429s.
        for _ in 0..6 {
            let resp = c.send_with_retry(&Request::get("/ping")).expect("retry");
            assert_eq!(resp.status, StatusCode::OK);
        }
        h.shutdown();
    }

    #[test]
    fn stale_pooled_connection_recovers() {
        let h = spawn_server();
        let c = HttpClient::new(h.addr());
        let _ = c.send(&Request::get("/ping")).expect("first");
        assert_eq!(c.pooled_connections(), 1);
        // Kill the server; the pooled connection goes stale.
        let addr = h.addr();
        h.shutdown();
        // Restart on the same port (racy in principle; retry binds).
        let router = Router::new().route(Method::Get, "/ping", |_| {
            Response::text(StatusCode::OK, "pong2")
        });
        let h2 = Server::new(router)
            .bind(&addr.to_string())
            .expect("rebind same port");
        let resp = c.send(&Request::get("/ping")).expect("recovered send");
        assert_eq!(&resp.body[..], b"pong2");
        h2.shutdown();
    }

    #[test]
    fn transport_errors_consume_retry_budget_then_surface() {
        use crate::fault::{FaultKind, FaultPlan};
        let router = Router::new().route(Method::Get, "/ping", |_| {
            Response::text(StatusCode::OK, "pong")
        });
        let h = Server::new(router)
            .with_fault_plan(FaultPlan::new(3).everywhere(&[(FaultKind::Reset, 1.0)]))
            .bind("127.0.0.1:0")
            .expect("bind");
        let c = HttpClient::new(h.addr()).with_retry(RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
        });
        let before = sift_obs::counter("sift_client_retries_total", &[("status", "io")]).get();
        let err = c.send_with_retry(&Request::get("/ping")).unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "{err}");
        // Other tests share the global registry, so only a lower bound is
        // safe: attempts 1 and 2 retried, the 3rd surfaced.
        let after = sift_obs::counter("sift_client_retries_total", &[("status", "io")]).get();
        assert!(
            after - before >= 2,
            "io retries counted: {before} -> {after}"
        );
        h.shutdown();
    }

    #[test]
    fn mixed_transport_and_status_faults_are_absorbed() {
        use crate::fault::{FaultKind, FaultPlan};
        let router = Router::new().route(Method::Get, "/ping", |_| {
            Response::text(StatusCode::OK, "pong")
        });
        let h = Server::new(router)
            .with_fault_plan(FaultPlan::new(11).everywhere(&[
                (FaultKind::Reset, 0.25),
                (FaultKind::Truncate, 0.15),
                (FaultKind::InternalError, 0.15),
                (FaultKind::RateStorm, 0.15),
            ]))
            .bind("127.0.0.1:0")
            .expect("bind");
        let c = HttpClient::new(h.addr()).with_retry(RetryPolicy {
            max_attempts: 25,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
        });
        for _ in 0..10 {
            let resp = c.send_with_retry(&Request::get("/ping")).expect("absorbed");
            assert_eq!(&resp.body[..], b"pong");
        }
        h.shutdown();
    }

    #[test]
    fn stalls_are_latency_not_errors() {
        use crate::fault::{FaultKind, FaultPlan};
        let router = Router::new().route(Method::Get, "/ping", |_| {
            Response::text(StatusCode::OK, "pong")
        });
        let h = Server::new(router)
            .with_fault_plan(
                FaultPlan::new(5)
                    .everywhere(&[(FaultKind::Stall, 1.0)])
                    .with_stall(Duration::from_millis(5)),
            )
            .bind("127.0.0.1:0")
            .expect("bind");
        let c = HttpClient::new(h.addr());
        let resp = c.send(&Request::get("/ping")).expect("stalled but served");
        assert_eq!(&resp.body[..], b"pong");
        h.shutdown();
    }

    #[test]
    fn retry_wait_honours_retry_after() {
        let policy = RetryPolicy::default();
        let mut resp = Response::text(StatusCode::TOO_MANY_REQUESTS, "slow down");
        resp.headers.set("retry-after", "2");
        assert_eq!(retry_wait(&policy, 1, &resp), Duration::from_secs(2));
        let resp = Response::text(StatusCode::INTERNAL_SERVER_ERROR, "oops");
        assert_eq!(retry_wait(&policy, 1, &resp), policy.base_backoff);
        assert_eq!(retry_wait(&policy, 3, &resp), policy.base_backoff * 4);
        assert!(retry_wait(&policy, 30, &resp) <= policy.max_backoff);
    }
}

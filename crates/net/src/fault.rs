//! Deterministic fault injection for the HTTP server.
//!
//! The paper's crawl ran for months against a live service that throttles,
//! drops connections and intermittently fails; SIFT's claim is that the
//! pipeline recovers a clean signal anyway. To test that claim the server
//! can be configured with a [`FaultPlan`]: per-route probabilities of
//! injected failures — error statuses, `Retry-After`-less 429 storms,
//! connection resets mid-response, truncated bodies and read stalls.
//!
//! Every decision is *replayable*: instead of one shared random stream
//! (whose draws would depend on worker-thread interleaving), the injector
//! derives an independent ChaCha8 stream from `(plan seed, request key,
//! arrival number)`, where the request key hashes the route and body.
//! Identical request traffic therefore produces the identical fault
//! sequence in every run — a chaos run with a pinned seed is bit-for-bit
//! reproducible, and `scripts/check.sh` verifies exactly that.

use parking_lot::Mutex;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One kind of injected misbehaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Answer `500 Internal Server Error` without running the handler.
    InternalError,
    /// Answer `503 Service Unavailable` without running the handler.
    Unavailable,
    /// Answer `429 Too Many Requests` *without* a `Retry-After` header
    /// (the client must fall back to its own exponential backoff).
    RateStorm,
    /// Close the connection after reading the request, before writing any
    /// byte of the response (the client sees a reset / unexpected EOF).
    Reset,
    /// Write a truncated prefix of the real response, then close (the
    /// declared `Content-Length` promises more bytes than ever arrive).
    Truncate,
    /// Sleep before serving the response normally (a read stall; absorbed
    /// by client timeouts, surfaced as latency).
    Stall,
}

impl FaultKind {
    /// Every kind, in declaration order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::InternalError,
        FaultKind::Unavailable,
        FaultKind::RateStorm,
        FaultKind::Reset,
        FaultKind::Truncate,
        FaultKind::Stall,
    ];

    /// The metric label this kind is counted under in
    /// `sift_net_faults_injected_total{kind=…}` (snake_case of the
    /// variant name; the `fault-obs` lint rule checks the mapping stays
    /// complete).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::InternalError => "internal_error",
            FaultKind::Unavailable => "unavailable",
            FaultKind::RateStorm => "rate_storm",
            FaultKind::Reset => "reset",
            FaultKind::Truncate => "truncate",
            FaultKind::Stall => "stall",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Fault probabilities for one route prefix.
#[derive(Clone, Debug)]
pub struct RouteFaults {
    /// Requests whose pre-query path starts with this prefix are subject
    /// to the rule (first matching rule wins).
    pub route_prefix: String,
    /// `(kind, probability)` pairs; probabilities are cumulative-summed,
    /// so their total must stay ≤ 1.0.
    pub faults: Vec<(FaultKind, f64)>,
}

/// A seeded, per-route chaos configuration for [`crate::Server`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed of every fault decision; same seed + same traffic = same
    /// faults.
    pub seed: u64,
    /// Route rules, matched in order by prefix.
    pub routes: Vec<RouteFaults>,
    /// How long a [`FaultKind::Stall`] sleeps before serving.
    pub stall: Duration,
}

impl FaultPlan {
    /// An empty plan (no faults) under `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            routes: Vec::new(),
            stall: Duration::from_millis(25),
        }
    }

    /// Adds a rule for every route starting with `prefix`. The
    /// probabilities must sum to at most 1.0.
    pub fn route(mut self, prefix: impl Into<String>, faults: &[(FaultKind, f64)]) -> FaultPlan {
        let total: f64 = faults.iter().map(|(_, p)| p).sum();
        assert!(
            (0.0..=1.0).contains(&total),
            "fault probabilities must sum to [0, 1], got {total}"
        );
        self.routes.push(RouteFaults {
            route_prefix: prefix.into(),
            faults: faults.to_vec(),
        });
        self
    }

    /// Adds a rule matching every route (prefix `/`).
    pub fn everywhere(self, faults: &[(FaultKind, f64)]) -> FaultPlan {
        self.route("/", faults)
    }

    /// Sets the [`FaultKind::Stall`] sleep.
    pub fn with_stall(mut self, stall: Duration) -> FaultPlan {
        self.stall = stall;
        self
    }
}

/// The runtime state of a [`FaultPlan`]: per-request arrival counters and
/// an injected-fault tally. One injector per server.
pub struct FaultInjector {
    plan: FaultPlan,
    /// Arrival count per request key: the n-th arrival of the same
    /// (route, body) draws from its own derived stream, so a retried
    /// request gets a fresh (but still deterministic) decision.
    arrivals: Mutex<HashMap<u64, u32>>,
    injected: AtomicU64,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            arrivals: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Decides the fate of one request arrival. `route` is the pre-query
    /// path; `body` the raw request body. Returns the fault to inject, or
    /// `None` to serve normally.
    pub fn decide(&self, route: &str, body: &[u8]) -> Option<FaultKind> {
        let rule = self
            .plan
            .routes
            .iter()
            .find(|r| route.starts_with(&r.route_prefix))?;
        let key = request_key(route, body);
        let arrival = {
            let mut arrivals = self.arrivals.lock();
            let slot = arrivals.entry(key).or_insert(0);
            let current = *slot;
            *slot = slot.saturating_add(1);
            current
        };
        let mut rng = ChaCha8Rng::from_seed(decision_seed(self.plan.seed, key, arrival));
        // One uniform draw in [0, 1) against the cumulative probabilities.
        let draw = f64::from(rng.next_u32()) / (f64::from(u32::MAX) + 1.0);
        let mut acc = 0.0f64;
        for (kind, p) in &rule.faults {
            acc += p;
            if draw < acc {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Some(*kind);
            }
        }
        None
    }

    /// Total faults injected so far.
    pub fn injected_total(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The configured stall duration.
    pub fn stall(&self) -> Duration {
        self.plan.stall
    }
}

/// FNV-1a over route and body, with a separator so `("/a", b"b")` and
/// `("/ab", b"")` hash apart.
pub(crate) fn request_key(route: &str, body: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut step = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in route.bytes() {
        step(b);
    }
    step(0xff);
    for &b in body {
        step(b);
    }
    hash
}

/// 32-byte ChaCha seed derived from (plan seed, request key, arrival).
fn decision_seed(seed: u64, key: u64, arrival: u32) -> [u8; 32] {
    let mut out = [0u8; 32];
    out[0..8].copy_from_slice(&seed.to_le_bytes());
    out[8..16].copy_from_slice(&key.to_le_bytes());
    out[16..20].copy_from_slice(&arrival.to_le_bytes());
    out[20..28].copy_from_slice(&(seed ^ key.rotate_left(17)).to_le_bytes());
    out[28..32].copy_from_slice(&0x5349_4654u32.to_le_bytes()); // "SIFT"
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(42).route(
            "/api",
            &[
                (FaultKind::Reset, 0.2),
                (FaultKind::InternalError, 0.2),
                (FaultKind::Truncate, 0.1),
            ],
        )
    }

    #[test]
    fn decisions_replay_exactly() {
        let a = FaultInjector::new(plan());
        let b = FaultInjector::new(plan());
        let bodies: Vec<Vec<u8>> = (0..200u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for body in &bodies {
            assert_eq!(a.decide("/api/frame", body), b.decide("/api/frame", body));
        }
        assert_eq!(a.injected_total(), b.injected_total());
        assert!(a.injected_total() > 0, "some faults must fire at 50%");
    }

    #[test]
    fn decisions_are_arrival_order_independent() {
        // The same multiset of arrivals, visited in different orders,
        // produces the same decision per (request, arrival index).
        let a = FaultInjector::new(plan());
        let b = FaultInjector::new(plan());
        let first: Vec<_> = (0..50u32)
            .map(|i| a.decide("/api/frame", &i.to_le_bytes()))
            .collect();
        let mut second = vec![None; 50];
        for i in (0..50u32).rev() {
            second[i as usize] = b.decide("/api/frame", &i.to_le_bytes());
        }
        assert_eq!(first, second);
    }

    #[test]
    fn retries_draw_fresh_decisions() {
        let inj = FaultInjector::new(FaultPlan::new(7).route("/", &[(FaultKind::Reset, 0.5)]));
        let decisions: Vec<_> = (0..64).map(|_| inj.decide("/x", b"same")).collect();
        assert!(decisions.iter().any(|d| d.is_some()));
        assert!(
            decisions.iter().any(|d| d.is_none()),
            "a 50% fault rate must let retries through eventually"
        );
    }

    #[test]
    fn unmatched_routes_are_untouched() {
        let inj = FaultInjector::new(plan());
        for i in 0..100u32 {
            assert_eq!(inj.decide("/healthz", &i.to_le_bytes()), None);
        }
        assert_eq!(inj.injected_total(), 0);
    }

    #[test]
    fn first_matching_prefix_wins() {
        let p = FaultPlan::new(1)
            .route("/api/frame", &[(FaultKind::Stall, 1.0)])
            .everywhere(&[(FaultKind::Reset, 1.0)]);
        let inj = FaultInjector::new(p);
        assert_eq!(inj.decide("/api/frame", b""), Some(FaultKind::Stall));
        assert_eq!(inj.decide("/api/rising", b""), Some(FaultKind::Reset));
    }

    #[test]
    fn labels_cover_every_kind_uniquely() {
        let mut labels: Vec<_> = FaultKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FaultKind::ALL.len());
    }

    #[test]
    #[should_panic(expected = "sum to [0, 1]")]
    fn overweight_plans_rejected() {
        let _ = FaultPlan::new(0).route("/", &[(FaultKind::Reset, 0.7), (FaultKind::Stall, 0.7)]);
    }
}

//! Deterministic fault injection for the HTTP server.
//!
//! The paper's crawl ran for months against a live service that throttles,
//! drops connections and intermittently fails; SIFT's claim is that the
//! pipeline recovers a clean signal anyway. To test that claim the server
//! can be configured with a [`FaultPlan`]: per-route probabilities of
//! injected failures — error statuses, `Retry-After`-less 429 storms,
//! connection resets mid-response, truncated bodies and read stalls.
//!
//! Every decision is *replayable*: instead of one shared random stream
//! (whose draws would depend on worker-thread interleaving), the injector
//! derives an independent ChaCha8 stream from `(plan seed, request key,
//! arrival number)`, where the request key hashes the route and body.
//! Identical request traffic therefore produces the identical fault
//! sequence in every run — a chaos run with a pinned seed is bit-for-bit
//! reproducible, and `scripts/check.sh` verifies exactly that.

use parking_lot::Mutex;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One kind of injected misbehaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Answer `500 Internal Server Error` without running the handler.
    InternalError,
    /// Answer `503 Service Unavailable` without running the handler.
    Unavailable,
    /// Answer `429 Too Many Requests` *without* a `Retry-After` header
    /// (the client must fall back to its own exponential backoff).
    RateStorm,
    /// Close the connection after reading the request, before writing any
    /// byte of the response (the client sees a reset / unexpected EOF).
    Reset,
    /// Write a truncated prefix of the real response, then close (the
    /// declared `Content-Length` promises more bytes than ever arrive).
    Truncate,
    /// Sleep before serving the response normally (a read stall; absorbed
    /// by client timeouts, surfaced as latency).
    Stall,
}

impl FaultKind {
    /// Every kind, in declaration order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::InternalError,
        FaultKind::Unavailable,
        FaultKind::RateStorm,
        FaultKind::Reset,
        FaultKind::Truncate,
        FaultKind::Stall,
    ];

    /// The metric label this kind is counted under in
    /// `sift_net_faults_injected_total{kind=…}` (snake_case of the
    /// variant name; the `fault-obs` lint rule checks the mapping stays
    /// complete).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::InternalError => "internal_error",
            FaultKind::Unavailable => "unavailable",
            FaultKind::RateStorm => "rate_storm",
            FaultKind::Reset => "reset",
            FaultKind::Truncate => "truncate",
            FaultKind::Stall => "stall",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Fault probabilities for one route prefix.
#[derive(Clone, Debug)]
pub struct RouteFaults {
    /// Requests whose pre-query path starts with this prefix are subject
    /// to the rule (first matching rule wins).
    pub route_prefix: String,
    /// `(kind, probability)` pairs; probabilities are cumulative-summed,
    /// so their total must stay ≤ 1.0.
    pub faults: Vec<(FaultKind, f64)>,
}

/// A seeded, per-route chaos configuration for [`crate::Server`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed of every fault decision; same seed + same traffic = same
    /// faults.
    pub seed: u64,
    /// Route rules, matched in order by prefix.
    pub routes: Vec<RouteFaults>,
    /// How long a [`FaultKind::Stall`] sleeps before serving.
    pub stall: Duration,
}

impl FaultPlan {
    /// An empty plan (no faults) under `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            routes: Vec::new(),
            stall: Duration::from_millis(25),
        }
    }

    /// Adds a rule for every route starting with `prefix`. The
    /// probabilities must sum to at most 1.0.
    pub fn route(mut self, prefix: impl Into<String>, faults: &[(FaultKind, f64)]) -> FaultPlan {
        let total: f64 = faults.iter().map(|(_, p)| p).sum();
        assert!(
            (0.0..=1.0).contains(&total),
            "fault probabilities must sum to [0, 1], got {total}"
        );
        self.routes.push(RouteFaults {
            route_prefix: prefix.into(),
            faults: faults.to_vec(),
        });
        self
    }

    /// Adds a rule matching every route (prefix `/`).
    pub fn everywhere(self, faults: &[(FaultKind, f64)]) -> FaultPlan {
        self.route("/", faults)
    }

    /// Sets the [`FaultKind::Stall`] sleep.
    pub fn with_stall(mut self, stall: Duration) -> FaultPlan {
        self.stall = stall;
        self
    }
}

/// The runtime state of a [`FaultPlan`]: per-request arrival counters and
/// an injected-fault tally. One injector per server.
pub struct FaultInjector {
    plan: FaultPlan,
    /// Arrival count per request key: the n-th arrival of the same
    /// (route, body) draws from its own derived stream, so a retried
    /// request gets a fresh (but still deterministic) decision.
    arrivals: Mutex<HashMap<u64, u32>>,
    injected: AtomicU64,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            arrivals: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Decides the fate of one request arrival. `route` is the pre-query
    /// path; `body` the raw request body. Returns the fault to inject, or
    /// `None` to serve normally.
    pub fn decide(&self, route: &str, body: &[u8]) -> Option<FaultKind> {
        let rule = self
            .plan
            .routes
            .iter()
            .find(|r| route.starts_with(&r.route_prefix))?;
        let key = request_key(route, body);
        let arrival = {
            let mut arrivals = self.arrivals.lock();
            let slot = arrivals.entry(key).or_insert(0);
            let current = *slot;
            *slot = slot.saturating_add(1);
            current
        };
        let mut rng = ChaCha8Rng::from_seed(decision_seed(self.plan.seed, key, arrival));
        // One uniform draw in [0, 1) against the cumulative probabilities.
        let draw = f64::from(rng.next_u32()) / (f64::from(u32::MAX) + 1.0);
        let mut acc = 0.0f64;
        for (kind, p) in &rule.faults {
            acc += p;
            if draw < acc {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Some(*kind);
            }
        }
        None
    }

    /// Total faults injected so far.
    pub fn injected_total(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The configured stall duration.
    pub fn stall(&self) -> Duration {
        self.plan.stall
    }
}

/// FNV-1a over route and body, with a separator so `("/a", b"b")` and
/// `("/ab", b"")` hash apart.
pub(crate) fn request_key(route: &str, body: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut step = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in route.bytes() {
        step(b);
    }
    step(0xff);
    for &b in body {
        step(b);
    }
    hash
}

/// 32-byte ChaCha seed derived from (plan seed, request key, arrival).
fn decision_seed(seed: u64, key: u64, arrival: u32) -> [u8; 32] {
    let mut out = [0u8; 32];
    out[0..8].copy_from_slice(&seed.to_le_bytes());
    out[8..16].copy_from_slice(&key.to_le_bytes());
    out[16..20].copy_from_slice(&arrival.to_le_bytes());
    out[20..28].copy_from_slice(&(seed ^ key.rotate_left(17)).to_le_bytes());
    out[28..32].copy_from_slice(&0x5349_4654u32.to_le_bytes()); // "SIFT"
    out
}

/// One kind of cluster-grade nemesis fault. Unlike [`FaultKind`] —
/// which misbehaves *inside* one server — a nemesis fault acts on the
/// cluster: links between named endpoints, or whole processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NemesisFaultKind {
    /// Both directions between two endpoints drop requests.
    PartitionSym,
    /// Requests are delivered but the replies are lost — the receiver
    /// acts, the sender never learns (the classic zombie-lease shape).
    PartitionAsym,
    /// Traffic between two endpoints is delayed, not dropped.
    SlowLink,
    /// One worker's heartbeats are silently dropped.
    HeartbeatDrop,
    /// One worker's heartbeats are delayed.
    HeartbeatDelay,
    /// The coordinator process is killed.
    KillCoordinator,
    /// The coordinator process is restarted (recovers from its journal).
    RestartCoordinator,
    /// One worker process is killed.
    KillWorker,
    /// Installed link faults are removed.
    Heal,
}

impl NemesisFaultKind {
    /// Every kind, in declaration order.
    pub const ALL: [NemesisFaultKind; 9] = [
        NemesisFaultKind::PartitionSym,
        NemesisFaultKind::PartitionAsym,
        NemesisFaultKind::SlowLink,
        NemesisFaultKind::HeartbeatDrop,
        NemesisFaultKind::HeartbeatDelay,
        NemesisFaultKind::KillCoordinator,
        NemesisFaultKind::RestartCoordinator,
        NemesisFaultKind::KillWorker,
        NemesisFaultKind::Heal,
    ];

    /// The metric label this kind is counted under in
    /// `sift_cluster_nemesis_faults_total{kind=…}` (snake_case of the
    /// variant name; the `nemesis-obs` lint rule checks the mapping
    /// stays complete).
    pub fn label(self) -> &'static str {
        match self {
            NemesisFaultKind::PartitionSym => "partition_sym",
            NemesisFaultKind::PartitionAsym => "partition_asym",
            NemesisFaultKind::SlowLink => "slow_link",
            NemesisFaultKind::HeartbeatDrop => "heartbeat_drop",
            NemesisFaultKind::HeartbeatDelay => "heartbeat_delay",
            NemesisFaultKind::KillCoordinator => "kill_coordinator",
            NemesisFaultKind::RestartCoordinator => "restart_coordinator",
            NemesisFaultKind::KillWorker => "kill_worker",
            NemesisFaultKind::Heal => "heal",
        }
    }
}

impl std::fmt::Display for NemesisFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One concrete nemesis operation over named endpoints. Endpoint names
/// are client identities (`x-fetcher-ip` header, or peer IP) on the
/// `from` side and server names (see `Server::with_nemesis`) on the
/// `to` side.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NemesisOp {
    /// Drop requests in both directions between `a` and `b`.
    PartitionSym {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
    },
    /// Deliver requests from `from` to `to`, but lose the replies.
    PartitionAsym {
        /// The side whose requests still arrive.
        from: String,
        /// The side whose replies are lost.
        to: String,
    },
    /// Delay traffic between `a` and `b` by `delay_ms`.
    SlowLink {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
        /// Added one-way latency, milliseconds.
        delay_ms: u64,
    },
    /// Silently drop `worker`'s heartbeats (other traffic unaffected).
    HeartbeatDrop {
        /// The affected worker identity.
        worker: String,
    },
    /// Delay `worker`'s heartbeats by `delay_ms`.
    HeartbeatDelay {
        /// The affected worker identity.
        worker: String,
        /// Added heartbeat latency, milliseconds.
        delay_ms: u64,
    },
    /// Remove link faults between `a` and `b` (either direction).
    Heal {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
    },
    /// Remove every installed link fault.
    HealAll,
    /// Kill the coordinator process (executed by the harness).
    KillCoordinator,
    /// Restart the coordinator process (executed by the harness).
    RestartCoordinator,
    /// Kill `worker`'s process (executed by the harness).
    KillWorker {
        /// The victim worker identity.
        worker: String,
    },
}

impl NemesisOp {
    /// The fault kind this operation is counted as.
    pub fn kind(&self) -> NemesisFaultKind {
        match self {
            NemesisOp::PartitionSym { .. } => NemesisFaultKind::PartitionSym,
            NemesisOp::PartitionAsym { .. } => NemesisFaultKind::PartitionAsym,
            NemesisOp::SlowLink { .. } => NemesisFaultKind::SlowLink,
            NemesisOp::HeartbeatDrop { .. } => NemesisFaultKind::HeartbeatDrop,
            NemesisOp::HeartbeatDelay { .. } => NemesisFaultKind::HeartbeatDelay,
            NemesisOp::Heal { .. } | NemesisOp::HealAll => NemesisFaultKind::Heal,
            NemesisOp::KillCoordinator => NemesisFaultKind::KillCoordinator,
            NemesisOp::RestartCoordinator => NemesisFaultKind::RestartCoordinator,
            NemesisOp::KillWorker { .. } => NemesisFaultKind::KillWorker,
        }
    }
}

impl std::fmt::Display for NemesisOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NemesisOp::PartitionSym { a, b } => write!(f, "partition_sym {a} <-x-> {b}"),
            NemesisOp::PartitionAsym { from, to } => write!(f, "partition_asym {from} -> {to}"),
            NemesisOp::SlowLink { a, b, delay_ms } => {
                write!(f, "slow_link {a} <-> {b} +{delay_ms}ms")
            }
            NemesisOp::HeartbeatDrop { worker } => write!(f, "heartbeat_drop {worker}"),
            NemesisOp::HeartbeatDelay { worker, delay_ms } => {
                write!(f, "heartbeat_delay {worker} +{delay_ms}ms")
            }
            NemesisOp::Heal { a, b } => write!(f, "heal {a} <-> {b}"),
            NemesisOp::HealAll => f.write_str("heal *"),
            NemesisOp::KillCoordinator => f.write_str("kill_coordinator"),
            NemesisOp::RestartCoordinator => f.write_str("restart_coordinator"),
            NemesisOp::KillWorker { worker } => write!(f, "kill_worker {worker}"),
        }
    }
}

/// One scheduled nemesis operation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NemesisStep {
    /// When the operation fires, milliseconds after the run starts.
    pub at_ms: u64,
    /// What happens.
    pub op: NemesisOp,
}

/// A seeded, replayable nemesis schedule: "kill the coordinator at T1,
/// partition worker 2 at T2, heal at T3". The same plan over the same
/// deterministic world converges to the same final result, which is what
/// the nemesis acceptance gate byte-diffs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NemesisPlan {
    /// The seed the schedule was derived from (0 for hand-built plans).
    pub seed: u64,
    /// Operations in firing order.
    pub steps: Vec<NemesisStep>,
}

impl NemesisPlan {
    /// An empty schedule under `seed`.
    pub fn new(seed: u64) -> NemesisPlan {
        NemesisPlan {
            seed,
            steps: Vec::new(),
        }
    }

    /// Appends an operation at `at_ms` (keeps the schedule sorted).
    pub fn step(mut self, at_ms: u64, op: NemesisOp) -> NemesisPlan {
        self.steps.push(NemesisStep { at_ms, op });
        self.steps.sort_by_key(|x| x.at_ms);
        self
    }

    /// A randomized-but-seeded schedule over `horizon_ms`: the
    /// coordinator is killed and restarted in the first half, one worker
    /// is partitioned (symmetrically or asymmetrically, by coin) in the
    /// second half and healed before the horizon, and a second worker
    /// may get a heartbeat delay. A pure function of its arguments —
    /// replaying the seed replays the schedule exactly.
    pub fn random(
        seed: u64,
        coordinator: &str,
        workers: &[String],
        horizon_ms: u64,
    ) -> NemesisPlan {
        let mut rng = ChaCha8Rng::from_seed(nemesis_seed(seed));
        let h = horizon_ms.max(100);
        let frac = |rng: &mut ChaCha8Rng, lo: f64, hi: f64| -> u64 {
            let draw = f64::from(rng.next_u32()) / (f64::from(u32::MAX) + 1.0);
            let f = lo + draw * (hi - lo);
            ((h as f64) * f) as u64
        };
        let kill_at = frac(&mut rng, 0.20, 0.35);
        let restart_at = kill_at + frac(&mut rng, 0.10, 0.20);
        let mut plan = NemesisPlan::new(seed)
            .step(kill_at, NemesisOp::KillCoordinator)
            .step(restart_at, NemesisOp::RestartCoordinator);
        if !workers.is_empty() {
            let victim = workers[(rng.next_u32() as usize) % workers.len()].clone();
            let cut_at = frac(&mut rng, 0.55, 0.70);
            let heal_at = cut_at + frac(&mut rng, 0.15, 0.25);
            let cut = if rng.next_u32() % 2 == 0 {
                NemesisOp::PartitionSym {
                    a: victim.clone(),
                    b: coordinator.to_owned(),
                }
            } else {
                NemesisOp::PartitionAsym {
                    from: victim.clone(),
                    to: coordinator.to_owned(),
                }
            };
            plan = plan.step(cut_at, cut).step(
                heal_at,
                NemesisOp::Heal {
                    a: victim.clone(),
                    b: coordinator.to_owned(),
                },
            );
            if workers.len() > 1 && rng.next_u32() % 2 == 0 {
                let other = workers
                    .iter()
                    .find(|w| **w != victim)
                    .cloned()
                    .unwrap_or(victim);
                let delay_at = frac(&mut rng, 0.40, 0.55);
                plan = plan
                    .step(
                        delay_at,
                        NemesisOp::HeartbeatDelay {
                            worker: other.clone(),
                            delay_ms: 5 + u64::from(rng.next_u32() % 20),
                        },
                    )
                    .step(
                        delay_at + frac(&mut rng, 0.05, 0.10),
                        NemesisOp::Heal {
                            a: other,
                            b: coordinator.to_owned(),
                        },
                    );
            }
        }
        plan
    }
}

/// What an installed link rule does to a matched request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkAction {
    /// Drop the request before the handler runs (sender sees a reset).
    DropRequest,
    /// Run the handler but never write the reply (receiver acts, sender
    /// sees a reset — the asymmetric-partition shape).
    DropReply,
    /// Delay the request by this much, then serve normally.
    Delay(Duration),
}

/// One installed link fault: traffic `from → to` (with `"*"` matching
/// any endpoint), optionally scoped to a route prefix.
#[derive(Clone, Debug)]
pub struct LinkRule {
    /// Sender identity (`"*"` = any).
    pub from: String,
    /// Receiver (server) name (`"*"` = any).
    pub to: String,
    /// The fault kind counted when the rule matches.
    pub kind: NemesisFaultKind,
    /// What happens to matched traffic.
    pub action: LinkAction,
    /// Only routes starting with this prefix are affected, when set.
    pub route_prefix: Option<String>,
}

impl LinkRule {
    fn involves(&self, a: &str, b: &str) -> bool {
        (self.from == a && (self.to == b || self.to == "*"))
            || (self.from == b && (self.to == a || self.to == "*"))
    }
}

/// The cluster's shared link-fault table. One instance is handed to
/// every nemesis-aware server (`Server::with_nemesis`); the
/// [`NemesisDriver`] installs and removes rules as the schedule fires.
#[derive(Default)]
pub struct NemesisState {
    rules: Mutex<Vec<LinkRule>>,
    dropped: AtomicU64,
    delayed: AtomicU64,
}

impl NemesisState {
    /// An empty table (no link faults).
    pub fn new() -> NemesisState {
        NemesisState::default()
    }

    /// Applies a network-level operation to the table. Returns `false`
    /// for process-level operations (kill/restart), which only the
    /// harness that owns the processes can execute.
    pub fn apply(&self, op: &NemesisOp) -> bool {
        let kind = op.kind();
        let mut rules = self.rules.lock();
        match op {
            NemesisOp::PartitionSym { a, b } => {
                for (from, to) in [(a, b), (b, a)] {
                    rules.push(LinkRule {
                        from: from.clone(),
                        to: to.clone(),
                        kind,
                        action: LinkAction::DropRequest,
                        route_prefix: None,
                    });
                }
                true
            }
            NemesisOp::PartitionAsym { from, to } => {
                rules.push(LinkRule {
                    from: from.clone(),
                    to: to.clone(),
                    kind,
                    action: LinkAction::DropReply,
                    route_prefix: None,
                });
                true
            }
            NemesisOp::SlowLink { a, b, delay_ms } => {
                for (from, to) in [(a, b), (b, a)] {
                    rules.push(LinkRule {
                        from: from.clone(),
                        to: to.clone(),
                        kind,
                        action: LinkAction::Delay(Duration::from_millis(*delay_ms)),
                        route_prefix: None,
                    });
                }
                true
            }
            NemesisOp::HeartbeatDrop { worker } => {
                rules.push(LinkRule {
                    from: worker.clone(),
                    to: "*".to_owned(),
                    kind,
                    action: LinkAction::DropRequest,
                    route_prefix: Some("/cluster/heartbeat".to_owned()),
                });
                true
            }
            NemesisOp::HeartbeatDelay { worker, delay_ms } => {
                rules.push(LinkRule {
                    from: worker.clone(),
                    to: "*".to_owned(),
                    kind,
                    action: LinkAction::Delay(Duration::from_millis(*delay_ms)),
                    route_prefix: Some("/cluster/heartbeat".to_owned()),
                });
                true
            }
            NemesisOp::Heal { a, b } => {
                rules.retain(|r| !r.involves(a, b));
                true
            }
            NemesisOp::HealAll => {
                rules.clear();
                true
            }
            NemesisOp::KillCoordinator
            | NemesisOp::RestartCoordinator
            | NemesisOp::KillWorker { .. } => false,
        }
    }

    /// The fate of one request `from → to` on `route`: the first
    /// matching rule's action, or `None` for clean delivery.
    pub fn decide(
        &self,
        from: &str,
        to: &str,
        route: &str,
    ) -> Option<(NemesisFaultKind, LinkAction)> {
        let rules = self.rules.lock();
        let hit = rules.iter().find(|r| {
            (r.from == "*" || r.from == from)
                && (r.to == "*" || r.to == to)
                && match r.route_prefix.as_deref() {
                    Some(p) => route.starts_with(p),
                    None => true,
                }
        })?;
        match hit.action {
            LinkAction::Delay(_) => {
                self.delayed.fetch_add(1, Ordering::Relaxed);
            }
            LinkAction::DropRequest | LinkAction::DropReply => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        Some((hit.kind, hit.action))
    }

    /// Installed rules right now (for audits).
    pub fn active_rules(&self) -> usize {
        self.rules.lock().len()
    }

    /// Requests dropped (request or reply side) so far.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Requests delayed so far.
    pub fn delayed_total(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }
}

/// Walks a [`NemesisPlan`] against the wall clock: network operations
/// are applied to the shared [`NemesisState`], process operations are
/// handed back for the owning harness to execute. Every fired step is
/// counted under `sift_cluster_nemesis_faults_total{kind=…}`.
pub struct NemesisDriver {
    plan: NemesisPlan,
    state: Arc<NemesisState>,
    started: Instant,
    next: usize,
}

impl NemesisDriver {
    /// A driver for `plan` over the cluster-shared `state`. The clock
    /// starts now.
    pub fn new(plan: NemesisPlan, state: Arc<NemesisState>) -> NemesisDriver {
        NemesisDriver {
            plan,
            state,
            started: Instant::now(),
            next: 0,
        }
    }

    /// Fires every step whose time has come. Network steps are applied
    /// in place; process steps are returned for the harness.
    pub fn due(&mut self) -> Vec<NemesisOp> {
        let now = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let mut process = Vec::new();
        while let Some(step) = self.plan.steps.get(self.next) {
            if step.at_ms > now {
                break;
            }
            let op = step.op.clone();
            self.next += 1;
            sift_obs::counter(
                "sift_cluster_nemesis_faults_total",
                &[("kind", op.kind().label())],
            )
            .inc();
            sift_obs::event(
                sift_obs::Level::Warn,
                "net.nemesis",
                "nemesis step fired",
                &[
                    ("op", serde_json::Value::Str(op.to_string())),
                    ("at_ms", serde_json::Value::UInt(step.at_ms)),
                ],
            );
            if !self.state.apply(&op) {
                process.push(op);
            }
        }
        process
    }

    /// Whether every step has fired.
    pub fn finished(&self) -> bool {
        self.next >= self.plan.steps.len()
    }

    /// The schedule being driven.
    pub fn plan(&self) -> &NemesisPlan {
        &self.plan
    }
}

/// 32-byte ChaCha seed for schedule generation, tagged "NMSP" so it can
/// never collide with per-request fault streams.
fn nemesis_seed(seed: u64) -> [u8; 32] {
    let mut out = [0u8; 32];
    out[0..8].copy_from_slice(&seed.to_le_bytes());
    out[8..16].copy_from_slice(&seed.rotate_left(23).to_le_bytes());
    out[28..32].copy_from_slice(&0x4e4d_5350u32.to_le_bytes()); // "NMSP"
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(42).route(
            "/api",
            &[
                (FaultKind::Reset, 0.2),
                (FaultKind::InternalError, 0.2),
                (FaultKind::Truncate, 0.1),
            ],
        )
    }

    #[test]
    fn decisions_replay_exactly() {
        let a = FaultInjector::new(plan());
        let b = FaultInjector::new(plan());
        let bodies: Vec<Vec<u8>> = (0..200u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for body in &bodies {
            assert_eq!(a.decide("/api/frame", body), b.decide("/api/frame", body));
        }
        assert_eq!(a.injected_total(), b.injected_total());
        assert!(a.injected_total() > 0, "some faults must fire at 50%");
    }

    #[test]
    fn decisions_are_arrival_order_independent() {
        // The same multiset of arrivals, visited in different orders,
        // produces the same decision per (request, arrival index).
        let a = FaultInjector::new(plan());
        let b = FaultInjector::new(plan());
        let first: Vec<_> = (0..50u32)
            .map(|i| a.decide("/api/frame", &i.to_le_bytes()))
            .collect();
        let mut second = vec![None; 50];
        for i in (0..50u32).rev() {
            second[i as usize] = b.decide("/api/frame", &i.to_le_bytes());
        }
        assert_eq!(first, second);
    }

    #[test]
    fn retries_draw_fresh_decisions() {
        let inj = FaultInjector::new(FaultPlan::new(7).route("/", &[(FaultKind::Reset, 0.5)]));
        let decisions: Vec<_> = (0..64).map(|_| inj.decide("/x", b"same")).collect();
        assert!(decisions.iter().any(|d| d.is_some()));
        assert!(
            decisions.iter().any(|d| d.is_none()),
            "a 50% fault rate must let retries through eventually"
        );
    }

    #[test]
    fn unmatched_routes_are_untouched() {
        let inj = FaultInjector::new(plan());
        for i in 0..100u32 {
            assert_eq!(inj.decide("/healthz", &i.to_le_bytes()), None);
        }
        assert_eq!(inj.injected_total(), 0);
    }

    #[test]
    fn first_matching_prefix_wins() {
        let p = FaultPlan::new(1)
            .route("/api/frame", &[(FaultKind::Stall, 1.0)])
            .everywhere(&[(FaultKind::Reset, 1.0)]);
        let inj = FaultInjector::new(p);
        assert_eq!(inj.decide("/api/frame", b""), Some(FaultKind::Stall));
        assert_eq!(inj.decide("/api/rising", b""), Some(FaultKind::Reset));
    }

    #[test]
    fn labels_cover_every_kind_uniquely() {
        let mut labels: Vec<_> = FaultKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FaultKind::ALL.len());
    }

    #[test]
    #[should_panic(expected = "sum to [0, 1]")]
    fn overweight_plans_rejected() {
        let _ = FaultPlan::new(0).route("/", &[(FaultKind::Reset, 0.7), (FaultKind::Stall, 0.7)]);
    }

    #[test]
    fn nemesis_labels_cover_every_kind_uniquely() {
        let mut labels: Vec<_> = NemesisFaultKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), NemesisFaultKind::ALL.len());
    }

    #[test]
    fn random_schedules_replay_exactly_and_vary_by_seed() {
        let workers = vec!["w0".to_owned(), "w1".to_owned(), "w2".to_owned()];
        let a = NemesisPlan::random(7, "coord", &workers, 4_000);
        let b = NemesisPlan::random(7, "coord", &workers, 4_000);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert!(a.steps.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert!(a.steps.iter().any(|s| s.op == NemesisOp::KillCoordinator));
        assert!(a
            .steps
            .iter()
            .any(|s| s.op == NemesisOp::RestartCoordinator));
        assert!(a.steps.iter().any(|s| matches!(
            s.op.kind(),
            NemesisFaultKind::PartitionSym | NemesisFaultKind::PartitionAsym
        )));
        assert!(a
            .steps
            .iter()
            .any(|s| s.op.kind() == NemesisFaultKind::Heal));
        let c = NemesisPlan::random(8, "coord", &workers, 4_000);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn symmetric_partition_cuts_both_directions_until_healed() {
        let state = NemesisState::new();
        assert!(state.apply(&NemesisOp::PartitionSym {
            a: "w1".into(),
            b: "coord".into(),
        }));
        assert_eq!(
            state.decide("w1", "coord", "/cluster/lease"),
            Some((NemesisFaultKind::PartitionSym, LinkAction::DropRequest))
        );
        assert_eq!(
            state.decide("coord", "w1", "/anything"),
            Some((NemesisFaultKind::PartitionSym, LinkAction::DropRequest))
        );
        assert_eq!(state.decide("w2", "coord", "/cluster/lease"), None);
        assert!(state.apply(&NemesisOp::Heal {
            a: "coord".into(),
            b: "w1".into(),
        }));
        assert_eq!(state.decide("w1", "coord", "/cluster/lease"), None);
        assert_eq!(state.active_rules(), 0);
        assert!(state.dropped_total() >= 2);
    }

    #[test]
    fn asymmetric_partition_loses_only_the_reply() {
        let state = NemesisState::new();
        assert!(state.apply(&NemesisOp::PartitionAsym {
            from: "w0".into(),
            to: "coord".into(),
        }));
        assert_eq!(
            state.decide("w0", "coord", "/cluster/result"),
            Some((NemesisFaultKind::PartitionAsym, LinkAction::DropReply)),
            "requests arrive, replies are lost"
        );
        assert_eq!(
            state.decide("coord", "w0", "/x"),
            None,
            "the reverse direction is untouched"
        );
    }

    #[test]
    fn heartbeat_faults_are_route_scoped() {
        let state = NemesisState::new();
        assert!(state.apply(&NemesisOp::HeartbeatDrop {
            worker: "w2".into(),
        }));
        assert_eq!(
            state.decide("w2", "coord", "/cluster/heartbeat"),
            Some((NemesisFaultKind::HeartbeatDrop, LinkAction::DropRequest))
        );
        assert_eq!(
            state.decide("w2", "coord", "/cluster/lease"),
            None,
            "only heartbeats are affected"
        );
    }

    #[test]
    fn process_ops_are_for_the_harness_not_the_link_table() {
        let state = NemesisState::new();
        assert!(!state.apply(&NemesisOp::KillCoordinator));
        assert!(!state.apply(&NemesisOp::RestartCoordinator));
        assert!(!state.apply(&NemesisOp::KillWorker {
            worker: "w0".into(),
        }));
        assert_eq!(state.active_rules(), 0);
    }

    #[test]
    fn driver_applies_network_steps_and_hands_back_process_steps() {
        let state = Arc::new(NemesisState::new());
        let plan = NemesisPlan::new(0)
            .step(
                0,
                NemesisOp::PartitionSym {
                    a: "w0".into(),
                    b: "coord".into(),
                },
            )
            .step(0, NemesisOp::KillCoordinator)
            .step(60_000, NemesisOp::RestartCoordinator);
        let mut driver = NemesisDriver::new(plan, Arc::clone(&state));
        let process = driver.due();
        assert_eq!(process, vec![NemesisOp::KillCoordinator]);
        assert_eq!(state.active_rules(), 2, "partition rules installed");
        assert!(!driver.finished(), "the far-future restart has not fired");
    }
}

//! HTTP/1.1 message types, parsing and serialization.

mod parse;
mod serialize;

pub use parse::{parse_request, parse_response, ParseError};
pub use serialize::{serialize_request, serialize_response};

use bytes::Bytes;
use std::fmt;

/// Maximum accepted size of a message head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum accepted body size.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// The request methods the stack supports.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    /// GET: no request body.
    Get,
    /// POST: body framed by `Content-Length`.
    Post,
}

impl Method {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An HTTP status code with its canonical reason phrase.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 405 Method Not Allowed.
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    /// 429 Too Many Requests — the service's rate limiter speaks this.
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    /// 500 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// True for 2xx codes.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// The canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// An ordered, case-insensitive header map.
///
/// Headers preserve insertion order (serialization is deterministic) and
/// compare names ASCII-case-insensitively, as HTTP requires. Names are
/// stored lower-cased.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// An empty header map.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Appends a header (does not replace existing values).
    pub fn append(&mut self, name: &str, value: impl Into<String>) {
        self.entries.push((name.to_ascii_lowercase(), value.into()));
    }

    /// Sets a header, replacing any existing values of the same name.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        let lower = name.to_ascii_lowercase();
        self.entries.retain(|(n, _)| *n != lower);
        self.entries.push((lower, value.into()));
    }

    /// First value of a header, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.entries
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// All `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parsed `Content-Length`, if present and valid.
    pub fn content_length(&self) -> Option<usize> {
        self.get("content-length")
            .and_then(|v| v.trim().parse().ok())
    }

    /// True if the message asks for the connection to be closed.
    pub fn wants_close(&self) -> bool {
        self.get("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// An HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// Request target (path + optional query), e.g. `/api/frame`.
    pub path: String,
    /// Header fields.
    pub headers: Headers,
    /// The body (empty for bodiless requests).
    pub body: Bytes,
}

impl Request {
    /// A bodiless GET.
    pub fn get(path: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            path: path.into(),
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// A POST carrying a JSON document.
    pub fn post_json<T: serde::Serialize>(
        path: impl Into<String>,
        value: &T,
    ) -> Result<Request, serde_json::Error> {
        let body = serde_json::to_vec(value)?;
        let mut headers = Headers::new();
        headers.set("content-type", "application/json");
        Ok(Request {
            method: Method::Post,
            path: path.into(),
            headers,
            body: Bytes::from(body),
        })
    }

    /// Deserializes the body as JSON.
    pub fn json<T: serde::de::DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }
}

/// An HTTP response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: StatusCode,
    /// Header fields.
    pub headers: Headers,
    /// The body.
    pub body: Bytes,
}

impl Response {
    /// An empty response with the given status.
    pub fn empty(status: StatusCode) -> Response {
        Response {
            status,
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// A 200 response carrying a JSON document.
    pub fn json<T: serde::Serialize>(value: &T) -> Result<Response, serde_json::Error> {
        Self::json_with_status(StatusCode::OK, value)
    }

    /// A response with an explicit status carrying a JSON document.
    pub fn json_with_status<T: serde::Serialize>(
        status: StatusCode,
        value: &T,
    ) -> Result<Response, serde_json::Error> {
        let body = serde_json::to_vec(value)?;
        let mut headers = Headers::new();
        headers.set("content-type", "application/json");
        Ok(Response {
            status,
            headers,
            body: Bytes::from(body),
        })
    }

    /// A plain-text response.
    pub fn text(status: StatusCode, text: impl Into<String>) -> Response {
        let mut headers = Headers::new();
        headers.set("content-type", "text/plain; charset=utf-8");
        Response {
            status,
            headers,
            body: Bytes::from(text.into().into_bytes()),
        }
    }

    /// Deserializes the body as JSON.
    pub fn parse_json<T: serde::de::DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_case_insensitivity() {
        let mut h = Headers::new();
        h.set("Content-Length", "42");
        assert_eq!(h.get("content-length"), Some("42"));
        assert_eq!(h.get("CONTENT-LENGTH"), Some("42"));
        assert_eq!(h.content_length(), Some(42));
    }

    #[test]
    fn set_replaces_append_accumulates() {
        let mut h = Headers::new();
        h.append("x-a", "1");
        h.append("X-A", "2");
        assert_eq!(h.len(), 2);
        assert_eq!(h.get("x-a"), Some("1"), "get returns the first value");
        h.set("x-a", "3");
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("x-a"), Some("3"));
    }

    #[test]
    fn wants_close_detection() {
        let mut h = Headers::new();
        assert!(!h.wants_close());
        h.set("connection", "keep-alive");
        assert!(!h.wants_close());
        h.set("connection", "Close");
        assert!(h.wants_close());
    }

    #[test]
    fn json_request_round_trip() {
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Doc {
            a: u32,
            b: String,
        }
        let doc = Doc {
            a: 7,
            b: "x".into(),
        };
        let req = Request::post_json("/t", &doc).expect("encode");
        assert_eq!(req.headers.get("content-type"), Some("application/json"));
        let back: Doc = req.json().expect("decode");
        assert_eq!(back, doc);
    }

    #[test]
    fn status_display_and_success() {
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
        assert_eq!(
            StatusCode::TOO_MANY_REQUESTS.to_string(),
            "429 Too Many Requests"
        );
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::NOT_FOUND.is_success());
        assert_eq!(StatusCode(418).reason(), "Unknown");
    }
}

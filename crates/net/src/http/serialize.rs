//! HTTP/1.1 message serialization.

use super::{Request, Response};
use bytes::{BufMut, Bytes, BytesMut};

/// Serializes a request, always emitting an accurate `Content-Length`.
pub fn serialize_request(req: &Request) -> Bytes {
    let mut out = BytesMut::with_capacity(128 + req.body.len());
    out.put_slice(req.method.as_str().as_bytes());
    out.put_u8(b' ');
    out.put_slice(req.path.as_bytes());
    out.put_slice(b" HTTP/1.1\r\n");
    for (name, value) in req.headers.iter() {
        if name == "content-length" {
            continue; // always recomputed below
        }
        put_header(&mut out, name, value);
    }
    put_header(&mut out, "content-length", &req.body.len().to_string());
    out.put_slice(b"\r\n");
    out.put_slice(&req.body);
    out.freeze()
}

/// Serializes a response, always emitting an accurate `Content-Length`.
pub fn serialize_response(resp: &Response) -> Bytes {
    let mut out = BytesMut::with_capacity(128 + resp.body.len());
    out.put_slice(b"HTTP/1.1 ");
    out.put_slice(resp.status.0.to_string().as_bytes());
    out.put_u8(b' ');
    out.put_slice(resp.status.reason().as_bytes());
    out.put_slice(b"\r\n");
    for (name, value) in resp.headers.iter() {
        if name == "content-length" {
            continue;
        }
        put_header(&mut out, name, value);
    }
    put_header(&mut out, "content-length", &resp.body.len().to_string());
    out.put_slice(b"\r\n");
    out.put_slice(&resp.body);
    out.freeze()
}

fn put_header(out: &mut BytesMut, name: &str, value: &str) {
    out.put_slice(name.as_bytes());
    out.put_slice(b": ");
    out.put_slice(value.as_bytes());
    out.put_slice(b"\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{parse_request, parse_response, Method, StatusCode};
    use bytes::BytesMut;

    #[test]
    fn request_round_trip() {
        let mut req = Request::get("/api/x?y=1");
        req.headers.set("x-fetcher-ip", "127.0.0.9");
        let wire = serialize_request(&req);
        let mut buf = BytesMut::from(&wire[..]);
        let back = parse_request(&mut buf).expect("ok").expect("complete");
        assert_eq!(back.method, Method::Get);
        assert_eq!(back.path, "/api/x?y=1");
        assert_eq!(back.headers.get("x-fetcher-ip"), Some("127.0.0.9"));
        assert_eq!(back.headers.content_length(), Some(0));
    }

    #[test]
    fn response_round_trip_with_body() {
        let resp = Response::text(StatusCode::OK, "hello");
        let wire = serialize_response(&resp);
        let mut buf = BytesMut::from(&wire[..]);
        let back = parse_response(&mut buf).expect("ok").expect("complete");
        assert_eq!(back.status, StatusCode::OK);
        assert_eq!(&back.body[..], b"hello");
    }

    #[test]
    fn content_length_is_always_recomputed() {
        let mut req = Request::get("/");
        req.headers.set("content-length", "9999"); // stale / wrong
        let wire = serialize_request(&req);
        let text = std::str::from_utf8(&wire).expect("utf8");
        assert!(text.contains("content-length: 0\r\n"));
        assert!(!text.contains("9999"));
    }
}

//! Incremental HTTP/1.1 message parsing.
//!
//! Both parsers work on a [`BytesMut`] accumulation buffer: callers read
//! from the socket into the buffer and call the parser after every read.
//! `Ok(None)` means "need more bytes"; `Ok(Some(msg))` consumes exactly
//! one message from the front of the buffer, leaving any pipelined bytes
//! in place.

use super::{Headers, Method, Request, Response, StatusCode, MAX_BODY_BYTES, MAX_HEAD_BYTES};
use bytes::{Buf, BytesMut};
use std::fmt;

/// Why a message could not be parsed. All variants are fatal for the
/// connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The request line / status line is malformed.
    BadStartLine(String),
    /// A header line is malformed.
    BadHeader(String),
    /// The method is not supported by this stack.
    UnsupportedMethod(String),
    /// Only HTTP/1.1 (and 1.0 responses) are supported.
    UnsupportedVersion(String),
    /// The head exceeds [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// A POST arrived without a `Content-Length`.
    MissingLength,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadStartLine(l) => write!(f, "malformed start line: {l:?}"),
            ParseError::BadHeader(l) => write!(f, "malformed header: {l:?}"),
            ParseError::UnsupportedMethod(m) => write!(f, "unsupported method: {m:?}"),
            ParseError::UnsupportedVersion(v) => write!(f, "unsupported version: {v:?}"),
            ParseError::HeadTooLarge => write!(f, "message head exceeds {MAX_HEAD_BYTES} bytes"),
            ParseError::BodyTooLarge(n) => write!(f, "declared body of {n} bytes is too large"),
            ParseError::MissingLength => write!(f, "POST without content-length"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Locates the end of the head (`\r\n\r\n`) in `buf`, returning the offset
/// just past it.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Splits a head into its start line and header lines.
fn split_head(head: &[u8]) -> Result<(String, Headers), ParseError> {
    let text =
        std::str::from_utf8(head).map_err(|_| ParseError::BadHeader("non-utf8 head".into()))?;
    let mut lines = text.split("\r\n");
    let start = lines
        .next()
        .ok_or_else(|| ParseError::BadStartLine(String::new()))?
        .to_owned();
    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::BadHeader(line.to_owned()))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadHeader(line.to_owned()));
        }
        headers.append(name, value.trim().to_owned());
    }
    Ok((start, headers))
}

/// Attempts to parse one request from the front of `buf`.
pub fn parse_request(buf: &mut BytesMut) -> Result<Option<Request>, ParseError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ParseError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(ParseError::HeadTooLarge);
    }

    let (start, headers) = split_head(&buf[..head_end - 4])?;
    let mut parts = start.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(ParseError::BadStartLine(start.clone())),
    };
    let method =
        Method::parse(method).ok_or_else(|| ParseError::UnsupportedMethod(method.to_owned()))?;
    if version != "HTTP/1.1" {
        return Err(ParseError::UnsupportedVersion(version.to_owned()));
    }

    let body_len = match method {
        Method::Get => headers.content_length().unwrap_or(0),
        Method::Post => headers.content_length().ok_or(ParseError::MissingLength)?,
    };
    if body_len > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge(body_len));
    }
    if buf.len() < head_end + body_len {
        return Ok(None);
    }

    let path = path.to_owned();
    buf.advance(head_end);
    let body = buf.split_to(body_len).freeze();
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Attempts to parse one response from the front of `buf`.
pub fn parse_response(buf: &mut BytesMut) -> Result<Option<Response>, ParseError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ParseError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(ParseError::HeadTooLarge);
    }

    let (start, headers) = split_head(&buf[..head_end - 4])?;
    let mut parts = start.splitn(3, ' ');
    let (version, code) = match (parts.next(), parts.next()) {
        (Some(v), Some(c)) => (v, c),
        _ => return Err(ParseError::BadStartLine(start.clone())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::UnsupportedVersion(version.to_owned()));
    }
    let code: u16 = code
        .parse()
        .map_err(|_| ParseError::BadStartLine(start.clone()))?;

    let body_len = headers.content_length().ok_or(ParseError::MissingLength)?;
    if body_len > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge(body_len));
    }
    if buf.len() < head_end + body_len {
        return Ok(None);
    }

    buf.advance(head_end);
    let body = buf.split_to(body_len).freeze();
    Ok(Some(Response {
        status: StatusCode(code),
        headers,
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    fn buf(s: &str) -> BytesMut {
        BytesMut::from(s.as_bytes())
    }

    #[test]
    fn parses_complete_get() {
        let mut b = buf("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        let req = parse_request(&mut b).expect("ok").expect("complete");
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.headers.get("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(b.is_empty(), "buffer fully consumed");
    }

    #[test]
    fn needs_more_data_until_body_complete() {
        let mut b = buf("POST /api HTTP/1.1\r\ncontent-length: 5\r\n\r\nab");
        assert_eq!(parse_request(&mut b).expect("ok"), None);
        b.put_slice(b"cde");
        let req = parse_request(&mut b).expect("ok").expect("complete");
        assert_eq!(&req.body[..], b"abcde");
    }

    #[test]
    fn pipelined_requests_stay_buffered() {
        let mut b = buf("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        let first = parse_request(&mut b).expect("ok").expect("complete");
        assert_eq!(first.path, "/a");
        let second = parse_request(&mut b).expect("ok").expect("complete");
        assert_eq!(second.path, "/b");
        assert!(b.is_empty());
    }

    #[test]
    fn post_without_length_rejected() {
        let mut b = buf("POST /api HTTP/1.1\r\n\r\n");
        assert_eq!(parse_request(&mut b), Err(ParseError::MissingLength));
    }

    #[test]
    fn bad_inputs_rejected() {
        assert_eq!(
            parse_request(&mut buf("BREW /pot HTTP/1.1\r\n\r\n")),
            Err(ParseError::UnsupportedMethod("BREW".into()))
        );
        assert_eq!(
            parse_request(&mut buf("GET / HTTP/0.9\r\n\r\n")),
            Err(ParseError::UnsupportedVersion("HTTP/0.9".into()))
        );
        assert!(matches!(
            parse_request(&mut buf("GET /\r\n\r\n")),
            Err(ParseError::BadStartLine(_))
        ));
        assert!(matches!(
            parse_request(&mut buf("GET / HTTP/1.1\r\nbroken header\r\n\r\n")),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn oversized_head_rejected() {
        let mut big = String::from("GET / HTTP/1.1\r\n");
        while big.len() <= MAX_HEAD_BYTES {
            big.push_str("x-filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        // No terminating blank line: the parser must bail on size alone.
        let mut b = buf(&big);
        assert_eq!(parse_request(&mut b), Err(ParseError::HeadTooLarge));
    }

    #[test]
    fn oversized_body_rejected() {
        let mut b = buf(&format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        ));
        assert_eq!(
            parse_request(&mut b),
            Err(ParseError::BodyTooLarge(MAX_BODY_BYTES + 1))
        );
    }

    #[test]
    fn parses_response() {
        let mut b =
            buf("HTTP/1.1 429 Too Many Requests\r\nretry-after: 3\r\ncontent-length: 0\r\n\r\n");
        let resp = parse_response(&mut b).expect("ok").expect("complete");
        assert_eq!(resp.status, StatusCode::TOO_MANY_REQUESTS);
        assert_eq!(resp.headers.get("retry-after"), Some("3"));
    }

    #[test]
    fn response_without_length_rejected() {
        let mut b = buf("HTTP/1.1 200 OK\r\n\r\n");
        assert_eq!(parse_response(&mut b), Err(ParseError::MissingLength));
    }

    #[test]
    fn error_display() {
        let e = ParseError::BodyTooLarge(99);
        assert!(e.to_string().contains("99"));
    }
}

//! Server-side admission control and load shedding.
//!
//! Under a crawl storm the worst failure mode is not rejection but
//! *collapse*: every connection admitted, every worker saturated, every
//! client timing out and retrying into an ever-deeper queue. The
//! [`AdmissionController`] bounds both queues the server has — the accept
//! backlog and the in-flight request count — and sheds excess load with
//! `503 + Retry-After` instead, *before* the request body is ever parsed
//! on the accept path. It also owns the server's drain flag: a draining
//! server finishes in-flight work while refusing new connections.
//!
//! Shed decisions are counted per reason in
//! `sift_net_admission_shed_total{reason=…}` and the live in-flight count
//! is exposed as the `sift_net_inflight` gauge.
//!
//! Long-poll handlers *park* while they wait ([`AdmissionController::park`]):
//! a parked waiter consumes no worker-visible in-flight slot, so a
//! thousand idle subscribers cannot starve fresh requests into
//! `queue_full`/`overload` sheds. Parked waiters are tracked separately
//! in the `sift_net_parked_waiters` gauge.

use crate::http::{Response, StatusCode};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Why a request (or connection) was shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded accept queue was full.
    QueueFull,
    /// The in-flight cap was reached.
    Overload,
    /// The request's `X-Sift-Deadline-Ms` budget was already spent on
    /// arrival; doing the work would only feed a waiter that gave up.
    Deadline,
    /// The server is draining: in-flight work finishes, new work is
    /// refused.
    Draining,
}

impl ShedReason {
    /// Every reason, in declaration order.
    pub const ALL: [ShedReason; 4] = [
        ShedReason::QueueFull,
        ShedReason::Overload,
        ShedReason::Deadline,
        ShedReason::Draining,
    ];

    /// The metric label this reason is counted under in
    /// `sift_net_admission_shed_total{reason=…}`.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Overload => "overload",
            ShedReason::Deadline => "deadline",
            ShedReason::Draining => "draining",
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Admission limits. Zero disables the corresponding bound.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Maximum requests being processed at once (0 = unlimited).
    pub max_inflight: usize,
    /// Maximum accepted connections waiting for a worker (0 = unbounded).
    pub max_queue: usize,
    /// The `Retry-After` value (seconds) shed responses carry.
    pub retry_after_secs: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 64,
            max_queue: 128,
            retry_after_secs: 1,
        }
    }
}

impl AdmissionConfig {
    /// No bounds at all — the implicit config of a server built without
    /// [`crate::Server::with_admission`]. Draining still works.
    pub fn unlimited() -> Self {
        AdmissionConfig {
            max_inflight: 0,
            max_queue: 0,
            retry_after_secs: 1,
        }
    }
}

/// Tracks the server's two queues and its drain flag.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    inflight: AtomicUsize,
    queued: AtomicUsize,
    parked: AtomicUsize,
    draining: AtomicBool,
}

impl AdmissionController {
    /// A controller with the given limits.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            inflight: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            parked: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// The configured limits.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Tries to account one accepted connection into the bounded accept
    /// queue. The acceptor calls this before handing the socket to the
    /// worker channel; on `Err` it sheds the connection with a canned
    /// `503` instead.
    pub fn try_enqueue(&self) -> Result<(), ShedReason> {
        if self.is_draining() {
            return Err(ShedReason::Draining);
        }
        let mut current = self.queued.load(Ordering::SeqCst);
        loop {
            if self.config.max_queue > 0 && current >= self.config.max_queue {
                return Err(ShedReason::QueueFull);
            }
            match self.queued.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        // Re-check the drain flag *after* the slot is registered (see
        // `try_admit` for the full interleaving argument): a drain that
        // began between the check above and the increment either sees our
        // count or we see its flag — never neither.
        if self.is_draining() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Err(ShedReason::Draining);
        }
        self.set_queue_gauge();
        Ok(())
    }

    /// A worker took one connection off the accept queue.
    pub fn dequeued(&self) {
        self.queued.fetch_sub(1, Ordering::SeqCst);
        self.set_queue_gauge();
    }

    /// Tries to admit one parsed request into processing. The returned
    /// guard holds an in-flight slot until dropped.
    ///
    /// Admission and drain are serialized through the SeqCst total order:
    /// the slot is registered *first* and the drain flag re-checked after.
    /// If a drain begins concurrently, either its settle loop observes our
    /// registered slot (and waits for the guard), or this re-check sees
    /// the flag (and rolls the slot back). The old check-then-register
    /// order had a window where a request could be admitted invisibly to
    /// `drain(grace)` — the server would settle and shut down around
    /// still-running work.
    pub fn try_admit(&self) -> Result<InflightGuard<'_>, ShedReason> {
        if self.is_draining() {
            return Err(ShedReason::Draining);
        }
        let mut current = self.inflight.load(Ordering::SeqCst);
        loop {
            if self.config.max_inflight > 0 && current >= self.config.max_inflight {
                return Err(ShedReason::Overload);
            }
            match self.inflight.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        // The guard is constructed before the re-check so the rollback
        // path is just a drop — one decrement, same as any release.
        let guard = InflightGuard { controller: self };
        if self.is_draining() {
            drop(guard);
            return Err(ShedReason::Draining);
        }
        self.set_inflight_gauge();
        Ok(guard)
    }

    /// Requests currently being processed.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Accepted connections currently waiting for a worker.
    pub fn queued(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    /// Admitted requests currently parked in a long wait (not holding an
    /// in-flight slot).
    pub fn parked(&self) -> usize {
        self.parked.load(Ordering::SeqCst)
    }

    /// Flips the server into drain mode: in-flight requests finish, new
    /// connections and requests are refused with `503 + Retry-After`.
    pub fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            sift_obs::event(
                sift_obs::Level::Info,
                "net.admission",
                "drain started",
                &[("inflight", serde_json::Value::UInt(self.inflight() as u64))],
            );
        }
    }

    /// Whether the server is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Builds (and counts) the shed response for `reason`: a `503` with
    /// `Retry-After` and `Connection: close`.
    pub fn shed_response(&self, reason: ShedReason) -> Response {
        sift_obs::counter(
            "sift_net_admission_shed_total",
            &[("reason", reason.label())],
        )
        .inc();
        let mut resp = Response::text(StatusCode::SERVICE_UNAVAILABLE, "shedding load");
        resp.headers
            .set("retry-after", self.config.retry_after_secs.to_string());
        resp.headers.set("connection", "close");
        resp
    }

    fn set_inflight_gauge(&self) {
        sift_obs::gauge("sift_net_inflight", &[])
            .set(i64::try_from(self.inflight()).unwrap_or(i64::MAX));
    }

    fn set_queue_gauge(&self) {
        sift_obs::gauge("sift_net_accept_queue_depth", &[])
            .set(i64::try_from(self.queued()).unwrap_or(i64::MAX));
    }

    /// Releases the calling request's in-flight slot for the duration of
    /// a parked wait (a long-poll subscriber blocked until the next
    /// spike, say). The caller must hold an in-flight slot — i.e. run
    /// inside an admitted handler. While the returned [`ParkedSlot`]
    /// lives, the request counts in [`AdmissionController::parked`]
    /// instead of the in-flight total, so idle waiters cannot push fresh
    /// requests into `queue_full`/`overload` sheds. Dropping the slot
    /// re-takes the in-flight count *unconditionally* — the request
    /// already passed admission, and re-checking the cap on wake-up could
    /// deadlock a full server against its own waiters; the count may
    /// therefore transiently exceed `max_inflight` while woken waiters
    /// finish up.
    ///
    /// Parked waiters are invisible to `drain`'s settle loop (it watches
    /// in-flight only), so a parked handler must use bounded waits and
    /// check [`AdmissionController::is_draining`] on every wake-up.
    pub fn park(&self) -> ParkedSlot<'_> {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        self.parked.fetch_add(1, Ordering::SeqCst);
        self.set_inflight_gauge();
        self.set_parked_gauge();
        ParkedSlot { controller: self }
    }

    fn set_parked_gauge(&self) {
        sift_obs::gauge("sift_net_parked_waiters", &[])
            .set(i64::try_from(self.parked()).unwrap_or(i64::MAX));
    }
}

/// RAII in-flight slot; dropping it releases the slot.
#[derive(Debug)]
pub struct InflightGuard<'a> {
    controller: &'a AdmissionController,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.controller.inflight.fetch_sub(1, Ordering::SeqCst);
        self.controller.set_inflight_gauge();
    }
}

/// RAII parked wait (see [`AdmissionController::park`]); dropping it moves the
/// request back from the parked count to the in-flight count.
#[derive(Debug)]
pub struct ParkedSlot<'a> {
    controller: &'a AdmissionController,
}

impl Drop for ParkedSlot<'_> {
    fn drop(&mut self) {
        self.controller.parked.fetch_sub(1, Ordering::SeqCst);
        self.controller.inflight.fetch_add(1, Ordering::SeqCst);
        self.controller.set_parked_gauge();
        self.controller.set_inflight_gauge();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(max_inflight: usize, max_queue: usize) -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            max_inflight,
            max_queue,
            retry_after_secs: 2,
        })
    }

    #[test]
    fn inflight_cap_is_enforced_and_released() {
        let c = controller(2, 0);
        let a = c.try_admit().expect("slot 1");
        let _b = c.try_admit().expect("slot 2");
        assert_eq!(c.try_admit().unwrap_err(), ShedReason::Overload);
        assert_eq!(c.inflight(), 2);
        drop(a);
        assert_eq!(c.inflight(), 1);
        let _c2 = c.try_admit().expect("slot freed");
    }

    #[test]
    fn queue_cap_is_enforced() {
        let c = controller(0, 2);
        c.try_enqueue().expect("queued 1");
        c.try_enqueue().expect("queued 2");
        assert_eq!(c.try_enqueue().unwrap_err(), ShedReason::QueueFull);
        c.dequeued();
        c.try_enqueue().expect("slot freed");
    }

    #[test]
    fn zero_means_unbounded() {
        let c = AdmissionController::new(AdmissionConfig::unlimited());
        let guards: Vec<_> = (0..100).map(|_| c.try_admit().expect("admit")).collect();
        for _ in 0..100 {
            c.try_enqueue().expect("enqueue");
        }
        assert_eq!(c.inflight(), 100);
        drop(guards);
        assert_eq!(c.inflight(), 0);
    }

    #[test]
    fn draining_refuses_everything_new() {
        let c = controller(4, 4);
        let _held = c.try_admit().expect("pre-drain slot");
        c.begin_drain();
        assert!(c.is_draining());
        assert_eq!(c.try_admit().unwrap_err(), ShedReason::Draining);
        assert_eq!(c.try_enqueue().unwrap_err(), ShedReason::Draining);
        assert_eq!(c.inflight(), 1, "in-flight work is unaffected");
    }

    #[test]
    fn shed_response_carries_retry_after_and_close() {
        let c = controller(1, 1);
        let resp = c.shed_response(ShedReason::QueueFull);
        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(resp.headers.get("retry-after"), Some("2"));
        assert_eq!(resp.headers.get("connection"), Some("close"));
    }

    #[test]
    fn labels_cover_every_reason() {
        let labels: Vec<_> = ShedReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels, ["queue_full", "overload", "deadline", "draining"]);
    }

    /// Regression (parked-waiter accounting): a long-poll subscriber
    /// blocked waiting for the next event must not hold an in-flight slot
    /// — before `park`, one idle subscriber on a `max_inflight: 1` server
    /// pushed every fresh request into an `overload` shed for as long as
    /// it waited.
    #[test]
    fn parked_waiter_does_not_shed_fresh_requests() {
        let c = controller(1, 0);
        let subscriber = c.try_admit().expect("subscriber admitted");
        assert_eq!(
            c.try_admit().unwrap_err(),
            ShedReason::Overload,
            "sanity: the cap really is 1"
        );

        let parked = c.park();
        assert_eq!(c.inflight(), 0);
        assert_eq!(c.parked(), 1);
        let fresh = c
            .try_admit()
            .expect("fresh request admitted while subscriber parked");
        drop(fresh);

        // Wake-up re-takes the slot unconditionally, even at the cap.
        let _held = c.try_admit().expect("slot free again");
        drop(parked);
        assert_eq!(c.parked(), 0);
        assert_eq!(
            c.inflight(),
            2,
            "woken waiter may transiently exceed the cap"
        );
        drop(subscriber);
        assert_eq!(c.inflight(), 1);
    }

    /// Regression (drain race): a request admitted concurrently with
    /// `begin_drain` must never be invisible to the settle loop. Either
    /// the admission fails with `Draining`, or its in-flight slot is
    /// observable before the drain can settle to zero. The old
    /// check-then-register order allowed "settled at zero" and "admitted,
    /// guard still held" to be true at once; repeated racing spawns would
    /// eventually catch the torn interleaving.
    #[test]
    fn drain_settle_cannot_miss_a_concurrent_admission() {
        use std::sync::mpsc;
        use std::sync::{Arc, Barrier};

        for _ in 0..1000 {
            let c = Arc::new(controller(0, 0));
            let start = Arc::new(Barrier::new(2));
            let (admitted_tx, admitted_rx) = mpsc::channel();
            let (release_tx, release_rx) = mpsc::channel::<()>();

            let racer = {
                let c = Arc::clone(&c);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    match c.try_admit() {
                        Ok(guard) => {
                            admitted_tx.send(true).expect("report admit");
                            // Hold the slot until the main thread has run
                            // its settle loop, like an in-flight request.
                            release_rx.recv().expect("release signal");
                            drop(guard);
                        }
                        Err(reason) => {
                            assert_eq!(reason, ShedReason::Draining);
                            admitted_tx.send(false).expect("report shed");
                        }
                    }
                })
            };

            start.wait();
            c.begin_drain();
            // The settle loop from `drain(grace)`: spin briefly, consider
            // the server drained the moment in-flight reads zero.
            let mut settled = false;
            for _ in 0..10_000 {
                if c.inflight() == 0 {
                    settled = true;
                    break;
                }
                std::hint::spin_loop();
            }
            let admitted = admitted_rx.recv().expect("racer verdict");
            assert!(
                !(settled && admitted),
                "drain settled to zero while an admitted request held a slot"
            );
            release_tx.send(()).ok();
            racer.join().expect("racer thread");
        }
    }
}

//! Threaded HTTP server.
//!
//! One acceptor thread hands connections to a fixed worker pool over a
//! crossbeam channel; each worker runs a keep-alive loop per connection.
//! An optional per-client token-bucket limiter answers 429 with a
//! `Retry-After` before the request ever reaches a handler, mirroring how
//! the real aggregation service throttles crawlers.
//!
//! Overload control (see DESIGN.md, "Overload model"): an
//! [`AdmissionController`] bounds the accept queue and the in-flight
//! request count, shedding excess connections with a canned
//! `503 + Retry-After` at the acceptor — before a single request byte is
//! parsed. Requests carrying an [`crate::X_SIFT_DEADLINE_MS`] header whose
//! budget is already spent are shed the same way, and
//! [`ServerHandle::drain`] finishes in-flight work while refusing new
//! connections instead of just flipping the shutdown flag.

use crate::admission::{AdmissionConfig, AdmissionController, ShedReason};
use crate::fault::{FaultInjector, FaultKind, FaultPlan, LinkAction, NemesisState};
use crate::http::{parse_request, serialize_response, Request, Response, StatusCode};
use crate::ratelimit::{RateLimitDecision, RateLimiter, RateLimiterConfig};
use crate::router::Router;
use crate::{FETCHER_IDENTITY_HEADER, X_SIFT_DEADLINE_MS, X_SIFT_TRACE};
use bytes::BytesMut;
use crossbeam::channel;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration and construction.
pub struct Server {
    router: Arc<Router>,
    limiter: Option<Arc<RateLimiter>>,
    faults: Option<Arc<FaultInjector>>,
    nemesis: Option<(Arc<NemesisState>, String)>,
    workers: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    admission: AdmissionConfig,
    admission_shared: Option<Arc<AdmissionController>>,
}

impl Server {
    /// A server for the given router, with 4 workers and no rate limiter.
    pub fn new(router: Router) -> Self {
        Server {
            router: Arc::new(router),
            limiter: None,
            faults: None,
            nemesis: None,
            workers: 4,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            // No bounds unless asked for; the controller still powers
            // deadline sheds and graceful drain.
            admission: AdmissionConfig::unlimited(),
            admission_shared: None,
        }
    }

    /// Enables per-client rate limiting.
    pub fn with_rate_limiter(mut self, config: RateLimiterConfig) -> Self {
        self.limiter = Some(Arc::new(RateLimiter::new(config)));
        self
    }

    /// Enables deterministic fault injection (see [`crate::fault`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(FaultInjector::new(plan)));
        self
    }

    /// Joins the cluster's shared nemesis link-fault table under the
    /// endpoint name `name`: requests whose sender/receiver pair matches
    /// an installed [`crate::LinkRule`] are dropped, delayed, or served
    /// with their reply withheld — the network-level half of a nemesis
    /// schedule (see [`crate::NemesisPlan`]).
    pub fn with_nemesis(mut self, state: Arc<NemesisState>, name: impl Into<String>) -> Self {
        self.nemesis = Some((state, name.into()));
        self
    }

    /// Bounds the accept queue and in-flight request count; excess load
    /// is shed with `503 + Retry-After` (see [`crate::admission`]).
    pub fn with_admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = config;
        self
    }

    /// Uses a caller-owned admission controller instead of building one
    /// internally from the [`Self::with_admission`] config. Handlers that
    /// need admission state — a long-poll route parking its waiter via
    /// [`AdmissionController::park`], or a drain-aware wait loop — hold a
    /// clone of the same `Arc` the server sheds with.
    pub fn with_admission_controller(mut self, controller: Arc<AdmissionController>) -> Self {
        self.admission_shared = Some(controller);
        self
    }

    /// Sets the worker-pool size.
    pub fn with_workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one worker required");
        self.workers = n;
        self
    }

    /// Sets the per-connection read timeout (idle keep-alive connections
    /// are dropped after this long).
    pub fn with_read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = t;
        self
    }

    /// Sets the per-connection write timeout, mirroring
    /// [`Self::with_read_timeout`] (previously hardcoded to 30 s).
    pub fn with_write_timeout(mut self, t: Duration) -> Self {
        self.write_timeout = t;
        self
    }

    /// Binds and starts serving. `addr` is typically `127.0.0.1:0` (pick a
    /// free port; read it back from [`ServerHandle::addr`]).
    pub fn bind(self, addr: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let admission = self
            .admission_shared
            .unwrap_or_else(|| Arc::new(AdmissionController::new(self.admission)));
        let started = Instant::now();

        let (tx, rx) = channel::unbounded::<(TcpStream, Instant)>();

        let mut threads = Vec::with_capacity(self.workers + 1);
        for i in 0..self.workers {
            let rx = rx.clone();
            let ctx = ConnContext {
                router: Arc::clone(&self.router),
                limiter: self.limiter.clone(),
                faults: self.faults.clone(),
                nemesis: self.nemesis.clone(),
                admission: Arc::clone(&admission),
                read_timeout: self.read_timeout,
                write_timeout: self.write_timeout,
                epoch: started,
                shutdown: Arc::clone(&shutdown),
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("sift-net-worker-{i}"))
                    .spawn(move || {
                        while let Ok((stream, accepted_at)) = rx.recv() {
                            ctx.admission.dequeued();
                            // sift-lint: allow(swallowed-result) — a torn connection must not kill the worker; the route/shed counters already account for the request
                            let _ = serve_connection(stream, accepted_at, &ctx);
                        }
                    })?,
            );
        }

        {
            // Nonblocking accept with a short poll interval: shutdown only
            // has to set the flag, with no self-connect handshake that
            // could fail under load and leave the acceptor blocked.
            listener.set_nonblocking(true)?;
            let shutdown = Arc::clone(&shutdown);
            let admission = Arc::clone(&admission);
            let write_timeout = self.write_timeout;
            threads.push(
                std::thread::Builder::new()
                    .name("sift-net-acceptor".into())
                    .spawn(move || {
                        loop {
                            if shutdown.load(Ordering::SeqCst) {
                                break;
                            }
                            match listener.accept() {
                                Ok((s, _)) => {
                                    // Accepted sockets must be blocking
                                    // regardless of the listener's mode.
                                    if s.set_nonblocking(false).is_err() {
                                        continue;
                                    }
                                    match admission.try_enqueue() {
                                        Ok(()) => {
                                            if tx.send((s, Instant::now())).is_err() {
                                                break;
                                            }
                                        }
                                        // Shed at the accept edge: the 503
                                        // goes out before any request byte
                                        // is read, let alone parsed.
                                        Err(reason) => {
                                            shed_at_accept(s, &admission, reason, write_timeout);
                                        }
                                    }
                                }
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(Duration::from_millis(10));
                                }
                                Err(_) => continue,
                            }
                        }
                        // Dropping `tx` closes the channel; workers drain
                        // and exit.
                    })?,
            );
        }

        Ok(ServerHandle {
            addr: local_addr,
            shutdown,
            admission,
            threads,
        })
    }
}

/// A running server. Dropping the handle shuts the server down and joins
/// its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    admission: Arc<AdmissionController>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and joins every server thread. In-flight
    /// responses may be cut short; use [`Self::drain`] for a graceful
    /// stop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Flips the server into drain mode without blocking: in-flight and
    /// keep-alive requests finish, new connections get `503 +
    /// Retry-After`. Follow up with [`Self::drain`] (or
    /// [`Self::shutdown`]) to actually stop.
    pub fn begin_drain(&self) {
        self.admission.begin_drain();
    }

    /// Whether the server is draining.
    pub fn is_draining(&self) -> bool {
        self.admission.is_draining()
    }

    /// Requests currently being processed (0 once drained).
    pub fn inflight(&self) -> usize {
        self.admission.inflight()
    }

    /// Gracefully stops the server: begins draining, waits up to `grace`
    /// for in-flight requests to finish, then shuts down and joins every
    /// thread. Returns `true` if the server drained fully within the
    /// grace period.
    pub fn drain(mut self, grace: Duration) -> bool {
        self.begin_drain();
        let waited = Instant::now();
        while self.admission.inflight() > 0 && waited.elapsed() < grace {
            std::thread::sleep(Duration::from_millis(2));
        }
        let drained = self.admission.inflight() == 0;
        sift_obs::event(
            sift_obs::Level::Info,
            "net.server",
            "drain finished",
            &[("drained", serde_json::Value::Str(drained.to_string()))],
        );
        self.shutdown_inner();
        drained
    }

    fn shutdown_inner(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The acceptor polls the flag every few milliseconds; workers
        // exit once it drops the channel sender.
        for t in self.threads.drain(..) {
            // sift-lint: allow(swallowed-result) — shutdown must reap every worker even if one panicked; the panic itself was already reported on its thread
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Everything a worker needs to serve connections.
struct ConnContext {
    router: Arc<Router>,
    limiter: Option<Arc<RateLimiter>>,
    faults: Option<Arc<FaultInjector>>,
    nemesis: Option<(Arc<NemesisState>, String)>,
    admission: Arc<AdmissionController>,
    read_timeout: Duration,
    write_timeout: Duration,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
}

/// Writes the canned shed response to a just-accepted connection and
/// closes it gracefully, without ever parsing the request.
///
/// Runs on a short-lived thread so the accept loop keeps draining during
/// a shed storm. The lingering close matters: the client's request bytes
/// are still unread in the kernel buffer, and closing over them would
/// send an RST that can destroy the in-flight `503` before the client
/// reads it. Half-closing and discarding input until the peer hangs up
/// (bounded by a short timeout) delivers the response reliably.
/// Best-effort throughout: a client that vanished mid-shed loses nothing.
fn shed_at_accept(
    mut stream: TcpStream,
    admission: &AdmissionController,
    reason: ShedReason,
    write_timeout: Duration,
) {
    let wire = serialize_response(&admission.shed_response(reason));
    let lingering_close = move || {
        let _ = stream.set_write_timeout(Some(write_timeout)); // sift-lint: allow(swallowed-result) — best-effort shed: a vanished client loses nothing (see fn docs)
        if stream.write_all(&wire).is_err() {
            return;
        }
        let _ = stream.shutdown(std::net::Shutdown::Write); // sift-lint: allow(swallowed-result) — best-effort shed: a vanished client loses nothing (see fn docs)
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500))); // sift-lint: allow(swallowed-result) — best-effort shed: a vanished client loses nothing (see fn docs)
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    };
    if std::thread::Builder::new()
        .name("sift-net-shed".into())
        .spawn(lingering_close)
        .is_err()
    {
        // Out of threads: the connection just drops. The client's retry
        // path treats that like any other transport failure.
    }
}

/// The client identity a request is rate-limited under: the declared
/// fetcher identity header if present, otherwise the TCP peer IP.
fn client_identity(req: &Request, peer: &SocketAddr) -> String {
    req.headers
        .get(FETCHER_IDENTITY_HEADER)
        .map(str::to_owned)
        .unwrap_or_else(|| peer.ip().to_string())
}

/// The declared deadline budget of a request, if any.
fn deadline_budget_ms(req: &Request) -> Option<u64> {
    req.headers
        .get(X_SIFT_DEADLINE_MS)
        .and_then(|v| v.trim().parse::<u64>().ok())
}

/// The trace context a request carried over the wire, if any. A
/// malformed header parses to `None` — the request is served in a
/// detached trace, never failed.
fn trace_context(req: &Request) -> Option<sift_obs::SpanContext> {
    req.headers
        .get(X_SIFT_TRACE)
        .and_then(sift_obs::SpanContext::from_header)
}

fn serve_connection(
    mut stream: TcpStream,
    accepted_at: Instant,
    ctx: &ConnContext,
) -> std::io::Result<()> {
    // Short socket timeout so idle keep-alive reads re-check the shutdown
    // flag frequently; the configured `read_timeout` bounds total idleness.
    let poll = Duration::from_millis(250).min(ctx.read_timeout);
    stream.set_read_timeout(Some(poll))?;
    stream.set_write_timeout(Some(ctx.write_timeout))?;
    stream.set_nodelay(true)?;
    let peer = stream.peer_addr()?;
    let _active = sift_obs::gauge("sift_http_active_connections", &[]).track();

    let mut buf = BytesMut::with_capacity(8 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    // When the *current* request started waiting: accept time for the
    // first request on the connection, end of the previous response for
    // keep-alive successors. Deadline budgets are charged against this.
    let mut wait_epoch = accepted_at;

    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Parse any complete pipelined request already buffered before
        // reading more.
        let mut idle = Duration::ZERO;
        let req = loop {
            match parse_request(&mut buf) {
                Ok(Some(req)) => break req,
                Ok(None) => match stream.read(&mut chunk) {
                    Ok(0) => return Ok(()), // clean close
                    Ok(n) => {
                        idle = Duration::ZERO;
                        buf.extend_from_slice(&chunk[..n]);
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        if ctx.shutdown.load(Ordering::SeqCst) {
                            return Ok(());
                        }
                        // A draining server closes idle keep-alive
                        // connections; nothing is owed to a client with
                        // no request in flight.
                        if ctx.admission.is_draining() && buf.is_empty() {
                            return Ok(());
                        }
                        idle += poll;
                        if idle >= ctx.read_timeout {
                            return Ok(()); // idle keep-alive expired
                        }
                    }
                    Err(e) => return Err(e),
                },
                Err(err) => {
                    let resp =
                        Response::text(StatusCode::BAD_REQUEST, format!("bad request: {err}"));
                    stream.write_all(&serialize_response(&resp))?;
                    return Ok(()); // framing is lost; close
                }
            }
        };

        let close_after = req.headers.wants_close();
        // Routing is exact-match on the pre-query path, so the route label
        // has the same (bounded) cardinality as the route table.
        let route = req.path.split('?').next().unwrap_or("").to_owned();
        let started_at = Instant::now();

        // Nemesis link faults model the *network* between named
        // endpoints, so they act before any server-side machinery —
        // fault plans, admission, the limiter — ever sees the request.
        // A dropped request simply never arrived; a dropped reply runs
        // the full pipeline (handler effects stand) and loses only the
        // response bytes, the shape of an asymmetric partition.
        let mut drop_reply = false;
        if let Some((nemesis, name)) = &ctx.nemesis {
            let from = client_identity(&req, &peer);
            if let Some((kind, action)) = nemesis.decide(&from, name, &route) {
                sift_obs::counter(
                    "sift_cluster_nemesis_faults_total",
                    &[("kind", kind.label())],
                )
                .inc();
                sift_obs::event(
                    sift_obs::Level::Warn,
                    "net.nemesis",
                    "link fault hit",
                    &[
                        ("kind", serde_json::Value::Str(kind.label().to_owned())),
                        ("from", serde_json::Value::Str(from)),
                        ("route", serde_json::Value::Str(route.clone())),
                    ],
                );
                match action {
                    LinkAction::DropRequest => return Ok(()),
                    LinkAction::Delay(d) => std::thread::sleep(d),
                    LinkAction::DropReply => drop_reply = true,
                }
            }
        }

        // Fault injection decides before admission and the limiter run, so
        // a plan's fault sequence depends only on the request traffic
        // (replayable), never on shed or limiter timing. The decision is
        // only *executed* if the request is admitted.
        let injected = ctx
            .faults
            .as_deref()
            .and_then(|f| f.decide(&route, &req.body));

        // Admission: a request that arrives on a draining server, with a
        // spent deadline budget, or past the in-flight cap is shed with
        // `503 + Retry-After` and the connection closes.
        if ctx.admission.is_draining() {
            let resp = ctx.admission.shed_response(ShedReason::Draining);
            stream.write_all(&serialize_response(&resp))?;
            return Ok(());
        }
        if let Some(budget_ms) = deadline_budget_ms(&req) {
            let waited_ms = wait_epoch.elapsed().as_millis() as u64;
            if waited_ms >= budget_ms {
                sift_obs::event(
                    sift_obs::Level::Warn,
                    "net.admission",
                    "deadline spent on arrival",
                    &[
                        ("route", serde_json::Value::Str(route.clone())),
                        ("budget_ms", serde_json::Value::UInt(budget_ms)),
                        ("waited_ms", serde_json::Value::UInt(waited_ms)),
                    ],
                );
                let resp = ctx.admission.shed_response(ShedReason::Deadline);
                stream.write_all(&serialize_response(&resp))?;
                return Ok(());
            }
        }
        let admitted = match ctx.admission.try_admit() {
            Ok(guard) => guard,
            Err(reason) => {
                let resp = ctx.admission.shed_response(reason);
                stream.write_all(&serialize_response(&resp))?;
                return Ok(());
            }
        };

        // Rejoin the caller's trace once the request is admitted: the
        // serve span parents onto the exact client attempt that carried
        // the X-Sift-Trace header, covering fault execution, dispatch
        // and the response write. No (or bad) header: a detached root.
        let _serve_span = match trace_context(&req) {
            Some(tc) => sift_obs::span_in(tc, "serve"),
            None => sift_obs::span_root("serve"),
        };

        if let Some(kind) = injected {
            sift_obs::counter("sift_net_faults_injected_total", &[("kind", kind.label())]).inc();
            sift_obs::event(
                sift_obs::Level::Warn,
                "net.fault",
                "injecting fault",
                &[
                    ("kind", serde_json::Value::Str(kind.label().to_owned())),
                    ("route", serde_json::Value::Str(route.clone())),
                ],
            );
        }
        match injected {
            // Close without writing a byte: the client sees the connection
            // reset mid-exchange.
            Some(FaultKind::Reset) => return Ok(()),
            // Serve the real response, but only a prefix of it: the head's
            // `Content-Length` promises bytes that never arrive.
            Some(FaultKind::Truncate) => {
                let resp = dispatch_protected(&ctx.router, &req);
                let wire = serialize_response(&resp);
                let keep = if resp.body.is_empty() {
                    wire.len() / 2
                } else {
                    // Head plus half the body: the parser reads a complete
                    // head, then starves waiting for the rest.
                    wire.len() - resp.body.len() + resp.body.len() / 2
                };
                stream.write_all(&wire[..keep])?;
                return Ok(());
            }
            // Hold the response back, then serve normally.
            Some(FaultKind::Stall) => {
                std::thread::sleep(
                    ctx.faults
                        .as_deref()
                        .map(FaultInjector::stall)
                        .unwrap_or_default(),
                );
            }
            _ => {}
        }

        let resp = if let Some(kind) = injected {
            match kind {
                FaultKind::InternalError => {
                    Response::text(StatusCode::INTERNAL_SERVER_ERROR, "injected fault")
                }
                FaultKind::Unavailable => {
                    Response::text(StatusCode::SERVICE_UNAVAILABLE, "injected fault")
                }
                // A 429 storm deliberately omits `Retry-After`: the client
                // must fall back to its own exponential backoff.
                FaultKind::RateStorm => {
                    Response::text(StatusCode::TOO_MANY_REQUESTS, "injected fault")
                }
                // Reset/Truncate returned above; Stall serves normally.
                FaultKind::Reset | FaultKind::Truncate | FaultKind::Stall => dispatch_with_limiter(
                    &ctx.router,
                    ctx.limiter.as_deref(),
                    &req,
                    &route,
                    &peer,
                    ctx.epoch,
                ),
            }
        } else {
            dispatch_with_limiter(
                &ctx.router,
                ctx.limiter.as_deref(),
                &req,
                &route,
                &peer,
                ctx.epoch,
            )
        };

        sift_obs::attr_set("status", u64::from(resp.status.0));
        sift_obs::attr_add("bytes", u64::try_from(resp.body.len()).unwrap_or(u64::MAX));
        sift_obs::counter(
            "sift_http_requests_total",
            &[("route", &route), ("status", &resp.status.0.to_string())],
        )
        .inc();
        sift_obs::histogram("sift_http_request_seconds", &[("route", &route)])
            .observe_duration(started_at.elapsed());

        if drop_reply {
            // The work happened; the reply is lost on the wire. Closing
            // without writing surfaces as a reset at the sender — the
            // zombie-lease shape the cluster's fencing epochs must absorb.
            drop(admitted);
            return Ok(());
        }
        stream.write_all(&serialize_response(&resp))?;
        drop(admitted); // the in-flight slot covers dispatch and write
        wait_epoch = Instant::now();
        if close_after {
            return Ok(());
        }
    }
}

/// Runs the request through the rate limiter (if any) and the router.
fn dispatch_with_limiter(
    router: &Router,
    limiter: Option<&RateLimiter>,
    req: &Request,
    route: &str,
    peer: &SocketAddr,
    epoch: Instant,
) -> Response {
    let Some(limiter) = limiter else {
        return dispatch_protected(router, req);
    };
    let identity = client_identity(req, peer);
    let now_ms = epoch.elapsed().as_millis() as u64;
    match limiter.check(&identity, now_ms) {
        RateLimitDecision::Allowed => dispatch_protected(router, req),
        RateLimitDecision::Limited { retry_after_secs } => {
            // The rejection path is already the slow path; a metric
            // update and an event here cost nothing that matters.
            sift_obs::counter("sift_ratelimit_rejected_total", &[("identity", &identity)]).inc();
            sift_obs::event(
                sift_obs::Level::Warn,
                "net.server",
                "rate limited",
                &[
                    ("identity", serde_json::Value::Str(identity.clone())),
                    ("route", serde_json::Value::Str(route.to_owned())),
                    (
                        "retry_after_secs",
                        serde_json::Value::UInt(retry_after_secs),
                    ),
                ],
            );
            let mut resp = Response::text(StatusCode::TOO_MANY_REQUESTS, "rate limited");
            resp.headers
                .set("retry-after", retry_after_secs.to_string());
            resp
        }
    }
}

/// Dispatches through the router, converting handler panics into 500s so
/// one bad request cannot take a worker thread down.
fn dispatch_protected(router: &Router, req: &Request) -> Response {
    catch_unwind(AssertUnwindSafe(|| router.dispatch(req)))
        .unwrap_or_else(|_| Response::text(StatusCode::INTERNAL_SERVER_ERROR, "handler panicked"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use std::sync::atomic::AtomicBool;
    use std::sync::Condvar;
    use std::sync::Mutex as StdMutex;

    fn test_router() -> Router {
        Router::new()
            .route(Method::Get, "/ping", |_| {
                Response::text(StatusCode::OK, "pong")
            })
            .route(Method::Post, "/echo", |req| Response {
                status: StatusCode::OK,
                headers: crate::http::Headers::new(),
                body: req.body.clone(),
            })
            .route(Method::Get, "/boom", |_| panic!("kaboom"))
    }

    fn raw_roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(raw).expect("write");
        s.shutdown(std::net::Shutdown::Write)
            .expect("shutdown write");
        let mut out = Vec::new();
        s.read_to_end(&mut out).expect("read");
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn serves_and_shuts_down() {
        let h = Server::new(test_router())
            .bind("127.0.0.1:0")
            .expect("bind");
        let text = raw_roundtrip(h.addr(), b"GET /ping HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.ends_with("pong"), "{text}");
        h.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let h = Server::new(test_router())
            .bind("127.0.0.1:0")
            .expect("bind");
        let mut s = TcpStream::connect(h.addr()).expect("connect");
        for _ in 0..3 {
            s.write_all(b"GET /ping HTTP/1.1\r\n\r\n").expect("write");
            let mut buf = [0u8; 1024];
            let n = s.read(&mut buf).expect("read");
            let text = String::from_utf8_lossy(&buf[..n]);
            assert!(text.contains("pong"), "{text}");
        }
        h.shutdown();
    }

    #[test]
    fn echo_posts_body() {
        let h = Server::new(test_router())
            .bind("127.0.0.1:0")
            .expect("bind");
        let text = raw_roundtrip(
            h.addr(),
            b"POST /echo HTTP/1.1\r\ncontent-length: 5\r\nconnection: close\r\n\r\nhello",
        );
        assert!(text.ends_with("hello"), "{text}");
        h.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        let h = Server::new(test_router())
            .bind("127.0.0.1:0")
            .expect("bind");
        let text = raw_roundtrip(h.addr(), b"NONSENSE\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        h.shutdown();
    }

    #[test]
    fn handler_panic_becomes_500_and_server_survives() {
        let h = Server::new(test_router())
            .bind("127.0.0.1:0")
            .expect("bind");
        let text = raw_roundtrip(h.addr(), b"GET /boom HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 500"), "{text}");
        // Server still answers afterwards.
        let text = raw_roundtrip(h.addr(), b"GET /ping HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(text.contains("pong"), "{text}");
        h.shutdown();
    }

    #[test]
    fn rate_limiter_answers_429_with_retry_after() {
        let h = Server::new(test_router())
            .with_rate_limiter(RateLimiterConfig {
                capacity: 2.0,
                refill_per_sec: 0.5,
                ..RateLimiterConfig::default()
            })
            .bind("127.0.0.1:0")
            .expect("bind");
        let mut s = TcpStream::connect(h.addr()).expect("connect");
        let mut limited = false;
        for _ in 0..4 {
            s.write_all(b"GET /ping HTTP/1.1\r\nx-fetcher-ip: 127.0.0.7\r\n\r\n")
                .expect("write");
            let mut buf = [0u8; 1024];
            let n = s.read(&mut buf).expect("read");
            let text = String::from_utf8_lossy(&buf[..n]);
            if text.starts_with("HTTP/1.1 429") {
                assert!(text.to_lowercase().contains("retry-after:"), "{text}");
                limited = true;
            }
        }
        assert!(limited, "expected to hit the rate limit");
        // A different declared identity is not limited.
        s.write_all(b"GET /ping HTTP/1.1\r\nx-fetcher-ip: 127.0.0.8\r\n\r\n")
            .expect("write");
        let mut buf = [0u8; 1024];
        let n = s.read(&mut buf).expect("read");
        let text = String::from_utf8_lossy(&buf[..n]);
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        h.shutdown();
    }

    #[test]
    fn write_timeout_is_configurable() {
        let h = Server::new(test_router())
            .with_write_timeout(Duration::from_secs(2))
            .with_read_timeout(Duration::from_secs(2))
            .bind("127.0.0.1:0")
            .expect("bind");
        let text = raw_roundtrip(h.addr(), b"GET /ping HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        h.shutdown();
    }

    #[test]
    fn spent_deadline_is_shed_before_dispatch() {
        let h = Server::new(test_router())
            .bind("127.0.0.1:0")
            .expect("bind");
        // A zero budget is spent by definition: deterministic shed.
        let text = raw_roundtrip(
            h.addr(),
            b"GET /ping HTTP/1.1\r\nx-sift-deadline-ms: 0\r\nconnection: close\r\n\r\n",
        );
        assert!(text.starts_with("HTTP/1.1 503"), "{text}");
        assert!(text.to_lowercase().contains("retry-after:"), "{text}");
        // A generous budget sails through.
        let text = raw_roundtrip(
            h.addr(),
            b"GET /ping HTTP/1.1\r\nx-sift-deadline-ms: 60000\r\nconnection: close\r\n\r\n",
        );
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        h.shutdown();
    }

    /// A router whose `/slow` handler parks until released, signalling
    /// entry — the scaffolding for drain and overload tests.
    struct Gate {
        entered: AtomicBool,
        release: StdMutex<bool>,
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Gate> {
            Arc::new(Gate {
                entered: AtomicBool::new(false),
                release: StdMutex::new(false),
                cv: Condvar::new(),
            })
        }

        fn open(&self) {
            *self.release.lock().expect("gate lock") = true;
            self.cv.notify_all();
        }

        fn wait_entered(&self) {
            let waited = Instant::now();
            while !self.entered.load(Ordering::SeqCst) {
                assert!(
                    waited.elapsed() < Duration::from_secs(5),
                    "handler never entered"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Opens the gate when dropped, so a panicking assertion cannot leave
    /// a worker parked in the handler forever (the `ServerHandle` drop
    /// joins workers and would otherwise hang the whole test run).
    struct OpenOnDrop(Arc<Gate>);

    impl Drop for OpenOnDrop {
        fn drop(&mut self) {
            self.0.open();
        }
    }

    fn gated_router(gate: &Arc<Gate>) -> Router {
        let gate = Arc::clone(gate);
        test_router().route(Method::Get, "/slow", move |_| {
            gate.entered.store(true, Ordering::SeqCst);
            let mut released = gate.release.lock().expect("gate lock");
            while !*released {
                released = gate.cv.wait(released).expect("gate wait");
            }
            Response::text(StatusCode::OK, "slow done")
        })
    }

    #[test]
    fn drain_finishes_inflight_request_and_sheds_fresh_connections() {
        let gate = Gate::new();
        let h = Server::new(gated_router(&gate))
            .with_workers(2)
            .bind("127.0.0.1:0")
            .expect("bind");
        let _open_guard = OpenOnDrop(Arc::clone(&gate));
        let addr = h.addr();

        // A keep-alive connection parks mid-request in the handler.
        let inflight = std::thread::spawn(move || {
            let c = crate::client::HttpClient::new(addr);
            c.send(&Request::get("/slow")).expect("in-flight completes")
        });
        gate.wait_entered();

        // Drain begins while that request is still running.
        h.begin_drain();
        assert!(h.is_draining());

        // A fresh connection is refused at the accept edge with
        // `503 + Retry-After`, without its request being read.
        let text = raw_roundtrip(addr, b"GET /ping HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 503"), "{text}");
        assert!(text.to_lowercase().contains("retry-after:"), "{text}");

        // The in-flight request still completes once released.
        gate.open();
        let resp = inflight.join().expect("client thread");
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(&resp.body[..], b"slow done");

        assert!(h.drain(Duration::from_secs(5)), "drained within grace");
    }

    #[test]
    fn inflight_cap_sheds_overload() {
        let gate = Gate::new();
        let h = Server::new(gated_router(&gate))
            .with_workers(2)
            .with_admission(AdmissionConfig {
                max_inflight: 1,
                max_queue: 0,
                retry_after_secs: 3,
            })
            .bind("127.0.0.1:0")
            .expect("bind");
        let _open_guard = OpenOnDrop(Arc::clone(&gate));
        let addr = h.addr();
        let inflight = std::thread::spawn(move || {
            let c = crate::client::HttpClient::new(addr);
            c.send(&Request::get("/slow")).expect("held request")
        });
        gate.wait_entered();
        // The single in-flight slot is taken: the next request sheds.
        let text = raw_roundtrip(addr, b"GET /ping HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 503"), "{text}");
        assert!(text.contains("retry-after: 3"), "{text}");
        gate.open();
        let resp = inflight.join().expect("client thread");
        assert_eq!(resp.status, StatusCode::OK);
        h.shutdown();
    }
}

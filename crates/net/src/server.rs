//! Threaded HTTP server.
//!
//! One acceptor thread hands connections to a fixed worker pool over a
//! crossbeam channel; each worker runs a keep-alive loop per connection.
//! An optional per-client token-bucket limiter answers 429 with a
//! `Retry-After` before the request ever reaches a handler, mirroring how
//! the real aggregation service throttles crawlers.

use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use crate::http::{parse_request, serialize_response, Request, Response, StatusCode};
use crate::ratelimit::{RateLimitDecision, RateLimiter, RateLimiterConfig};
use crate::router::Router;
use crate::FETCHER_IDENTITY_HEADER;
use bytes::BytesMut;
use crossbeam::channel;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration and construction.
pub struct Server {
    router: Arc<Router>,
    limiter: Option<Arc<RateLimiter>>,
    faults: Option<Arc<FaultInjector>>,
    workers: usize,
    read_timeout: Duration,
}

impl Server {
    /// A server for the given router, with 4 workers and no rate limiter.
    pub fn new(router: Router) -> Self {
        Server {
            router: Arc::new(router),
            limiter: None,
            faults: None,
            workers: 4,
            read_timeout: Duration::from_secs(30),
        }
    }

    /// Enables per-client rate limiting.
    pub fn with_rate_limiter(mut self, config: RateLimiterConfig) -> Self {
        self.limiter = Some(Arc::new(RateLimiter::new(config)));
        self
    }

    /// Enables deterministic fault injection (see [`crate::fault`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(FaultInjector::new(plan)));
        self
    }

    /// Sets the worker-pool size.
    pub fn with_workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one worker required");
        self.workers = n;
        self
    }

    /// Sets the per-connection read timeout (idle keep-alive connections
    /// are dropped after this long).
    pub fn with_read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = t;
        self
    }

    /// Binds and starts serving. `addr` is typically `127.0.0.1:0` (pick a
    /// free port; read it back from [`ServerHandle::addr`]).
    pub fn bind(self, addr: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let started = Instant::now();

        let (tx, rx) = channel::unbounded::<TcpStream>();

        let mut threads = Vec::with_capacity(self.workers + 1);
        for i in 0..self.workers {
            let rx = rx.clone();
            let router = Arc::clone(&self.router);
            let limiter = self.limiter.clone();
            let faults = self.faults.clone();
            let read_timeout = self.read_timeout;
            let shutdown = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("sift-net-worker-{i}"))
                    .spawn(move || {
                        while let Ok(stream) = rx.recv() {
                            let _ = serve_connection(
                                stream,
                                &router,
                                limiter.as_deref(),
                                faults.as_deref(),
                                read_timeout,
                                started,
                                &shutdown,
                            );
                        }
                    })?,
            );
        }

        {
            // Nonblocking accept with a short poll interval: shutdown only
            // has to set the flag, with no self-connect handshake that
            // could fail under load and leave the acceptor blocked.
            listener.set_nonblocking(true)?;
            let shutdown = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name("sift-net-acceptor".into())
                    .spawn(move || {
                        loop {
                            if shutdown.load(Ordering::SeqCst) {
                                break;
                            }
                            match listener.accept() {
                                Ok((s, _)) => {
                                    // Accepted sockets must be blocking
                                    // regardless of the listener's mode.
                                    if s.set_nonblocking(false).is_err() {
                                        continue;
                                    }
                                    if tx.send(s).is_err() {
                                        break;
                                    }
                                }
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(Duration::from_millis(10));
                                }
                                Err(_) => continue,
                            }
                        }
                        // Dropping `tx` closes the channel; workers drain
                        // and exit.
                    })?,
            );
        }

        Ok(ServerHandle {
            addr: local_addr,
            shutdown,
            threads,
        })
    }
}

/// A running server. Dropping the handle shuts the server down and joins
/// its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and joins every server thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The acceptor polls the flag every few milliseconds; workers
        // exit once it drops the channel sender.
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The client identity a request is rate-limited under: the declared
/// fetcher identity header if present, otherwise the TCP peer IP.
fn client_identity(req: &Request, peer: &SocketAddr) -> String {
    req.headers
        .get(FETCHER_IDENTITY_HEADER)
        .map(str::to_owned)
        .unwrap_or_else(|| peer.ip().to_string())
}

fn serve_connection(
    mut stream: TcpStream,
    router: &Router,
    limiter: Option<&RateLimiter>,
    faults: Option<&FaultInjector>,
    read_timeout: Duration,
    epoch: Instant,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    // Short socket timeout so idle keep-alive reads re-check the shutdown
    // flag frequently; the configured `read_timeout` bounds total idleness.
    let poll = Duration::from_millis(250).min(read_timeout);
    stream.set_read_timeout(Some(poll))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let peer = stream.peer_addr()?;
    let _active = sift_obs::gauge("sift_http_active_connections", &[]).track();

    let mut buf = BytesMut::with_capacity(8 * 1024);
    let mut chunk = [0u8; 16 * 1024];

    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Parse any complete pipelined request already buffered before
        // reading more.
        let mut idle = Duration::ZERO;
        let req = loop {
            match parse_request(&mut buf) {
                Ok(Some(req)) => break req,
                Ok(None) => match stream.read(&mut chunk) {
                    Ok(0) => return Ok(()), // clean close
                    Ok(n) => {
                        idle = Duration::ZERO;
                        buf.extend_from_slice(&chunk[..n]);
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        if shutdown.load(Ordering::SeqCst) {
                            return Ok(());
                        }
                        idle += poll;
                        if idle >= read_timeout {
                            return Ok(()); // idle keep-alive expired
                        }
                    }
                    Err(e) => return Err(e),
                },
                Err(err) => {
                    let resp =
                        Response::text(StatusCode::BAD_REQUEST, format!("bad request: {err}"));
                    stream.write_all(&serialize_response(&resp))?;
                    return Ok(()); // framing is lost; close
                }
            }
        };

        let close_after = req.headers.wants_close();
        // Routing is exact-match on the pre-query path, so the route label
        // has the same (bounded) cardinality as the route table.
        let route = req.path.split('?').next().unwrap_or("").to_owned();
        let started_at = Instant::now();

        // Fault injection decides before the limiter runs, so a plan's
        // fault sequence depends only on the request traffic (replayable),
        // never on limiter timing.
        let injected = faults.and_then(|f| f.decide(&route, &req.body));
        if let Some(kind) = injected {
            sift_obs::counter("sift_net_faults_injected_total", &[("kind", kind.label())]).inc();
            sift_obs::event(
                sift_obs::Level::Warn,
                "net.fault",
                "injecting fault",
                &[
                    ("kind", serde_json::Value::Str(kind.label().to_owned())),
                    ("route", serde_json::Value::Str(route.clone())),
                ],
            );
        }
        match injected {
            // Close without writing a byte: the client sees the connection
            // reset mid-exchange.
            Some(FaultKind::Reset) => return Ok(()),
            // Serve the real response, but only a prefix of it: the head's
            // `Content-Length` promises bytes that never arrive.
            Some(FaultKind::Truncate) => {
                let resp = dispatch_protected(router, &req);
                let wire = serialize_response(&resp);
                let keep = if resp.body.is_empty() {
                    wire.len() / 2
                } else {
                    // Head plus half the body: the parser reads a complete
                    // head, then starves waiting for the rest.
                    wire.len() - resp.body.len() + resp.body.len() / 2
                };
                stream.write_all(&wire[..keep])?;
                return Ok(());
            }
            // Hold the response back, then serve normally.
            Some(FaultKind::Stall) => {
                std::thread::sleep(faults.map(FaultInjector::stall).unwrap_or_default());
            }
            _ => {}
        }

        let resp = if let Some(kind) = injected {
            match kind {
                FaultKind::InternalError => {
                    Response::text(StatusCode::INTERNAL_SERVER_ERROR, "injected fault")
                }
                FaultKind::Unavailable => {
                    Response::text(StatusCode::SERVICE_UNAVAILABLE, "injected fault")
                }
                // A 429 storm deliberately omits `Retry-After`: the client
                // must fall back to its own exponential backoff.
                FaultKind::RateStorm => {
                    Response::text(StatusCode::TOO_MANY_REQUESTS, "injected fault")
                }
                // Reset/Truncate returned above; Stall serves normally.
                FaultKind::Reset | FaultKind::Truncate | FaultKind::Stall => {
                    dispatch_with_limiter(router, limiter, &req, &route, &peer, epoch)
                }
            }
        } else {
            dispatch_with_limiter(router, limiter, &req, &route, &peer, epoch)
        };

        sift_obs::counter(
            "sift_http_requests_total",
            &[("route", &route), ("status", &resp.status.0.to_string())],
        )
        .inc();
        sift_obs::histogram("sift_http_request_seconds", &[("route", &route)])
            .observe_duration(started_at.elapsed());

        stream.write_all(&serialize_response(&resp))?;
        if close_after {
            return Ok(());
        }
    }
}

/// Runs the request through the rate limiter (if any) and the router.
fn dispatch_with_limiter(
    router: &Router,
    limiter: Option<&RateLimiter>,
    req: &Request,
    route: &str,
    peer: &SocketAddr,
    epoch: Instant,
) -> Response {
    let Some(limiter) = limiter else {
        return dispatch_protected(router, req);
    };
    let identity = client_identity(req, peer);
    let now_ms = epoch.elapsed().as_millis() as u64;
    match limiter.check(&identity, now_ms) {
        RateLimitDecision::Allowed => dispatch_protected(router, req),
        RateLimitDecision::Limited { retry_after_secs } => {
            // The rejection path is already the slow path; a metric
            // update and an event here cost nothing that matters.
            sift_obs::counter("sift_ratelimit_rejected_total", &[("identity", &identity)]).inc();
            sift_obs::event(
                sift_obs::Level::Warn,
                "net.server",
                "rate limited",
                &[
                    ("identity", serde_json::Value::Str(identity.clone())),
                    ("route", serde_json::Value::Str(route.to_owned())),
                    (
                        "retry_after_secs",
                        serde_json::Value::UInt(retry_after_secs),
                    ),
                ],
            );
            let mut resp = Response::text(StatusCode::TOO_MANY_REQUESTS, "rate limited");
            resp.headers
                .set("retry-after", retry_after_secs.to_string());
            resp
        }
    }
}

/// Dispatches through the router, converting handler panics into 500s so
/// one bad request cannot take a worker thread down.
fn dispatch_protected(router: &Router, req: &Request) -> Response {
    catch_unwind(AssertUnwindSafe(|| router.dispatch(req)))
        .unwrap_or_else(|_| Response::text(StatusCode::INTERNAL_SERVER_ERROR, "handler panicked"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;

    fn test_router() -> Router {
        Router::new()
            .route(Method::Get, "/ping", |_| {
                Response::text(StatusCode::OK, "pong")
            })
            .route(Method::Post, "/echo", |req| Response {
                status: StatusCode::OK,
                headers: crate::http::Headers::new(),
                body: req.body.clone(),
            })
            .route(Method::Get, "/boom", |_| panic!("kaboom"))
    }

    fn raw_roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(raw).expect("write");
        s.shutdown(std::net::Shutdown::Write)
            .expect("shutdown write");
        let mut out = Vec::new();
        s.read_to_end(&mut out).expect("read");
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn serves_and_shuts_down() {
        let h = Server::new(test_router())
            .bind("127.0.0.1:0")
            .expect("bind");
        let text = raw_roundtrip(h.addr(), b"GET /ping HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.ends_with("pong"), "{text}");
        h.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let h = Server::new(test_router())
            .bind("127.0.0.1:0")
            .expect("bind");
        let mut s = TcpStream::connect(h.addr()).expect("connect");
        for _ in 0..3 {
            s.write_all(b"GET /ping HTTP/1.1\r\n\r\n").expect("write");
            let mut buf = [0u8; 1024];
            let n = s.read(&mut buf).expect("read");
            let text = String::from_utf8_lossy(&buf[..n]);
            assert!(text.contains("pong"), "{text}");
        }
        h.shutdown();
    }

    #[test]
    fn echo_posts_body() {
        let h = Server::new(test_router())
            .bind("127.0.0.1:0")
            .expect("bind");
        let text = raw_roundtrip(
            h.addr(),
            b"POST /echo HTTP/1.1\r\ncontent-length: 5\r\nconnection: close\r\n\r\nhello",
        );
        assert!(text.ends_with("hello"), "{text}");
        h.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        let h = Server::new(test_router())
            .bind("127.0.0.1:0")
            .expect("bind");
        let text = raw_roundtrip(h.addr(), b"NONSENSE\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        h.shutdown();
    }

    #[test]
    fn handler_panic_becomes_500_and_server_survives() {
        let h = Server::new(test_router())
            .bind("127.0.0.1:0")
            .expect("bind");
        let text = raw_roundtrip(h.addr(), b"GET /boom HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 500"), "{text}");
        // Server still answers afterwards.
        let text = raw_roundtrip(h.addr(), b"GET /ping HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(text.contains("pong"), "{text}");
        h.shutdown();
    }

    #[test]
    fn rate_limiter_answers_429_with_retry_after() {
        let h = Server::new(test_router())
            .with_rate_limiter(RateLimiterConfig {
                capacity: 2.0,
                refill_per_sec: 0.5,
            })
            .bind("127.0.0.1:0")
            .expect("bind");
        let mut s = TcpStream::connect(h.addr()).expect("connect");
        let mut limited = false;
        for _ in 0..4 {
            s.write_all(b"GET /ping HTTP/1.1\r\nx-fetcher-ip: 127.0.0.7\r\n\r\n")
                .expect("write");
            let mut buf = [0u8; 1024];
            let n = s.read(&mut buf).expect("read");
            let text = String::from_utf8_lossy(&buf[..n]);
            if text.starts_with("HTTP/1.1 429") {
                assert!(text.to_lowercase().contains("retry-after:"), "{text}");
                limited = true;
            }
        }
        assert!(limited, "expected to hit the rate limit");
        // A different declared identity is not limited.
        s.write_all(b"GET /ping HTTP/1.1\r\nx-fetcher-ip: 127.0.0.8\r\n\r\n")
            .expect("write");
        let mut buf = [0u8; 1024];
        let n = s.read(&mut buf).expect("read");
        let text = String::from_utf8_lossy(&buf[..n]);
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        h.shutdown();
    }
}

//! Observability endpoints: `GET /metrics` and `GET /healthz`.
//!
//! [`mount_observability`] adds both routes to any [`Router`], so every
//! server built on this crate (the trends service included) exposes its
//! live metrics in the Prometheus text format alongside a liveness probe.

use crate::http::{Method, Response, StatusCode};
use crate::router::Router;
use bytes::Bytes;

/// The content type Prometheus scrapers expect from `/metrics`.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Adds `GET /metrics` (global-registry Prometheus text exposition) and
/// `GET /healthz` (liveness, answers `ok`) to `router`.
///
/// Re-registering either route replaces the previous handler, so mounting
/// on a router that already has a `/healthz` is harmless.
pub fn mount_observability(router: Router) -> Router {
    router
        .route(Method::Get, "/metrics", |_| {
            sift_obs::counter("sift_net_metrics_scrapes_total", &[]).inc();
            let text = sift_obs::global().render_prometheus();
            let mut resp = Response {
                status: StatusCode::OK,
                headers: crate::http::Headers::new(),
                body: Bytes::from(text.into_bytes()),
            };
            resp.headers.set("content-type", METRICS_CONTENT_TYPE);
            resp
        })
        .route(Method::Get, "/healthz", |_| {
            sift_obs::counter("sift_net_healthz_total", &[]).inc();
            Response::text(StatusCode::OK, "ok")
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Request;

    #[test]
    fn healthz_answers_ok() {
        let r = mount_observability(Router::new());
        let resp = r.dispatch(&Request::get("/healthz"));
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(&resp.body[..], b"ok");
    }

    #[test]
    fn metrics_exposes_registered_series() {
        sift_obs::counter("net_obs_test_total", &[("case", "mount")]).inc();
        let r = mount_observability(Router::new());
        let resp = r.dispatch(&Request::get("/metrics"));
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.headers.get("content-type"), Some(METRICS_CONTENT_TYPE));
        let text = String::from_utf8_lossy(&resp.body);
        assert!(
            text.contains("net_obs_test_total{case=\"mount\"} 1"),
            "{text}"
        );
    }
}

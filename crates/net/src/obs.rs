//! Observability endpoints: `GET /metrics`, `GET /healthz` and
//! `GET /trace/recent`.
//!
//! [`mount_observability`] adds the routes to any [`Router`], so every
//! server built on this crate (the trends service included) exposes its
//! live metrics in the Prometheus text format alongside a liveness probe
//! and the most recent completed trace trees as JSON.

use crate::http::{Method, Response, StatusCode};
use crate::router::Router;
use bytes::Bytes;

/// The content type Prometheus scrapers expect from `/metrics`.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Adds `GET /metrics` (global-registry Prometheus text exposition),
/// `GET /healthz` (liveness, answers `ok`) and `GET /trace/recent` (the
/// last completed trace trees as a JSON array, oldest first) to
/// `router`.
///
/// Re-registering any of the routes replaces the previous handler, so
/// mounting on a router that already has a `/healthz` is harmless.
pub fn mount_observability(router: Router) -> Router {
    router
        .route(Method::Get, "/metrics", |_| {
            sift_obs::counter("sift_net_metrics_scrapes_total", &[]).inc();
            let text = sift_obs::global().render_prometheus();
            let mut resp = Response {
                status: StatusCode::OK,
                headers: crate::http::Headers::new(),
                body: Bytes::from(text.into_bytes()),
            };
            resp.headers.set("content-type", METRICS_CONTENT_TYPE);
            resp
        })
        .route(Method::Get, "/healthz", |_| {
            sift_obs::counter("sift_net_healthz_total", &[]).inc();
            Response::text(StatusCode::OK, "ok")
        })
        .route(Method::Get, "/trace/recent", |_| {
            sift_obs::counter("sift_net_trace_recent_scrapes_total", &[]).inc();
            let traces = sift_obs::trace::recent_traces();
            let body = sift_obs::trace::traces_json(&traces);
            let mut resp = Response {
                status: StatusCode::OK,
                headers: crate::http::Headers::new(),
                body: Bytes::from(body.into_bytes()),
            };
            resp.headers.set("content-type", "application/json");
            resp
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Request;

    #[test]
    fn healthz_answers_ok() {
        let r = mount_observability(Router::new());
        let resp = r.dispatch(&Request::get("/healthz"));
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(&resp.body[..], b"ok");
    }

    #[test]
    fn trace_recent_serves_completed_traces_as_json() {
        let ctx = {
            let root = sift_obs::span_root("net-obs-trace-test");
            let _child = sift_obs::span("net-obs-trace-child");
            root.context()
        };
        // The root guard dropped: the trace is complete and in the ring.
        let r = mount_observability(Router::new());
        let resp = r.dispatch(&Request::get("/trace/recent"));
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.headers.get("content-type"), Some("application/json"));
        let text = String::from_utf8_lossy(&resp.body);
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        assert!(matches!(v, serde_json::Value::Array(_)), "{text}");
        assert!(
            text.contains(&format!("{:016x}", ctx.trace_id)),
            "trace id missing from {text}"
        );
        assert!(text.contains("net-obs-trace-child"), "{text}");
    }

    #[test]
    fn metrics_exposes_registered_series() {
        sift_obs::counter("net_obs_test_total", &[("case", "mount")]).inc();
        let r = mount_observability(Router::new());
        let resp = r.dispatch(&Request::get("/metrics"));
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.headers.get("content-type"), Some(METRICS_CONTENT_TYPE));
        let text = String::from_utf8_lossy(&resp.body);
        assert!(
            text.contains("net_obs_test_total{case=\"mount\"} 1"),
            "{text}"
        );
    }
}

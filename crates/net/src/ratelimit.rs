//! Per-client token-bucket rate limiting.
//!
//! "The data collection module's primary bottleneck is GT's IP-based
//! rate-limiting" (§4). The service side of that bottleneck lives here: a
//! token bucket per client identity. Time is injected in milliseconds so
//! behaviour is exactly testable; the server wires in a monotonic clock.
//!
//! The identity map is bounded: identities idle past
//! [`RateLimiterConfig::idle_ttl_ms`] are evicted on a periodic sweep, so
//! a scan of millions of one-shot client keys cannot grow memory forever.
//! Eviction is semantically invisible — only buckets that have fully
//! refilled are dropped, and a fresh bucket is exactly what a fully
//! refilled one looks like. Evictions are counted in
//! `sift_ratelimit_evicted_total`.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Token-bucket parameters.
#[derive(Clone, Copy, Debug)]
pub struct RateLimiterConfig {
    /// Maximum burst size (bucket capacity, in requests).
    pub capacity: f64,
    /// Sustained request rate (tokens added per second).
    pub refill_per_sec: f64,
    /// Evict identities idle for longer than this many milliseconds
    /// (0 disables eviction). Only fully-refilled buckets are evicted, so
    /// the limiter's decisions are unaffected.
    pub idle_ttl_ms: u64,
}

impl Default for RateLimiterConfig {
    fn default() -> Self {
        RateLimiterConfig {
            capacity: 30.0,
            refill_per_sec: 10.0,
            idle_ttl_ms: 600_000, // 10 minutes
        }
    }
}

/// Outcome of a rate-limit check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RateLimitDecision {
    /// The request may proceed.
    Allowed,
    /// The client is over its budget and should retry after the given
    /// number of seconds (sent as `Retry-After`). Always at least 1.
    Limited {
        /// Whole seconds until a token will be available.
        retry_after_secs: u64,
    },
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    last_ms: u64,
    rejections: u64,
}

/// The bucket map plus the bookkeeping that keeps it bounded.
#[derive(Debug, Default)]
struct Buckets {
    map: HashMap<String, Bucket>,
    last_sweep_ms: u64,
    /// Rejections that belonged to since-evicted identities, folded in so
    /// `total_rejections` stays monotone across evictions.
    evicted_rejections: u64,
}

/// A token-bucket rate limiter keyed by client identity.
#[derive(Debug)]
pub struct RateLimiter {
    config: RateLimiterConfig,
    buckets: Mutex<Buckets>,
}

impl RateLimiter {
    /// Builds a limiter with the given parameters.
    pub fn new(config: RateLimiterConfig) -> Self {
        assert!(config.capacity >= 1.0, "capacity must admit one request");
        assert!(config.refill_per_sec > 0.0, "refill rate must be positive");
        RateLimiter {
            config,
            buckets: Mutex::new(Buckets::default()),
        }
    }

    /// Checks (and on success, charges) one request for `key` at time
    /// `now_ms`.
    pub fn check(&self, key: &str, now_ms: u64) -> RateLimitDecision {
        let mut buckets = self.buckets.lock();
        self.maybe_sweep(&mut buckets, now_ms);
        let bucket = buckets.map.entry(key.to_owned()).or_insert(Bucket {
            tokens: self.config.capacity,
            last_ms: now_ms,
            rejections: 0,
        });

        // Refill for elapsed time. A clock that goes backwards (shouldn't
        // happen with a monotonic source) simply refills nothing.
        let elapsed_ms = now_ms.saturating_sub(bucket.last_ms);
        bucket.tokens = (bucket.tokens + elapsed_ms as f64 / 1000.0 * self.config.refill_per_sec)
            .min(self.config.capacity);
        bucket.last_ms = now_ms.max(bucket.last_ms);

        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            RateLimitDecision::Allowed
        } else {
            bucket.rejections += 1;
            let deficit = 1.0 - bucket.tokens;
            let secs = (deficit / self.config.refill_per_sec).ceil().max(1.0);
            RateLimitDecision::Limited {
                retry_after_secs: secs as u64,
            }
        }
    }

    /// Number of tracked client identities.
    pub fn tracked_clients(&self) -> usize {
        self.buckets.lock().map.len()
    }

    /// How many requests from `key` have been rejected so far (0 for an
    /// unseen or since-evicted key).
    pub fn rejections(&self, key: &str) -> u64 {
        self.buckets.lock().map.get(key).map_or(0, |b| b.rejections)
    }

    /// Total rejections across every client identity, including
    /// identities that have since been evicted.
    pub fn total_rejections(&self) -> u64 {
        let buckets = self.buckets.lock();
        buckets.evicted_rejections + buckets.map.values().map(|b| b.rejections).sum::<u64>()
    }

    /// Evicts identities idle past the TTL. Runs at most every TTL/4 so a
    /// hot limiter is not scanning its whole map on every request.
    fn maybe_sweep(&self, buckets: &mut Buckets, now_ms: u64) {
        let ttl = self.config.idle_ttl_ms;
        if ttl == 0 {
            return;
        }
        if now_ms.saturating_sub(buckets.last_sweep_ms) < ttl / 4 {
            return;
        }
        buckets.last_sweep_ms = now_ms;
        let capacity = self.config.capacity;
        let refill = self.config.refill_per_sec;
        let mut evicted_rejections = 0u64;
        let before = buckets.map.len();
        buckets.map.retain(|_, b| {
            let idle_ms = now_ms.saturating_sub(b.last_ms);
            if idle_ms < ttl {
                return true;
            }
            // Past the TTL: materialize the refill the bucket would apply
            // lazily on its next check, then evict only if that leaves it
            // effectively full — i.e. the identity's debt is repaid and a
            // fresh bucket is indistinguishable from this one. Deciding on
            // the materialized state (rather than a separate projection)
            // keeps the sweep and the lazy refill in `check` agreeing by
            // construction: a depleted identity can never be dropped and
            // recreated at full capacity, which would hand an over-limit
            // client a free burst every TTL.
            b.tokens = (b.tokens + idle_ms as f64 / 1000.0 * refill).min(capacity);
            b.last_ms = now_ms;
            // Tiny epsilon absorbs float drift from repeated partial
            // refills; a bucket within 1e-9 of full is full.
            let full = b.tokens >= capacity - 1e-9;
            if full {
                evicted_rejections += b.rejections;
            }
            !full
        });
        let evicted = before - buckets.map.len();
        if evicted > 0 {
            buckets.evicted_rejections += evicted_rejections;
            sift_obs::counter("sift_ratelimit_evicted_total", &[])
                .add(u64::try_from(evicted).unwrap_or(u64::MAX));
            sift_obs::event(
                sift_obs::Level::Debug,
                "net.ratelimit",
                "evicted stale identities",
                &[
                    (
                        "evicted",
                        serde_json::Value::UInt(u64::try_from(evicted).unwrap_or(u64::MAX)),
                    ),
                    (
                        "remaining",
                        serde_json::Value::UInt(
                            u64::try_from(buckets.map.len()).unwrap_or(u64::MAX),
                        ),
                    ),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limiter(capacity: f64, refill: f64) -> RateLimiter {
        RateLimiter::new(RateLimiterConfig {
            capacity,
            refill_per_sec: refill,
            ..RateLimiterConfig::default()
        })
    }

    fn limiter_with_ttl(capacity: f64, refill: f64, ttl_ms: u64) -> RateLimiter {
        RateLimiter::new(RateLimiterConfig {
            capacity,
            refill_per_sec: refill,
            idle_ttl_ms: ttl_ms,
        })
    }

    #[test]
    fn burst_up_to_capacity_then_limited() {
        let l = limiter(5.0, 1.0);
        for i in 0..5 {
            assert_eq!(l.check("a", 0), RateLimitDecision::Allowed, "req {i}");
        }
        assert!(matches!(
            l.check("a", 0),
            RateLimitDecision::Limited { retry_after_secs } if retry_after_secs >= 1
        ));
    }

    #[test]
    fn refill_restores_budget() {
        let l = limiter(2.0, 2.0); // 2 tokens/sec
        assert_eq!(l.check("a", 0), RateLimitDecision::Allowed);
        assert_eq!(l.check("a", 0), RateLimitDecision::Allowed);
        assert!(matches!(l.check("a", 0), RateLimitDecision::Limited { .. }));
        // After 500ms one token has refilled.
        assert_eq!(l.check("a", 500), RateLimitDecision::Allowed);
        assert!(matches!(
            l.check("a", 500),
            RateLimitDecision::Limited { .. }
        ));
    }

    #[test]
    fn keys_are_independent() {
        let l = limiter(1.0, 0.1);
        assert_eq!(l.check("unit-1", 0), RateLimitDecision::Allowed);
        assert!(matches!(
            l.check("unit-1", 0),
            RateLimitDecision::Limited { .. }
        ));
        // A different fetcher unit has its own bucket — this is exactly
        // why the collection module spreads load across units.
        assert_eq!(l.check("unit-2", 0), RateLimitDecision::Allowed);
        assert_eq!(l.tracked_clients(), 2);
    }

    #[test]
    fn rejections_are_counted_per_key() {
        let l = limiter(1.0, 0.1);
        assert_eq!(l.check("a", 0), RateLimitDecision::Allowed);
        assert!(matches!(l.check("a", 0), RateLimitDecision::Limited { .. }));
        assert!(matches!(l.check("a", 0), RateLimitDecision::Limited { .. }));
        assert_eq!(l.check("b", 0), RateLimitDecision::Allowed);
        assert_eq!(l.rejections("a"), 2);
        assert_eq!(l.rejections("b"), 0);
        assert_eq!(l.rejections("never-seen"), 0);
        assert_eq!(l.total_rejections(), 2);
    }

    #[test]
    fn retry_after_reflects_deficit() {
        let l = limiter(1.0, 0.5); // 2 seconds per token
        assert_eq!(l.check("a", 0), RateLimitDecision::Allowed);
        match l.check("a", 0) {
            RateLimitDecision::Limited { retry_after_secs } => {
                assert_eq!(retry_after_secs, 2);
            }
            other => panic!("expected limited, got {other:?}"),
        }
    }

    #[test]
    fn tokens_cap_at_capacity() {
        let l = limiter(3.0, 100.0);
        // A long idle period must not bank more than `capacity` tokens.
        assert_eq!(l.check("a", 1_000_000), RateLimitDecision::Allowed);
        assert_eq!(l.check("a", 1_000_000), RateLimitDecision::Allowed);
        assert_eq!(l.check("a", 1_000_000), RateLimitDecision::Allowed);
        assert!(matches!(
            l.check("a", 1_000_000),
            RateLimitDecision::Limited { .. }
        ));
    }

    #[test]
    fn backwards_clock_is_tolerated() {
        let l = limiter(2.0, 1.0);
        assert_eq!(l.check("a", 1000), RateLimitDecision::Allowed);
        // Clock jumps backwards: no refill, but no panic or inflation.
        assert_eq!(l.check("a", 500), RateLimitDecision::Allowed);
        assert!(matches!(
            l.check("a", 500),
            RateLimitDecision::Limited { .. }
        ));
    }

    #[test]
    fn stale_identities_are_evicted_after_ttl() {
        let l = limiter_with_ttl(2.0, 1.0, 1_000);
        // A scan of many one-shot identities...
        for i in 0..100 {
            assert_eq!(l.check(&format!("scan-{i}"), 0), RateLimitDecision::Allowed);
        }
        assert_eq!(l.tracked_clients(), 100);
        // ...is gone once they have been idle past the TTL.
        l.check("fresh", 10_000);
        assert_eq!(l.tracked_clients(), 1);
    }

    #[test]
    fn active_identities_survive_the_sweep() {
        let l = limiter_with_ttl(2.0, 1.0, 1_000);
        l.check("steady", 0);
        l.check("one-shot", 0);
        // "steady" keeps talking; only "one-shot" goes idle past the TTL.
        l.check("steady", 900);
        l.check("steady", 1_800);
        l.check("steady", 2_700);
        assert_eq!(l.tracked_clients(), 1);
        assert_eq!(l.rejections("one-shot"), 0);
    }

    #[test]
    fn depleted_buckets_are_not_evicted_early() {
        // 1 token at 0.001/sec: refilling takes ~17 minutes, far past the
        // 1-second TTL. The depleted bucket must survive the sweep or a
        // limited client could reset its own budget by going briefly idle.
        let l = limiter_with_ttl(1.0, 0.001, 1_000);
        assert_eq!(l.check("greedy", 0), RateLimitDecision::Allowed);
        assert!(matches!(
            l.check("greedy", 0),
            RateLimitDecision::Limited { .. }
        ));
        l.check("other", 10_000); // triggers a sweep well past the TTL
        assert_eq!(l.tracked_clients(), 2, "depleted bucket retained");
        assert!(matches!(
            l.check("greedy", 10_000),
            RateLimitDecision::Limited { .. }
        ));
    }

    #[test]
    fn total_rejections_stays_monotone_across_eviction() {
        let l = limiter_with_ttl(1.0, 100.0, 1_000);
        assert_eq!(l.check("a", 0), RateLimitDecision::Allowed);
        assert!(matches!(l.check("a", 0), RateLimitDecision::Limited { .. }));
        assert!(matches!(l.check("a", 0), RateLimitDecision::Limited { .. }));
        assert_eq!(l.total_rejections(), 2);
        // Fast refill: "a" is fully refilled and idle at t=10s → evicted.
        l.check("b", 10_000);
        assert_eq!(l.tracked_clients(), 1);
        assert_eq!(l.rejections("a"), 0, "per-key count resets on eviction");
        assert_eq!(l.total_rejections(), 2, "aggregate survives eviction");
    }

    /// Regression (TTL eviction refill bug): an identity that is still
    /// throttled must not be able to launder its debt through the sweep.
    /// If the sweep evicted on idleness alone, the next request would
    /// recreate the bucket at full capacity — a free burst every TTL.
    #[test]
    fn throttled_identity_gets_no_free_burst_across_the_ttl() {
        // capacity 5, 0.5 tokens/sec, 2-second TTL.
        let l = limiter_with_ttl(5.0, 0.5, 2_000);
        for _ in 0..5 {
            assert_eq!(l.check("greedy", 0), RateLimitDecision::Allowed);
        }
        // Keeps hammering while over budget...
        for t in [0, 300, 600] {
            assert!(matches!(
                l.check("greedy", t),
                RateLimitDecision::Limited { .. }
            ));
        }
        // ...then goes idle past the TTL while another identity triggers
        // the sweep. 2.1s idle refills 1.05 of the 5 spent tokens: the
        // bucket is nowhere near full and must survive.
        l.check("other", 2_700);
        assert_eq!(l.tracked_clients(), 2, "depleted bucket not evicted");
        // Exactly one token has accrued — one request passes, not five.
        assert_eq!(l.check("greedy", 2_700), RateLimitDecision::Allowed);
        assert!(matches!(
            l.check("greedy", 2_700),
            RateLimitDecision::Limited { .. }
        ));
    }

    /// Eviction must be semantically invisible: the same call script gives
    /// identical decisions whether or not sweeps run in between.
    #[test]
    fn sweep_never_changes_decisions() {
        let swept = limiter_with_ttl(3.0, 2.0, 500);
        let unswept = limiter_with_ttl(3.0, 2.0, 0);
        let script = [
            ("a", 0u64),
            ("a", 0),
            ("a", 0),
            ("a", 0),
            ("b", 400),
            ("a", 900),
            ("b", 1_400),
            ("a", 2_100),
            ("c", 2_600),
            ("a", 2_650),
            ("b", 4_000),
            ("a", 4_100),
            ("c", 9_000),
            ("a", 9_050),
            ("a", 9_060),
        ];
        for (key, t) in script {
            assert_eq!(
                swept.check(key, t),
                unswept.check(key, t),
                "decision diverged for {key} at t={t}"
            );
        }
    }

    #[test]
    fn zero_ttl_disables_eviction() {
        let l = limiter_with_ttl(2.0, 100.0, 0);
        for i in 0..50 {
            l.check(&format!("scan-{i}"), 0);
        }
        l.check("late", 1_000_000_000);
        assert_eq!(l.tracked_clients(), 51);
    }
}

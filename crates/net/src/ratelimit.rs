//! Per-client token-bucket rate limiting.
//!
//! "The data collection module's primary bottleneck is GT's IP-based
//! rate-limiting" (§4). The service side of that bottleneck lives here: a
//! token bucket per client identity. Time is injected in milliseconds so
//! behaviour is exactly testable; the server wires in a monotonic clock.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Token-bucket parameters.
#[derive(Clone, Copy, Debug)]
pub struct RateLimiterConfig {
    /// Maximum burst size (bucket capacity, in requests).
    pub capacity: f64,
    /// Sustained request rate (tokens added per second).
    pub refill_per_sec: f64,
}

impl Default for RateLimiterConfig {
    fn default() -> Self {
        RateLimiterConfig {
            capacity: 30.0,
            refill_per_sec: 10.0,
        }
    }
}

/// Outcome of a rate-limit check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RateLimitDecision {
    /// The request may proceed.
    Allowed,
    /// The client is over its budget and should retry after the given
    /// number of seconds (sent as `Retry-After`). Always at least 1.
    Limited {
        /// Whole seconds until a token will be available.
        retry_after_secs: u64,
    },
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    last_ms: u64,
    rejections: u64,
}

/// A token-bucket rate limiter keyed by client identity.
#[derive(Debug)]
pub struct RateLimiter {
    config: RateLimiterConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    /// Builds a limiter with the given parameters.
    pub fn new(config: RateLimiterConfig) -> Self {
        assert!(config.capacity >= 1.0, "capacity must admit one request");
        assert!(config.refill_per_sec > 0.0, "refill rate must be positive");
        RateLimiter {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Checks (and on success, charges) one request for `key` at time
    /// `now_ms`.
    pub fn check(&self, key: &str, now_ms: u64) -> RateLimitDecision {
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(key.to_owned()).or_insert(Bucket {
            tokens: self.config.capacity,
            last_ms: now_ms,
            rejections: 0,
        });

        // Refill for elapsed time. A clock that goes backwards (shouldn't
        // happen with a monotonic source) simply refills nothing.
        let elapsed_ms = now_ms.saturating_sub(bucket.last_ms);
        bucket.tokens = (bucket.tokens + elapsed_ms as f64 / 1000.0 * self.config.refill_per_sec)
            .min(self.config.capacity);
        bucket.last_ms = now_ms.max(bucket.last_ms);

        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            RateLimitDecision::Allowed
        } else {
            bucket.rejections += 1;
            let deficit = 1.0 - bucket.tokens;
            let secs = (deficit / self.config.refill_per_sec).ceil().max(1.0);
            RateLimitDecision::Limited {
                retry_after_secs: secs as u64,
            }
        }
    }

    /// Number of tracked client identities.
    pub fn tracked_clients(&self) -> usize {
        self.buckets.lock().len()
    }

    /// How many requests from `key` have been rejected so far (0 for an
    /// unseen key).
    pub fn rejections(&self, key: &str) -> u64 {
        self.buckets.lock().get(key).map_or(0, |b| b.rejections)
    }

    /// Total rejections across every client identity.
    pub fn total_rejections(&self) -> u64 {
        self.buckets.lock().values().map(|b| b.rejections).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limiter(capacity: f64, refill: f64) -> RateLimiter {
        RateLimiter::new(RateLimiterConfig {
            capacity,
            refill_per_sec: refill,
        })
    }

    #[test]
    fn burst_up_to_capacity_then_limited() {
        let l = limiter(5.0, 1.0);
        for i in 0..5 {
            assert_eq!(l.check("a", 0), RateLimitDecision::Allowed, "req {i}");
        }
        assert!(matches!(
            l.check("a", 0),
            RateLimitDecision::Limited { retry_after_secs } if retry_after_secs >= 1
        ));
    }

    #[test]
    fn refill_restores_budget() {
        let l = limiter(2.0, 2.0); // 2 tokens/sec
        assert_eq!(l.check("a", 0), RateLimitDecision::Allowed);
        assert_eq!(l.check("a", 0), RateLimitDecision::Allowed);
        assert!(matches!(l.check("a", 0), RateLimitDecision::Limited { .. }));
        // After 500ms one token has refilled.
        assert_eq!(l.check("a", 500), RateLimitDecision::Allowed);
        assert!(matches!(
            l.check("a", 500),
            RateLimitDecision::Limited { .. }
        ));
    }

    #[test]
    fn keys_are_independent() {
        let l = limiter(1.0, 0.1);
        assert_eq!(l.check("unit-1", 0), RateLimitDecision::Allowed);
        assert!(matches!(
            l.check("unit-1", 0),
            RateLimitDecision::Limited { .. }
        ));
        // A different fetcher unit has its own bucket — this is exactly
        // why the collection module spreads load across units.
        assert_eq!(l.check("unit-2", 0), RateLimitDecision::Allowed);
        assert_eq!(l.tracked_clients(), 2);
    }

    #[test]
    fn rejections_are_counted_per_key() {
        let l = limiter(1.0, 0.1);
        assert_eq!(l.check("a", 0), RateLimitDecision::Allowed);
        assert!(matches!(l.check("a", 0), RateLimitDecision::Limited { .. }));
        assert!(matches!(l.check("a", 0), RateLimitDecision::Limited { .. }));
        assert_eq!(l.check("b", 0), RateLimitDecision::Allowed);
        assert_eq!(l.rejections("a"), 2);
        assert_eq!(l.rejections("b"), 0);
        assert_eq!(l.rejections("never-seen"), 0);
        assert_eq!(l.total_rejections(), 2);
    }

    #[test]
    fn retry_after_reflects_deficit() {
        let l = limiter(1.0, 0.5); // 2 seconds per token
        assert_eq!(l.check("a", 0), RateLimitDecision::Allowed);
        match l.check("a", 0) {
            RateLimitDecision::Limited { retry_after_secs } => {
                assert_eq!(retry_after_secs, 2);
            }
            other => panic!("expected limited, got {other:?}"),
        }
    }

    #[test]
    fn tokens_cap_at_capacity() {
        let l = limiter(3.0, 100.0);
        // A long idle period must not bank more than `capacity` tokens.
        assert_eq!(l.check("a", 1_000_000), RateLimitDecision::Allowed);
        assert_eq!(l.check("a", 1_000_000), RateLimitDecision::Allowed);
        assert_eq!(l.check("a", 1_000_000), RateLimitDecision::Allowed);
        assert!(matches!(
            l.check("a", 1_000_000),
            RateLimitDecision::Limited { .. }
        ));
    }

    #[test]
    fn backwards_clock_is_tolerated() {
        let l = limiter(2.0, 1.0);
        assert_eq!(l.check("a", 1000), RateLimitDecision::Allowed);
        // Clock jumps backwards: no refill, but no panic or inflation.
        assert_eq!(l.check("a", 500), RateLimitDecision::Allowed);
        assert!(matches!(
            l.check("a", 500),
            RateLimitDecision::Limited { .. }
        ));
    }
}

//! Client-side overload protection: circuit breaker and retry budget.
//!
//! The paper's premise is that search-interest spikes arrive exactly when
//! everyone's Internet is broken — the crawler hammers the trends service
//! hardest at the worst possible moment. Per-request retries (PR 3) make a
//! single fetch robust; this module keeps the *fleet* from amplifying a
//! degraded endpoint into a collapse:
//!
//! * [`CircuitBreaker`] — per-endpoint closed → open → half-open state
//!   machine. After `failure_threshold` consecutive failures the breaker
//!   opens and callers fail fast instead of queueing against a dead
//!   endpoint; after `cooldown` a single probe is allowed through and a
//!   success closes the circuit again.
//! * [`RetryBudget`] — a deterministic deposit/withdraw token bucket
//!   (after Finagle's retry budgets): every fresh call deposits a
//!   fraction of a token, every retry withdraws a whole one, so retries
//!   are bounded to a fixed percentage of live traffic no matter how many
//!   clients flap at once. The budget deliberately has no wall-clock
//!   refill: chaos replays stay byte-identical.
//!
//! Like [`crate::ratelimit`], time is injected in milliseconds so the
//! state machine is exactly testable; the public methods wire in a
//! monotonic clock. [`CircuitBreaker::fast_forward`] advances that clock
//! artificially — deterministic recovery drills don't have to sleep
//! through a real cooldown.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The three breaker states.
///
/// Gauge exposition: `sift_client_breaker_state{endpoint=…}` carries the
/// numeric state (0 closed, 1 open, 2 half-open); the `breaker-obs` lint
/// rule checks every variant's snake_case label stays registered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    Closed,
    /// Requests fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: probes are allowed; a success closes the
    /// circuit, a failure re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Every state, in escalation order.
    pub const ALL: [BreakerState; 3] = [
        BreakerState::Closed,
        BreakerState::Open,
        BreakerState::HalfOpen,
    ];

    /// The metric label of this state (snake_case of the variant).
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// The value `sift_client_breaker_state` reports for this state.
    fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Circuit-breaker thresholds.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open (≥ 1).
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing a probe.
    pub cooldown: Duration,
    /// Successful half-open probes required to close the circuit (≥ 1).
    pub success_threshold: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_secs(1),
            success_threshold: 1,
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    half_open_successes: u32,
    opened_at_ms: u64,
    /// Every `(from, to)` transition since construction, in order. No
    /// timestamps on purpose: two same-seed chaos runs must produce
    /// comparable logs even though their wall-clocks differ.
    transitions: Vec<(BreakerState, BreakerState)>,
}

/// A per-endpoint circuit breaker.
///
/// Thread-safe; clone the [`std::sync::Arc`] it is usually wrapped in to
/// share one breaker between a client and the collection queue consulting
/// its state.
#[derive(Debug)]
pub struct CircuitBreaker {
    endpoint: String,
    config: BreakerConfig,
    epoch: Instant,
    /// Artificial clock advance in ms (see [`Self::fast_forward`]).
    skew_ms: AtomicU64,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker for `endpoint` (the gauge label).
    pub fn new(endpoint: impl Into<String>, config: BreakerConfig) -> Self {
        assert!(config.failure_threshold >= 1, "threshold must be ≥ 1");
        assert!(config.success_threshold >= 1, "threshold must be ≥ 1");
        let endpoint = endpoint.into();
        sift_obs::gauge("sift_client_breaker_state", &[("endpoint", &endpoint)])
            .set(BreakerState::Closed.gauge_value());
        CircuitBreaker {
            endpoint,
            config,
            epoch: Instant::now(),
            skew_ms: AtomicU64::new(0),
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                half_open_successes: 0,
                opened_at_ms: 0,
                transitions: Vec::new(),
            }),
        }
    }

    /// The endpoint label this breaker guards.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Whether a request may proceed right now. An open breaker whose
    /// cooldown has elapsed transitions to half-open and admits the call
    /// as a probe.
    pub fn allow(&self) -> bool {
        self.allow_at(self.now_ms())
    }

    /// Non-mutating preview of [`Self::allow`]: reports whether a request
    /// *would* be admitted without consuming the half-open transition.
    /// This is what pipeline stages consult before re-planning work.
    pub fn would_allow(&self) -> bool {
        let inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => self.cooldown_elapsed(&inner, self.now_ms()),
        }
    }

    /// [`Self::allow`] at an explicit time (for tests).
    pub fn allow_at(&self, now_ms: u64) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if self.cooldown_elapsed(&inner, now_ms) {
                    inner.half_open_successes = 0;
                    self.transition(&mut inner, BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful call.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                inner.half_open_successes += 1;
                if inner.half_open_successes >= self.config.success_threshold {
                    inner.consecutive_failures = 0;
                    self.transition(&mut inner, BreakerState::Closed);
                }
            }
            // A late success from a call issued before the circuit opened
            // carries no signal about the endpoint *now*.
            BreakerState::Open => {}
        }
    }

    /// Records a failed call (transport error or 5xx).
    pub fn record_failure(&self) {
        self.record_failure_at(self.now_ms());
    }

    /// [`Self::record_failure`] at an explicit time (for tests).
    pub fn record_failure_at(&self, now_ms: u64) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.opened_at_ms = now_ms;
                    self.transition(&mut inner, BreakerState::Open);
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: back to open, cooldown restarts.
                inner.opened_at_ms = now_ms;
                self.transition(&mut inner, BreakerState::Open);
            }
            BreakerState::Open => {}
        }
    }

    /// Every `(from, to)` transition so far, in order.
    pub fn transitions(&self) -> Vec<(BreakerState, BreakerState)> {
        self.inner.lock().transitions.clone()
    }

    /// The transition log as `"closed->open"`-style strings — the
    /// replay-comparable artifact chaos runs assert on.
    pub fn transition_log(&self) -> Vec<String> {
        self.inner
            .lock()
            .transitions
            .iter()
            .map(|(from, to)| format!("{from}->{to}"))
            .collect()
    }

    /// Advances the breaker's clock by `d` without sleeping. Recovery
    /// drills (and the overload acceptance test) use this to elapse a
    /// long cooldown deterministically instead of racing a real timer.
    pub fn fast_forward(&self, d: Duration) {
        self.skew_ms.fetch_add(duration_ms(d), Ordering::Relaxed);
    }

    fn cooldown_elapsed(&self, inner: &BreakerInner, now_ms: u64) -> bool {
        now_ms.saturating_sub(inner.opened_at_ms) >= duration_ms(self.config.cooldown)
    }

    fn now_ms(&self) -> u64 {
        duration_ms(self.epoch.elapsed()) + self.skew_ms.load(Ordering::Relaxed)
    }

    fn transition(&self, inner: &mut BreakerInner, to: BreakerState) {
        let from = inner.state;
        inner.state = to;
        inner.transitions.push((from, to));
        sift_obs::gauge("sift_client_breaker_state", &[("endpoint", &self.endpoint)])
            .set(to.gauge_value());
        sift_obs::event(
            sift_obs::Level::Warn,
            "net.breaker",
            "breaker transition",
            &[
                ("endpoint", serde_json::Value::Str(self.endpoint.clone())),
                ("from", serde_json::Value::Str(from.label().to_owned())),
                ("to", serde_json::Value::Str(to.label().to_owned())),
            ],
        );
    }
}

fn duration_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// Retry-budget parameters.
#[derive(Clone, Copy, Debug)]
pub struct RetryBudgetConfig {
    /// Maximum banked retry tokens.
    pub capacity: f64,
    /// Tokens deposited by each fresh (first-attempt) call.
    pub deposit_per_call: f64,
    /// Tokens a single retry withdraws.
    pub withdraw_per_retry: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            capacity: 10.0,
            deposit_per_call: 0.1,
            withdraw_per_retry: 1.0,
        }
    }
}

/// A global retry budget shared by a fleet of clients.
///
/// Deposit-per-call / withdraw-per-retry keeps retries proportional to
/// live traffic (~`deposit/withdraw` retry share at steady state), so a
/// flapping endpoint cannot trigger a fleet-wide retry storm. The bucket
/// starts full to allow normal startup bursts.
#[derive(Debug)]
pub struct RetryBudget {
    config: RetryBudgetConfig,
    tokens: Mutex<f64>,
}

impl RetryBudget {
    /// A full budget under `config`.
    pub fn new(config: RetryBudgetConfig) -> Self {
        assert!(config.capacity >= 1.0, "capacity must admit one retry");
        assert!(
            config.withdraw_per_retry > 0.0,
            "withdrawal must be positive"
        );
        RetryBudget {
            config,
            tokens: Mutex::new(config.capacity),
        }
    }

    /// Credits one fresh call.
    pub fn deposit(&self) {
        let mut tokens = self.tokens.lock();
        *tokens = (*tokens + self.config.deposit_per_call).min(self.config.capacity);
    }

    /// Tries to pay for one retry. `false` means the fleet is out of
    /// retry budget and the caller must surface its error instead.
    pub fn try_withdraw(&self) -> bool {
        let mut tokens = self.tokens.lock();
        if *tokens >= self.config.withdraw_per_retry {
            *tokens -= self.config.withdraw_per_retry;
            true
        } else {
            false
        }
    }

    /// Currently banked tokens.
    pub fn available(&self) -> f64 {
        *self.tokens.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(
            "test",
            BreakerConfig {
                failure_threshold: threshold,
                cooldown: Duration::from_millis(cooldown_ms),
                success_threshold: 1,
            },
        )
    }

    #[test]
    fn opens_after_consecutive_failures_only() {
        let b = breaker(3, 1000);
        b.record_failure_at(0);
        b.record_failure_at(0);
        b.record_success(); // resets the streak
        b.record_failure_at(0);
        b.record_failure_at(0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure_at(0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow_at(500), "cooldown not elapsed");
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let b = breaker(1, 1000);
        b.record_failure_at(0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow_at(1000), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(
            b.transition_log(),
            vec!["closed->open", "open->half_open", "half_open->closed"]
        );
    }

    #[test]
    fn half_open_probe_failure_reopens_and_restarts_cooldown() {
        let b = breaker(1, 1000);
        b.record_failure_at(0);
        assert!(b.allow_at(1000));
        b.record_failure_at(1000);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow_at(1500), "cooldown restarted at reopen");
        assert!(b.allow_at(2000));
    }

    #[test]
    fn would_allow_is_a_pure_peek() {
        let b = breaker(1, 1000);
        b.record_failure_at(0);
        assert!(!b.would_allow());
        b.fast_forward(Duration::from_secs(2));
        assert!(b.would_allow());
        assert_eq!(b.state(), BreakerState::Open, "peek must not transition");
        assert!(b.allow(), "the real allow performs the transition");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn success_threshold_requires_multiple_probes() {
        let b = CircuitBreaker::new(
            "test",
            BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_millis(100),
                success_threshold: 2,
            },
        );
        b.record_failure_at(0);
        assert!(b.allow_at(100));
        b.record_success();
        assert_eq!(
            b.state(),
            BreakerState::HalfOpen,
            "one success is not enough"
        );
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn fast_forward_elapses_the_cooldown() {
        let b = breaker(1, 60_000);
        b.record_failure();
        assert!(!b.allow(), "a minute-long cooldown has not elapsed");
        b.fast_forward(Duration::from_secs(61));
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn retry_budget_deposits_and_withdraws() {
        let budget = RetryBudget::new(RetryBudgetConfig {
            capacity: 2.0,
            deposit_per_call: 0.5,
            withdraw_per_retry: 1.0,
        });
        assert!(budget.try_withdraw());
        assert!(budget.try_withdraw());
        assert!(!budget.try_withdraw(), "bucket empty");
        budget.deposit();
        assert!(!budget.try_withdraw(), "half a token is not a retry");
        budget.deposit();
        assert!(budget.try_withdraw());
    }

    #[test]
    fn retry_budget_caps_at_capacity() {
        let budget = RetryBudget::new(RetryBudgetConfig {
            capacity: 1.0,
            deposit_per_call: 10.0,
            withdraw_per_retry: 1.0,
        });
        budget.deposit();
        budget.deposit();
        assert!(budget.try_withdraw());
        assert!(!budget.try_withdraw(), "deposits cannot bank past capacity");
    }
}

//! Report formatting: the paper's table rows and figure series as text.

use crate::area::OutageCluster;
use crate::context::AnnotatedSpike;
use sift_simtime::format_spike_time;

/// Formats one Table 1 / Table 3 row:
/// `15 Feb. 2021–10h  TX  45  Winter storm`.
pub fn table1_row(spike: &AnnotatedSpike) -> String {
    format!(
        "{:<18} {:<5} {:>4}  {}",
        format_spike_time(spike.spike.start),
        spike.spike.state.abbrev(),
        spike.spike.duration_h(),
        spike.label()
    )
}

/// Formats one Table 2 row: `22 Jul. 2021–14h  34  Akamai`.
pub fn table2_row(cluster: &OutageCluster, label: &str) -> String {
    format!(
        "{:<18} {:>4}  {}",
        format_spike_time(cluster.anchor().start),
        cluster.state_count(),
        label
    )
}

/// Renders a numeric series as a compact ASCII sparkline (one char per
/// bucket), handy for eyeballing timelines in terminal reports.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return "▁".repeat(values.len());
    }
    values
        .iter()
        .map(|v| {
            let idx = ((v / max) * 7.0).round() as usize;
            LEVELS[idx.min(7)]
        })
        .collect()
}

/// Downsamples a series by taking the maximum of each chunk — preserves
/// spikes when rendering long timelines at terminal width.
pub fn downsample_max(values: &[f64], buckets: usize) -> Vec<f64> {
    if values.is_empty() || buckets == 0 {
        return Vec::new();
    }
    let chunk = values.len().div_ceil(buckets);
    values
        .chunks(chunk)
        .map(|c| c.iter().copied().fold(0.0f64, f64::max))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Annotation;
    use crate::detect::Spike;
    use sift_geo::State;
    use sift_simtime::Hour;

    #[test]
    fn table1_row_matches_paper_style() {
        let spike = AnnotatedSpike {
            spike: Spike {
                state: State::TX,
                start: Hour::from_ymdh(2021, 2, 15, 10),
                peak: Hour::from_ymdh(2021, 2, 15, 20),
                end: Hour::from_ymdh(2021, 2, 17, 7),
                magnitude: 100.0,
            },
            annotations: vec![Annotation {
                label: "power outage".into(),
                weight: 500.0,
                heavy_hitter: true,
            }],
        };
        let row = table1_row(&spike);
        assert!(row.contains("15 Feb. 2021\u{2013}10h"), "{row}");
        assert!(row.contains("TX"), "{row}");
        assert!(row.contains("45"), "{row}");
        assert!(row.contains("power outage"), "{row}");
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let line = sparkline(&[0.0, 50.0, 100.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
    }

    #[test]
    fn downsample_keeps_peaks() {
        let mut v = vec![0.0; 100];
        v[57] = 99.0;
        let d = downsample_max(&v, 10);
        assert_eq!(d.len(), 10);
        assert!((d[5] - 99.0).abs() < 1e-12);
        assert!(downsample_max(&[], 10).is_empty());
    }
}

//! Impact analysis: magnitude and duration statistics (§4.1).
//!
//! "Since GT normalizes search interest over all queries in a selected
//! geographical area, magnitude fits well with temporal comparisons on a
//! fixed geography. However, duration is more stable for inter-state
//! comparisons" — the functions here compute the paper's duration-centric
//! distributions: the per-state spike shares (Fig. 3 left), the duration
//! CDF (Fig. 3 right), the weekday distribution (Fig. 4) and the top-k
//! table (Table 1).

use crate::detect::Spike;
use serde::{Deserialize, Serialize};
use sift_geo::State;
use sift_simtime::Weekday;

/// One state's spike count, ranked.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StateShare {
    /// The region.
    pub state: State,
    /// Spikes hosted by the region.
    pub count: usize,
    /// Cumulative share of all spikes up to and including this rank.
    pub cumulative_share: f64,
}

/// Ranks states by spike count (descending) with cumulative shares —
/// the Fig. 3 (left) curve.
pub fn state_ranking(spikes: &[Spike]) -> Vec<StateShare> {
    let mut counts = vec![0usize; State::COUNT];
    for s in spikes {
        counts[s.state.index()] += 1;
    }
    let total: usize = counts.iter().sum();
    let mut ranked: Vec<(State, usize)> =
        State::ALL.iter().map(|s| (*s, counts[s.index()])).collect();
    ranked.sort_by_key(|(s, c)| (std::cmp::Reverse(*c), s.index()));

    let mut cumulative = 0usize;
    ranked
        .into_iter()
        .map(|(state, count)| {
            cumulative += count;
            StateShare {
                state,
                count,
                cumulative_share: if total == 0 {
                    0.0
                } else {
                    cumulative as f64 / total as f64
                },
            }
        })
        .collect()
}

/// Share of all spikes hosted by the top `k` states.
pub fn top_k_share(spikes: &[Spike], k: usize) -> f64 {
    let ranking = state_ranking(spikes);
    ranking
        .get(k.saturating_sub(1))
        .map(|s| s.cumulative_share)
        .unwrap_or_else(|| ranking.last().map(|s| s.cumulative_share).unwrap_or(0.0))
}

/// Empirical CDF of spike durations evaluated at each hour `1..=max_h` —
/// the Fig. 3 (right) curve. `cdf[h-1]` is the fraction of spikes with
/// duration ≤ `h`.
pub fn duration_cdf(spikes: &[Spike], max_h: usize) -> Vec<f64> {
    let mut counts = vec![0usize; max_h + 1];
    for s in spikes {
        let d = (s.duration_h().max(1) as usize).min(max_h);
        counts[d] += 1;
    }
    let total = spikes.len().max(1) as f64;
    let mut cdf = Vec::with_capacity(max_h);
    let mut acc = 0usize;
    for &count in &counts[1..] {
        acc += count;
        cdf.push(acc as f64 / total);
    }
    cdf
}

/// Fraction of spikes with duration at least `h` hours (the paper: 10 %
/// last at least 3 hours; ≥ 5 h spikes are the top 3.5 %).
pub fn share_at_least(spikes: &[Spike], h: i64) -> f64 {
    if spikes.is_empty() {
        return 0.0;
    }
    spikes.iter().filter(|s| s.duration_h() >= h).count() as f64 / spikes.len() as f64
}

/// Distribution of spikes over the weekday of their start, as percentages
/// summing to 100 — the Fig. 4 bars.
pub fn weekday_distribution(spikes: &[Spike]) -> [f64; 7] {
    let mut counts = [0usize; 7];
    for s in spikes {
        counts[s.start.weekday().index()] += 1;
    }
    let total = spikes.len().max(1) as f64;
    let mut out = [0.0; 7];
    for (i, c) in counts.iter().enumerate() {
        out[i] = *c as f64 * 100.0 / total;
    }
    out
}

/// The `k` longest spikes, ties broken toward higher magnitude then
/// earlier start — the Table 1 ranking.
pub fn top_by_duration(spikes: &[Spike], k: usize) -> Vec<Spike> {
    let mut sorted: Vec<Spike> = spikes.to_vec();
    sorted.sort_by(|a, b| {
        b.duration_h()
            .cmp(&a.duration_h())
            .then(
                b.magnitude
                    .partial_cmp(&a.magnitude)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.start.cmp(&b.start))
    });
    sorted.truncate(k);
    sorted
}

/// Spike counts per calendar year of the spike start.
pub fn count_by_year(spikes: &[Spike]) -> Vec<(i32, usize)> {
    let mut by_year: std::collections::BTreeMap<i32, usize> = std::collections::BTreeMap::new();
    for s in spikes {
        *by_year.entry(s.start.year()).or_insert(0) += 1;
    }
    by_year.into_iter().collect()
}

/// Average weekday percentage vs average weekend percentage (a scalar
/// summary of Fig. 4's weekend dip).
pub fn weekend_dip(spikes: &[Spike]) -> (f64, f64) {
    let dist = weekday_distribution(spikes);
    let weekday = Weekday::ALL
        .iter()
        .filter(|w| !w.is_weekend())
        .map(|w| dist[w.index()])
        .sum::<f64>()
        / 5.0;
    let weekend = Weekday::ALL
        .iter()
        .filter(|w| w.is_weekend())
        .map(|w| dist[w.index()])
        .sum::<f64>()
        / 2.0;
    (weekday, weekend)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_simtime::Hour;

    fn spike(state: State, start: i64, dur: i64, mag: f64) -> Spike {
        Spike {
            state,
            start: Hour(start),
            peak: Hour(start),
            end: Hour(start + dur),
            magnitude: mag,
        }
    }

    #[test]
    fn ranking_orders_and_accumulates() {
        let spikes = vec![
            spike(State::CA, 0, 2, 50.0),
            spike(State::CA, 10, 2, 50.0),
            spike(State::CA, 20, 2, 50.0),
            spike(State::TX, 0, 2, 50.0),
            spike(State::WY, 0, 2, 50.0),
        ];
        let ranking = state_ranking(&spikes);
        assert_eq!(ranking[0].state, State::CA);
        assert_eq!(ranking[0].count, 3);
        assert!((ranking[0].cumulative_share - 0.6).abs() < 1e-12);
        assert!((ranking.last().unwrap().cumulative_share - 1.0).abs() < 1e-12);
        assert_eq!(ranking.len(), State::COUNT);
        assert!((top_k_share(&spikes, 2) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn duration_cdf_monotone_and_complete() {
        let spikes = vec![
            spike(State::CA, 0, 1, 10.0),
            spike(State::CA, 10, 2, 10.0),
            spike(State::CA, 20, 3, 10.0),
            spike(State::CA, 30, 40, 10.0),
        ];
        let cdf = duration_cdf(&spikes, 10);
        assert_eq!(cdf.len(), 10);
        for pair in cdf.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        assert!((cdf[0] - 0.25).abs() < 1e-12);
        assert!((cdf[2] - 0.75).abs() < 1e-12);
        // Durations beyond max_h clamp into the last bucket.
        assert!((cdf[9] - 1.0).abs() < 1e-12);
        assert!((share_at_least(&spikes, 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weekday_distribution_sums_to_100() {
        let spikes: Vec<Spike> = (0..70).map(|i| spike(State::CA, i * 24, 2, 10.0)).collect();
        let dist = weekday_distribution(&spikes);
        let sum: f64 = dist.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        // 70 consecutive days = 10 of each weekday.
        for v in dist {
            assert!((v - 100.0 / 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn top_by_duration_ranks() {
        let spikes = vec![
            spike(State::CA, 0, 5, 10.0),
            spike(State::TX, 0, 45, 90.0),
            spike(State::GA, 0, 20, 50.0),
        ];
        let top = top_by_duration(&spikes, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].state, State::TX);
        assert_eq!(top[1].state, State::GA);
    }

    #[test]
    fn yearly_counts() {
        let spikes = vec![
            spike(State::CA, 100, 2, 10.0),  // 2020
            spike(State::CA, 9000, 2, 10.0), // 2021
            spike(State::CA, 9100, 2, 10.0), // 2021
        ];
        let by_year = count_by_year(&spikes);
        assert_eq!(by_year, vec![(2020, 1), (2021, 2)]);
    }

    #[test]
    fn empty_inputs_are_harmless() {
        assert_eq!(duration_cdf(&[], 5), vec![0.0; 5]);
        assert!(share_at_least(&[], 3).abs() < 1e-12);
        assert_eq!(weekday_distribution(&[]), [0.0; 7]);
        assert!(top_k_share(&[], 10).abs() < 1e-12);
        assert!(top_by_duration(&[], 5).is_empty());
        assert!(count_by_year(&[]).is_empty());
    }
}

//! The end-to-end study driver.
//!
//! [`run_study`] performs the full SIFT workflow of Fig. 2 for a set of
//! regions: plan frames → collect with re-fetch averaging → detect spikes
//! → gather rising suggestions (weekly crawl + daily drill-downs on spike
//! days) → heavy hitters → annotate → cluster across states.

use crate::area::{cluster_spikes, OutageCluster};
use crate::context::{annotate, heavy_hitters, AnnotatedSpike, ContextParams};
use crate::detect::DetectParams;
use crate::durable::{RegionJournal, StudyDurability};
use crate::plan::{plan_frames, PlanParams};
use crate::refetch::{averaged_timeline, averaged_timeline_durable, RefetchError, RefetchParams};
use crate::timeline::Timeline;
use serde::{Deserialize, Serialize};
use sift_geo::State;
use sift_simtime::{HourRange, STUDY_RANGE};
use sift_trends::api::RisingTerm;
use sift_trends::client::{FetchError, TrendsClient};
use sift_trends::{RisingRequest, SearchTerm};
use std::collections::HashMap;
use std::fmt;

/// The four pipeline stages a study's critical path is bucketed into, in
/// pipeline order, each with the span names whose self-time it absorbs:
/// stitch → re-fetch averaging (collection inclusive of HTTP attempts) →
/// prominence walk → annotation (rising gathering, heavy hitters,
/// clustering). The bench binaries and `scripts/check.sh`'s regression
/// gate report per-stage seconds under these names.
pub const PIPELINE_STAGES: &[(&str, &[&str])] = &[
    ("stitch", &["stitch"]),
    (
        "refetch",
        &["fetch", "frame", "request", "serve", "region", "plan"],
    ),
    ("detect", &["detect"]),
    ("annotate", &["annotate", "context", "cluster", "rising"]),
];

/// Parameters of one study.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StudyParams {
    /// The time range to analyse.
    pub range: HourRange,
    /// Regions to analyse.
    pub regions: Vec<State>,
    /// The tracked search term (the paper: the `<Internet outage>` topic).
    pub term: SearchTerm,
    /// Frame planning.
    pub plan: PlanParams,
    /// Re-fetch averaging.
    pub refetch: RefetchParams,
    /// Spike detection.
    pub detect: DetectParams,
    /// Context analysis.
    pub context: ContextParams,
    /// Slack when matching concurrent spikes across regions, in hours.
    pub cluster_slack_h: i64,
    /// Fetch daily rising drill-downs on spike days (the paper does; turn
    /// off to halve request volume in quick runs).
    pub daily_rising: bool,
    /// Cap on daily drill-downs per spike (long spikes span many days).
    pub max_daily_per_spike: usize,
    /// Weight multiplier applied to daily drill-down suggestions when
    /// merging with the weekly crawl's: the daily frames are "more
    /// targeted and fine-grained" (§3.1), so they should dominate the
    /// annotation ranking for their spike.
    pub daily_weight_boost: f64,
    /// Worker threads across regions.
    pub threads: usize,
}

impl Default for StudyParams {
    fn default() -> Self {
        StudyParams {
            range: STUDY_RANGE,
            regions: State::ALL.to_vec(),
            term: SearchTerm::parse("topic:Internet outage"),
            plan: PlanParams::default(),
            refetch: RefetchParams::default(),
            detect: DetectParams::default(),
            context: ContextParams::default(),
            cluster_slack_h: 1,
            daily_rising: true,
            max_daily_per_spike: 3,
            daily_weight_boost: 3.0,
            threads: 8,
        }
    }
}

/// Request accounting and convergence summary.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StudyStats {
    /// Time frames requested (the paper reports 160 238 over its study).
    pub frames_requested: u64,
    /// Rising-suggestion requests.
    pub rising_requested: u64,
    /// Re-fetch rounds used per region.
    pub rounds_by_state: Vec<(State, u32)>,
    /// Regions whose spike set converged before the round cap.
    pub converged_regions: usize,
    /// Fresh-fetch share of frame slots per region (1.0 = no frame was
    /// degraded to a previous round's sample).
    #[serde(default)]
    pub coverage_by_state: Vec<(State, f64)>,
    /// Frame slots filled from a previous round after a fetch failure,
    /// across all regions.
    #[serde(default)]
    pub frames_degraded: u64,
    /// Regions whose re-fetch loop halted early because the client's
    /// circuit breaker opened (see `RefetchOutcome::halted`).
    #[serde(default)]
    pub halted_regions: usize,
    /// Per region, the re-fetch round the loop resumed at — nonzero only
    /// when a durable study picked up work a previous (crashed) run had
    /// already sealed. All zeros on a fresh or non-durable run.
    #[serde(default)]
    pub resumed_from_round: Vec<(State, u32)>,
    /// Of `frames_requested`, slots served from a recovered journal
    /// instead of the network, across all regions (durable resumes only).
    #[serde(default)]
    pub frames_replayed: u64,
    /// Per-stage span timings recorded while this study ran.
    pub telemetry: sift_obs::TelemetrySnapshot,
}

/// Everything a study produces.
#[derive(Clone, Debug)]
pub struct StudyResult {
    /// Annotated spikes over all regions, sorted by (start, region).
    pub spikes: Vec<AnnotatedSpike>,
    /// The calibrated timeline per region.
    pub timelines: Vec<(State, Timeline)>,
    /// Cross-region outage clusters.
    pub clusters: Vec<OutageCluster>,
    /// The global heavy-hitter terms with their frequencies.
    pub heavy_hitters: Vec<(String, u64)>,
    /// Distinct suggested terms observed across all spikes.
    pub distinct_terms: usize,
    /// Request accounting.
    pub stats: StudyStats,
}

impl StudyResult {
    /// The bare spikes (without annotations), in the same order.
    pub fn bare_spikes(&self) -> Vec<crate::detect::Spike> {
        self.spikes.iter().map(|a| a.spike).collect()
    }

    /// The timeline of one region, if it was part of the study.
    pub fn timeline(&self, state: State) -> Option<&Timeline> {
        self.timelines
            .iter()
            .find(|(s, _)| *s == state)
            .map(|(_, t)| t)
    }
}

/// Study failures, tagged with the region being processed.
#[derive(Debug)]
pub enum StudyError {
    /// Collection or stitching failed for a region.
    Region {
        /// The region that failed.
        state: State,
        /// The underlying failure.
        source: RefetchError,
    },
    /// A rising-suggestions request failed.
    Rising {
        /// The region that failed.
        state: State,
        /// The underlying failure.
        source: FetchError,
    },
    /// The region's write-ahead journal or checkpoint could not be read
    /// or written (durable studies only).
    Durability {
        /// The region that failed.
        state: State,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Region { state, source } => {
                write!(f, "study failed for {state}: {source}")
            }
            StudyError::Rising { state, source } => {
                write!(f, "rising suggestions failed for {state}: {source}")
            }
            StudyError::Durability { state, source } => {
                write!(f, "durability failed for {state}: {source}")
            }
        }
    }
}

impl std::error::Error for StudyError {}

/// Per-region intermediate result produced by the parallel phase.
///
/// This is the unit of work a study shards over: [`run_region_study`]
/// produces one per region, [`assemble_study`] folds a complete set back
/// into a [`StudyResult`]. It is serializable so a cluster worker
/// (`sift-cluster`) can compute it remotely and upload it to the
/// coordinator over the wire — the global phase then runs on outcomes
/// regardless of where they were computed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegionOutcome {
    /// The region this outcome describes.
    pub state: State,
    /// The calibrated, re-fetch-averaged timeline.
    pub timeline: Timeline,
    /// Re-fetch rounds used.
    pub rounds: u32,
    /// Whether the spike set converged before the round cap.
    pub converged: bool,
    /// Time frames requested while collecting this region.
    pub frames_requested: u64,
    /// Frame slots filled from a previous round after a fetch failure.
    pub frames_degraded: u64,
    /// Fresh-fetch share of frame slots (1.0 = nothing degraded).
    pub coverage: f64,
    /// Whether the re-fetch loop halted early on an open circuit breaker.
    pub halted: bool,
    /// The re-fetch round a durable resume picked up at (0 = fresh run).
    pub resumed_from_round: u32,
    /// Frame slots served from a recovered journal instead of the network.
    pub frames_replayed: u64,
    /// Rising-suggestion requests issued for this region.
    pub rising_requested: u64,
    /// `(spike, its gathered suggestions)`.
    pub spikes: Vec<(crate::detect::Spike, Vec<RisingTerm>)>,
}

/// Runs the full study.
///
/// The client may be the in-process service or an HTTP fetcher unit; pass
/// a round-robin combinator (see `sift-fetcher`) to spread the crawl over
/// several units.
pub fn run_study(
    client: &dyn TrendsClient,
    params: &StudyParams,
) -> Result<StudyResult, StudyError> {
    run_study_impl(client, params, None)
}

/// [`run_study`] with crash-safe durability: every region journals its
/// responses and seals each completed re-fetch round with an atomic
/// checkpoint under the durability directory, so a study killed in round
/// *k* of a region resumes at round *k* with rounds `< k` intact —
/// re-fetching at most the one response that was in flight — and produces
/// the same [`StudyResult`] an uninterrupted run would have.
/// [`StudyStats::resumed_from_round`] records, per region, where the
/// resumed loop picked up.
pub fn run_study_durable(
    client: &dyn TrendsClient,
    params: &StudyParams,
    durability: &StudyDurability,
) -> Result<StudyResult, StudyError> {
    run_study_impl(client, params, Some(durability))
}

fn run_study_impl(
    client: &dyn TrendsClient,
    params: &StudyParams,
    durability: Option<&StudyDurability>,
) -> Result<StudyResult, StudyError> {
    // The study span is the end-to-end root every stage hangs off: the
    // bench binaries derive their timings from this trace tree.
    let study_span = sift_obs::span("study");
    let study_ctx = study_span.context();
    let baseline = sift_obs::SpanBaseline::capture();
    let plan = {
        let _span = sift_obs::span("plan");
        plan_frames(params.range, params.plan)
    };

    // ---- Parallel per-region phase: collect, average, detect, gather
    // rising suggestions.
    let threads = params.threads.clamp(1, params.regions.len().max(1));
    let chunks: Vec<Vec<State>> = (0..threads)
        .map(|t| {
            params
                .regions
                .iter()
                .copied()
                .skip(t)
                .step_by(threads)
                .collect()
        })
        .collect();

    let outcomes: Vec<Result<RegionOutcome, StudyError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let plan = &plan;
                scope.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|state| {
                            // Reopen the study context on this worker
                            // thread; its own span stack is empty and
                            // would orphan every region's spans.
                            let _region_span = sift_obs::span_in(study_ctx, "region");
                            run_region_study(client, params, &plan.frames, state, durability)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            // sift-lint: allow(no-panic) — re-raising a worker panic on join is the only sane option
            .flat_map(|h| h.join().expect("region worker panicked"))
            .collect()
    });

    let mut regions = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        regions.push(o?);
    }

    let mut result = assemble_study(params, regions, durability.is_some());
    result.stats.telemetry = sift_obs::TelemetrySnapshot::since(&baseline);
    Ok(result)
}

/// The study's global phase: folds a complete set of per-region outcomes
/// into the final [`StudyResult`] — heavy hitters over every spike's
/// suggestion set, annotation, cross-region clustering, accounting.
///
/// Shared verbatim between the in-process driver and the cluster
/// coordinator (`sift-cluster`); this sharing is what makes a sharded run
/// bit-identical to a single-process one. Outcomes are sorted by region
/// index before anything else, so the caller's collection order (thread
/// interleaving, worker upload order) cannot influence the result.
/// `track_resume` mirrors the durable driver: when set, per-region resume
/// rounds are recorded in [`StudyStats::resumed_from_round`].
/// [`StudyStats::telemetry`] is left empty for the caller to fill.
pub fn assemble_study(
    params: &StudyParams,
    mut regions: Vec<RegionOutcome>,
    track_resume: bool,
) -> StudyResult {
    regions.sort_by_key(|r| r.state.index());

    // ---- Global phase: heavy hitters over every spike's suggestion set,
    // then annotation.
    let context_span = sift_obs::span("context");
    let suggestion_sets = regions.iter().flat_map(|r| {
        r.spikes
            .iter()
            .map(|(_, sugg)| sugg.iter().map(|t| t.term.clone()).collect::<Vec<_>>())
    });
    let (heavy, distinct_terms) = heavy_hitters(suggestion_sets, params.context.heavy_hitter_mass);

    // ---- Annotate and assemble.
    let mut stats = StudyStats::default();
    let mut spikes: Vec<AnnotatedSpike> = Vec::new();
    let mut timelines = Vec::with_capacity(regions.len());
    for r in &regions {
        stats.frames_requested += r.frames_requested;
        stats.frames_degraded += r.frames_degraded;
        stats.rising_requested += r.rising_requested;
        stats.rounds_by_state.push((r.state, r.rounds));
        stats.coverage_by_state.push((r.state, r.coverage));
        stats.frames_replayed += r.frames_replayed;
        if track_resume {
            stats
                .resumed_from_round
                .push((r.state, r.resumed_from_round));
        }
        if r.converged {
            stats.converged_regions += 1;
        }
        if r.halted {
            stats.halted_regions += 1;
        }
        let _annotate_span = sift_obs::span("annotate");
        for (spike, suggestions) in &r.spikes {
            spikes.push(annotate(*spike, suggestions, &heavy, &params.context));
        }
        sift_obs::attr_add(
            "spikes_annotated",
            u64::try_from(r.spikes.len()).unwrap_or(u64::MAX),
        );
    }
    for r in regions {
        timelines.push((r.state, r.timeline));
    }
    spikes.sort_by_key(|a| (a.spike.start, a.spike.state.index()));
    drop(context_span);

    let clusters = {
        let _span = sift_obs::span("cluster");
        cluster_spikes(
            &spikes.iter().map(|a| a.spike).collect::<Vec<_>>(),
            params.cluster_slack_h,
        )
    };

    sift_obs::event(
        sift_obs::Level::Info,
        "core.study",
        "study complete",
        &[
            (
                "frames_requested",
                serde_json::Value::UInt(stats.frames_requested),
            ),
            (
                "rising_requested",
                serde_json::Value::UInt(stats.rising_requested),
            ),
            (
                "converged_regions",
                serde_json::Value::UInt(stats.converged_regions as u64),
            ),
            (
                "frames_degraded",
                serde_json::Value::UInt(stats.frames_degraded),
            ),
            ("spikes", serde_json::Value::UInt(spikes.len() as u64)),
        ],
    );

    StudyResult {
        spikes,
        timelines,
        clusters,
        heavy_hitters: heavy,
        distinct_terms,
        stats,
    }
}

/// The per-region pipeline: averaging, detection, rising gathering.
///
/// One shard of [`run_study`]'s parallel phase, public so a cluster
/// worker can run exactly the code path the in-process driver runs.
/// `frames` must be the full deterministic plan for `params.range`
/// (`plan_frames(params.range, params.plan)` — every shard computes the
/// same plan locally). The caller owns the enclosing `region` span.
pub fn run_region_study(
    client: &dyn TrendsClient,
    params: &StudyParams,
    frames: &[HourRange],
    state: State,
    durability: Option<&StudyDurability>,
) -> Result<RegionOutcome, StudyError> {
    // One durability domain per region: the parallel workers never share
    // a journal file.
    let mut journal: Option<RegionJournal> = durability
        .map(|d| d.region(state))
        .transpose()
        .map_err(|source| StudyError::Durability { state, source })?;

    let outcome = match journal.as_mut() {
        Some(j) => averaged_timeline_durable(
            client,
            &params.term,
            state,
            frames,
            &params.refetch,
            &params.detect,
            j,
        ),
        None => averaged_timeline(
            client,
            &params.term,
            state,
            frames,
            &params.refetch,
            &params.detect,
        ),
    }
    .map_err(|source| StudyError::Region { state, source })?;

    // Rising suggestions: weekly responses are shared between spikes in
    // the same frame, so memoize per frame start.
    let _rising_span = sift_obs::span("rising");
    let mut weekly_memo: HashMap<i64, Vec<RisingTerm>> = HashMap::new();
    let mut rising_requested = 0u64;
    let mut spikes = Vec::with_capacity(outcome.spikes.len());

    for spike in &outcome.spikes {
        let mut suggestions: Vec<RisingTerm> = Vec::new();

        for frame in frames.iter().filter(|f| f.overlaps(&spike.window())) {
            let entry = match weekly_memo.entry(frame.start.0) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    rising_requested += 1;
                    let len = u32::try_from(frame.len()).unwrap_or(u32::MAX);
                    let replayed = journal
                        .as_mut()
                        .and_then(|j| j.replayed_rising(frame.start.0, len));
                    let rising = match replayed {
                        Some(resp) => resp.rising,
                        None => {
                            let resp = client
                                .fetch_rising(&RisingRequest {
                                    term: params.term.clone(),
                                    state,
                                    start: frame.start,
                                    len,
                                    tag: 0,
                                })
                                .map_err(|source| StudyError::Rising { state, source })?;
                            if let Some(j) = journal.as_mut() {
                                j.record_rising(frame.start.0, len, &resp)
                                    .map_err(|source| StudyError::Durability { state, source })?;
                            }
                            resp.rising
                        }
                    };
                    e.insert(rising)
                }
            };
            suggestions.extend(entry.iter().cloned());
        }

        if params.daily_rising {
            // "SIFT repeats this process for daily time frames on spike
            // days to capture more targeted and fine-grained rising terms"
            // (§3.1).
            let mut day = spike.start.day_start();
            let mut fetched = 0usize;
            while day < spike.end && fetched < params.max_daily_per_spike {
                rising_requested += 1;
                let replayed = journal.as_mut().and_then(|j| j.replayed_rising(day.0, 24));
                let resp = match replayed {
                    Some(resp) => resp,
                    None => {
                        let resp = client
                            .fetch_rising(&RisingRequest {
                                term: params.term.clone(),
                                state,
                                start: day,
                                len: 24,
                                tag: 0,
                            })
                            .map_err(|source| StudyError::Rising { state, source })?;
                        if let Some(j) = journal.as_mut() {
                            j.record_rising(day.0, 24, &resp)
                                .map_err(|source| StudyError::Durability { state, source })?;
                        }
                        resp
                    }
                };
                suggestions.extend(resp.rising.into_iter().map(|mut t| {
                    // sift-lint: allow(lossy-cast) — float `as u32` saturates; rounding the boosted weight down is intended
                    t.weight = (f64::from(t.weight) * params.daily_weight_boost) as u32;
                    t
                }));
                day += 24;
                fetched += 1;
            }
        }

        spikes.push((*spike, suggestions));
    }

    // Seal the region so a resume of a *finished* study is a pure replay.
    if let Some(j) = journal.as_mut() {
        j.finish()
            .map_err(|source| StudyError::Durability { state, source })?;
    }

    Ok(RegionOutcome {
        state,
        timeline: outcome.timeline,
        rounds: outcome.rounds,
        converged: outcome.converged,
        frames_requested: outcome.frames_fetched,
        frames_degraded: outcome.frames_degraded,
        coverage: outcome.coverage,
        halted: outcome.halted,
        resumed_from_round: outcome.resumed_from_round,
        frames_replayed: outcome.frames_replayed,
        rising_requested,
        spikes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_simtime::Hour;
    use sift_trends::events::{Cause, OutageEvent, PowerTrigger};
    use sift_trends::terms::Provider;
    use sift_trends::{Scenario, ScenarioParams, TrendsService};

    fn two_region_service() -> TrendsService {
        let events = vec![
            OutageEvent {
                id: 0,
                name: "verizon".into(),
                cause: Cause::IspNetwork(Provider::Verizon),
                start: Hour(300),
                duration_h: 9,
                states: vec![(State::TX, 0.25), (State::CA, 0.2)],
                severity: 9_000.0,
                lags_h: vec![0, 0],
            },
            OutageEvent {
                id: 1,
                name: "storm".into(),
                cause: Cause::Power(PowerTrigger::Storm),
                start: Hour(800),
                duration_h: 12,
                states: vec![(State::TX, 0.2)],
                severity: 8_000.0,
                lags_h: vec![0],
            },
        ];
        // Anchor events keep the frame chain calibrated (see the
        // refetch tests for why density matters).
        let mut events = events;
        for (i, start) in (40..1200).step_by(60).enumerate() {
            for (j, state) in [State::TX, State::CA].into_iter().enumerate() {
                events.push(OutageEvent {
                    id: 100 + (i * 2 + j) as u32,
                    name: format!("anchor-{i}-{state}"),
                    cause: Cause::IspNetwork(Provider::Frontier),
                    start: Hour(start + 13 * j as i64),
                    duration_h: 2,
                    states: vec![(state, 0.015)],
                    severity: 8_000.0,
                    lags_h: vec![0],
                });
            }
        }
        let params = ScenarioParams {
            background_scale: 0.0,
            include_named: false,
            include_clusters: false,
            regions: vec![State::TX, State::CA],
            ..ScenarioParams::default()
        };
        let mut scenario = Scenario::generate(params);
        scenario.events = events;
        scenario.events.sort_by_key(|e| (e.start, e.id));
        TrendsService::with_defaults(scenario)
    }

    fn small_params() -> StudyParams {
        let mut params = StudyParams {
            range: HourRange::new(Hour(0), Hour(1200)),
            regions: vec![State::TX, State::CA],
            threads: 2,
            ..StudyParams::default()
        };
        // This toy world's heavy-hitter set is dominated by the anchor
        // events' phrases (in the full study, power terms dominate);
        // keep more annotations so cause terms survive the heavy-first
        // ranking.
        params.context.max_annotations = 6;
        params
    }

    #[test]
    fn full_workflow_recovers_both_events() {
        let service = two_region_service();
        let result = run_study(&service, &small_params()).expect("study runs");

        // Both regions have timelines covering the range.
        assert_eq!(result.timelines.len(), 2);
        assert_eq!(result.timeline(State::TX).unwrap().range().len(), 1200);

        // The multi-state event shows up as a 2-state cluster.
        let wide = result
            .clusters
            .iter()
            .find(|c| c.state_count() == 2)
            .expect("2-state cluster");
        assert!(wide.window.contains(Hour(303)));

        // The power event is power-annotated; the ISP event is not.
        let tx_power = result
            .spikes
            .iter()
            .find(|a| a.spike.state == State::TX && a.spike.window().contains(Hour(805)))
            .expect("power spike detected");
        assert!(
            tx_power.power_annotated(),
            "annotations: {:?}",
            tx_power.annotations
        );

        let tx_verizon = result
            .spikes
            .iter()
            .find(|a| a.spike.state == State::TX && a.spike.window().contains(Hour(303)))
            .expect("verizon spike detected");
        assert!(
            tx_verizon
                .annotations
                .iter()
                .any(|ann| ann.label.to_lowercase().contains("verizon")),
            "annotations: {:?}",
            tx_verizon.annotations
        );

        // Stats add up.
        assert!(result.stats.frames_requested > 0);
        assert!(result.stats.rising_requested > 0);
        assert_eq!(result.stats.rounds_by_state.len(), 2);
        // The in-process client never fails, so coverage is full.
        assert_eq!(result.stats.frames_degraded, 0);
        assert_eq!(result.stats.coverage_by_state.len(), 2);
        assert!(result
            .stats
            .coverage_by_state
            .iter()
            .all(|(_, c)| (c - 1.0).abs() < 1e-12));
    }

    #[test]
    fn spikes_sorted_and_within_range() {
        let service = two_region_service();
        let params = small_params();
        let result = run_study(&service, &params).expect("study runs");
        for pair in result.spikes.windows(2) {
            assert!(
                (pair[0].spike.start, pair[0].spike.state.index())
                    <= (pair[1].spike.start, pair[1].spike.state.index())
            );
        }
        for a in &result.spikes {
            assert!(a.spike.start >= params.range.start);
            assert!(a.spike.end <= params.range.end);
        }
    }

    #[test]
    fn daily_rising_can_be_disabled() {
        let service = two_region_service();
        let mut params = small_params();
        params.daily_rising = false;
        let without = run_study(&service, &params).expect("study runs");
        params.daily_rising = true;
        let with = run_study(&service, &params).expect("study runs");
        assert!(with.stats.rising_requested > without.stats.rising_requested);
    }

    #[test]
    fn durable_study_crashed_at_a_checkpoint_resumes_identically() {
        use sift_journal::testutil::scratch_dir;
        use sift_journal::{CrashInjector, CrashPlan, CrashSite};
        use std::sync::Arc;

        let params = small_params();
        let clean = run_study(&two_region_service(), &params).expect("clean study");

        let dir = scratch_dir("study_durable");
        // Die while a checkpoint's temp file is written but not yet
        // renamed into place — the journal must stay authoritative.
        let inj = Arc::new(CrashInjector::new(
            CrashPlan::nowhere().at(CrashSite::CheckpointTempWritten, 3),
        ));
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let durability = StudyDurability::new(&dir).with_crash(inj);
            let _ = run_study_durable(&two_region_service(), &params, &durability);
        }))
        .is_err();
        assert!(crashed, "injected crash must fire");

        let resumed =
            run_study_durable(&two_region_service(), &params, &StudyDurability::new(&dir))
                .expect("resumed study");

        assert!(resumed.stats.frames_replayed > 0, "{:?}", resumed.stats);
        assert!(
            resumed
                .stats
                .resumed_from_round
                .iter()
                .any(|&(_, round)| round > 0),
            "{:?}",
            resumed.stats.resumed_from_round
        );
        assert_eq!(resumed.spikes.len(), clean.spikes.len());
        for (a, b) in resumed.spikes.iter().zip(clean.spikes.iter()) {
            assert_eq!(a.spike, b.spike);
            assert_eq!(a.annotations, b.annotations);
        }
        assert_eq!(resumed.timelines, clean.timelines);
        assert_eq!(resumed.clusters.len(), clean.clusters.len());
        assert_eq!(resumed.stats.frames_requested, clean.stats.frames_requested);

        // A resume of the *finished* study is a pure replay: zero fetches.
        let replayed =
            run_study_durable(&two_region_service(), &params, &StudyDurability::new(&dir))
                .expect("pure replay");
        assert_eq!(
            replayed.stats.frames_replayed,
            replayed.stats.frames_requested
        );
        for (a, b) in replayed.spikes.iter().zip(clean.spikes.iter()) {
            assert_eq!(a.spike, b.spike);
        }
    }

    #[test]
    fn study_assembles_one_trace_with_all_stages_and_a_critical_path() {
        let service = two_region_service();
        let tid = {
            let root = sift_obs::span_root("study-trace-test");
            let _ = run_study(&service, &small_params()).expect("study runs");
            root.context().trace_id
        };
        let trace = sift_obs::trace::wait_completed(tid, std::time::Duration::from_secs(10))
            .expect("trace completed");
        assert!(trace.orphans().is_empty(), "no severed parentage");
        for name in [
            "study", "plan", "region", "fetch", "stitch", "detect", "annotate",
        ] {
            assert!(
                trace.spans.iter().any(|s| s.name == name),
                "stage span {name} missing from the study trace"
            );
        }
        let stitch = trace
            .spans
            .iter()
            .find(|s| s.name == "stitch")
            .expect("stitch span");
        assert!(stitch.arg("frames_stitched").is_some_and(|n| n > 0));
        let cp = sift_obs::critical_path(&trace).expect("critical path");
        // The walk telescopes: critical-path time sums to the root's
        // duration, and the four pipeline stages account for nearly all
        // of the study span's wall time.
        let study = trace
            .spans
            .iter()
            .find(|s| s.name == "study")
            .expect("study span");
        let stage_names: Vec<&str> = PIPELINE_STAGES
            .iter()
            .flat_map(|(_, names)| names.iter().copied())
            .collect();
        let staged = cp.named_us(&stage_names);
        assert!(
            staged * 10 >= study.dur_us * 9,
            "stages cover >=90% of the study: {staged}us of {}us",
            study.dur_us
        );
    }

    #[test]
    fn single_thread_matches_parallel() {
        let service = two_region_service();
        let mut params = small_params();
        params.threads = 1;
        let seq = run_study(&service, &params).expect("study runs");
        params.threads = 2;
        let par = run_study(&service, &params).expect("study runs");
        assert_eq!(seq.spikes.len(), par.spikes.len());
        for (a, b) in seq.spikes.iter().zip(par.spikes.iter()) {
            assert_eq!(a.spike, b.spike);
            assert_eq!(a.annotations, b.annotations);
        }
    }
}

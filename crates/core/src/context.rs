//! Context analysis: annotating spikes with rising search terms (§3.4).
//!
//! For each spike SIFT gathers the rising suggestions of the frames
//! covering it (weekly crawl plus daily drill-downs on spike days), then
//! 1. ranks suggestions by their weights (percent increase),
//! 2. prioritises *heavy hitters* — the few dozen terms that dominate the
//!    global suggestion mass — over random correlations,
//! 3. clusters semantically similar phrasings with word vectors, so
//!    `<is Verizon down>` and `<Verizon outage>` become one annotation.

use crate::detect::Spike;
use serde::{Deserialize, Serialize};
use sift_nlp::{cluster_phrases, DEFAULT_SIMILARITY_THRESHOLD};
use sift_trends::api::RisingTerm;
use std::collections::HashMap;

/// Context-analysis parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ContextParams {
    /// Number of annotations kept per spike.
    pub max_annotations: usize,
    /// Cosine-similarity threshold for merging phrasings.
    pub similarity_threshold: f32,
    /// Fraction of the global suggestion mass that defines the
    /// heavy-hitter set (the paper: 33 of 6655 terms cover half).
    pub heavy_hitter_mass: f64,
}

impl Default for ContextParams {
    fn default() -> Self {
        ContextParams {
            max_annotations: 3,
            similarity_threshold: DEFAULT_SIMILARITY_THRESHOLD,
            heavy_hitter_mass: 0.5,
        }
    }
}

/// One context annotation on a spike: a cluster of semantically similar
/// rising phrasings.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    /// Representative phrase (the heaviest member of the cluster).
    pub label: String,
    /// Summed weight of the cluster's members.
    pub weight: f64,
    /// Whether the cluster contains a heavy-hitter term.
    pub heavy_hitter: bool,
}

impl Annotation {
    /// True if this annotation indicates a power outage.
    pub fn is_power(&self) -> bool {
        self.label.to_ascii_lowercase().contains("power")
    }
}

/// A spike decorated with its context annotations.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnnotatedSpike {
    /// The underlying spike.
    pub spike: Spike,
    /// Annotations, strongest first.
    pub annotations: Vec<Annotation>,
}

impl AnnotatedSpike {
    /// True if any annotation indicates a power outage — the Fig. 6
    /// predicate.
    pub fn power_annotated(&self) -> bool {
        self.annotations.iter().any(Annotation::is_power)
    }

    /// A short label for tables: the strongest annotation, or `"—"`.
    pub fn label(&self) -> &str {
        self.annotations
            .first()
            .map(|a| a.label.as_str())
            .unwrap_or("—")
    }
}

/// The global heavy-hitter computation.
///
/// "SIFT distinguishes interesting search terms from random correlations
/// by superimposing all the suggestions from all the spikes and checking
/// their frequency" (§3.4). Returns `(heavy hitters, distinct term
/// count)`: the smallest set of most-frequent terms covering at least
/// `mass` of all suggestion occurrences.
pub fn heavy_hitters(
    suggestion_sets: impl IntoIterator<Item = Vec<String>>,
    mass: f64,
) -> (Vec<(String, u64)>, usize) {
    let mut freq: HashMap<String, u64> = HashMap::new();
    let mut total: u64 = 0;
    for set in suggestion_sets {
        for term in set {
            *freq.entry(normalize_term(&term)).or_insert(0) += 1;
            total += 1;
        }
    }
    let distinct = freq.len();
    let mut ranked: Vec<(String, u64)> = freq.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let target = (total as f64 * mass).ceil() as u64;
    let mut acc = 0u64;
    let mut keep = 0usize;
    for (_, c) in &ranked {
        if acc >= target {
            break;
        }
        acc += c;
        keep += 1;
    }
    ranked.truncate(keep);
    (ranked, distinct)
}

fn normalize_term(t: &str) -> String {
    sift_nlp::normalize(t)
}

/// Ranks and clusters one spike's gathered suggestions into annotations.
///
/// The transformations of §3.4, in order: weight ranking, heavy-hitter
/// prioritisation, semantic clustering.
pub fn annotate(
    spike: Spike,
    suggestions: &[RisingTerm],
    heavy: &[(String, u64)],
    params: &ContextParams,
) -> AnnotatedSpike {
    // Merge duplicate phrasings' weights first (the same term often rises
    // in both the weekly and the daily frame).
    let mut merged: HashMap<String, f64> = HashMap::new();
    for s in suggestions {
        *merged.entry(s.term.clone()).or_insert(0.0) += f64::from(s.weight);
    }
    let mut phrases: Vec<(String, f64)> = merged.into_iter().collect();
    // Deterministic order: the clustering breaks weight ties by input
    // index, which must not depend on hash-map iteration order.
    phrases.sort_by(|a, b| a.0.cmp(&b.0));

    let clusters = cluster_phrases(&phrases, params.similarity_threshold);
    let is_heavy = |term: &str| {
        let n = normalize_term(term);
        heavy.iter().any(|(h, _)| *h == n)
    };

    let mut annotations: Vec<Annotation> = clusters
        .into_iter()
        .map(|c| {
            let weight: f64 = c.members.iter().map(|&i| phrases[i].1).sum();
            let heavy_hitter = c.members.iter().any(|&i| is_heavy(&phrases[i].0));
            Annotation {
                label: phrases[c.representative].0.clone(),
                weight,
                heavy_hitter,
            }
        })
        .collect();

    // Heavy hitters outrank random correlations; weight decides within
    // each class.
    annotations.sort_by(|a, b| {
        b.heavy_hitter
            .cmp(&a.heavy_hitter)
            .then(
                b.weight
                    .partial_cmp(&a.weight)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.label.cmp(&b.label))
    });
    annotations.truncate(params.max_annotations);

    AnnotatedSpike { spike, annotations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_geo::State;
    use sift_simtime::Hour;

    fn spike() -> Spike {
        Spike {
            state: State::CA,
            start: Hour(0),
            peak: Hour(2),
            end: Hour(10),
            magnitude: 80.0,
        }
    }

    fn term(t: &str, w: u32) -> RisingTerm {
        RisingTerm {
            term: t.into(),
            weight: w,
        }
    }

    #[test]
    fn heavy_hitters_cover_half_the_mass() {
        // "power outage" appears in most sets; the tail is diverse.
        let sets: Vec<Vec<String>> = (0..100)
            .map(|i| vec!["power outage".to_string(), format!("rare term {i}")])
            .collect();
        let (heavy, distinct) = heavy_hitters(sets, 0.5);
        assert_eq!(distinct, 101);
        assert_eq!(heavy.len(), 1, "one term covers half: {heavy:?}");
        assert_eq!(heavy[0].0, "power outage");
        assert_eq!(heavy[0].1, 100);
    }

    #[test]
    fn heavy_hitters_empty_input() {
        let (heavy, distinct) = heavy_hitters(Vec::<Vec<String>>::new(), 0.5);
        assert!(heavy.is_empty());
        assert_eq!(distinct, 0);
    }

    #[test]
    fn annotation_merges_phrase_variants() {
        let suggestions = vec![
            term("is verizon down", 76),
            term("verizon outage", 100),
            term("weird meme query", 300),
        ];
        let heavy = vec![("verizon outage".to_string(), 50u64)];
        let a = annotate(spike(), &suggestions, &heavy, &ContextParams::default());
        // The verizon cluster (176 combined, heavy) outranks the heavier
        // random correlation.
        assert_eq!(a.annotations[0].label, "verizon outage");
        assert!((a.annotations[0].weight - 176.0).abs() < 1e-9);
        assert!(a.annotations[0].heavy_hitter);
        assert!(!a.annotations[1].heavy_hitter);
    }

    #[test]
    fn duplicate_terms_accumulate_weight() {
        let suggestions = vec![term("power outage", 50), term("power outage", 70)];
        let a = annotate(spike(), &suggestions, &[], &ContextParams::default());
        assert_eq!(a.annotations.len(), 1);
        assert!((a.annotations[0].weight - 120.0).abs() < 1e-9);
    }

    #[test]
    fn power_annotation_detection() {
        let suggestions = vec![
            term("san jose power outage", 90),
            term("spectrum outage", 80),
        ];
        let a = annotate(spike(), &suggestions, &[], &ContextParams::default());
        assert!(a.power_annotated());

        let suggestions = vec![term("spectrum outage", 80)];
        let a = annotate(spike(), &suggestions, &[], &ContextParams::default());
        assert!(!a.power_annotated());
    }

    #[test]
    fn annotations_truncated() {
        let suggestions: Vec<RisingTerm> = (0..10)
            .map(|i| term(&format!("provider{i} outage"), 100 - i))
            .collect();
        let params = ContextParams {
            max_annotations: 3,
            ..ContextParams::default()
        };
        let a = annotate(spike(), &suggestions, &[], &params);
        assert_eq!(a.annotations.len(), 3);
    }

    #[test]
    fn label_of_unannotated_spike() {
        let a = annotate(spike(), &[], &[], &ContextParams::default());
        assert_eq!(a.label(), "—");
        assert!(!a.power_annotated());
    }

    #[test]
    fn term_normalization_for_heavy_matching() {
        let suggestions = vec![term("Power Outage!!", 90)];
        let heavy = vec![("power outage".to_string(), 10u64)];
        let a = annotate(spike(), &suggestions, &heavy, &ContextParams::default());
        assert!(a.annotations[0].heavy_hitter);
    }
}

//! Spike detection by topographic-prominence walk.
//!
//! "The SIFT detection algorithm starts at the highest peak, then
//! continues forward in time block by block until the current time
//! block's value is less than half of the value in the previous block (or
//! zero). This point marks the ending of the spike. The start point is
//! determined by stepping backward in time starting from the peak, either
//! until the current block's value is zero or the endpoint of another
//! spike" (§3.3).
//!
//! Detection iterates: take the highest unconsumed peak, walk out its
//! extent, mark it consumed, repeat while peaks clear the noise floor.
//!
//! Two entry points share one walk core: [`detect_spikes`] runs the batch
//! pass over a finished timeline, and [`IncrementalDetector`] runs the
//! same walk online, sealing spikes as soon as the series makes them
//! final (see the equivalence note on the type).

use crate::timeline::{to_i64, Timeline};
use serde::{Deserialize, Serialize};
use sift_geo::State;
use sift_simtime::{Hour, HourRange};

/// Detection parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DetectParams {
    /// Minimum peak value (on the timeline's 0–100 scale) for a spike to
    /// be kept. After global renormalization against a two-year maximum,
    /// ordinary spikes sit at single-digit values, so the floor is small;
    /// noise rejection comes mostly from the anonymity-rounded zeros
    /// between spikes.
    pub min_peak: f64,
    /// The forward walk stops when the next block falls below this
    /// fraction of the current block (the paper uses one half).
    pub half_ratio: f64,
    /// Values at or below this are treated as zero by the walks. After
    /// re-fetch averaging, hours where only one round's sample survived
    /// anonymity carry tiny nonzero residue; without a floor those
    /// residues bridge unrelated spikes into long artifacts.
    pub walk_floor: f64,
    /// Hard cap on spikes per timeline, a guard against pathological
    /// inputs.
    pub max_spikes: usize,
}

impl Default for DetectParams {
    fn default() -> Self {
        DetectParams {
            min_peak: 0.5,
            half_ratio: 0.5,
            walk_floor: 0.25,
            max_spikes: 20_000,
        }
    }
}

/// A detected spike of user interest.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Spike {
    /// Region of the underlying timeline.
    pub state: State,
    /// First hour of elevated interest (inclusive).
    pub start: Hour,
    /// Hour of maximum interest.
    pub peak: Hour,
    /// One past the last hour of the spike (exclusive).
    pub end: Hour,
    /// Peak value on the timeline's global 0–100 scale.
    pub magnitude: f64,
}

impl Spike {
    /// Spike duration in hours: "the time elapsed between their start and
    /// end times ... the duration of the user interest" (§3.3).
    pub fn duration_h(&self) -> i64 {
        self.end - self.start
    }

    /// The spike's hour window, `[start, end)`.
    pub fn window(&self) -> HourRange {
        HourRange::new(self.start, self.end)
    }
}

/// Reusable working buffers for [`detect_spikes_into`]. The refetch loop
/// detects once per round per region; keeping the visit-order and
/// consumed-block buffers here makes every round after the first
/// allocation-free.
#[derive(Debug, Default)]
pub struct DetectScratch {
    consumed: Vec<bool>,
    order: Vec<usize>,
}

/// Detects every spike in a timeline, returned sorted by start hour.
///
/// Convenience wrapper over [`detect_spikes_into`] that allocates its own
/// buffers; callers detecting in a loop should hold a [`DetectScratch`]
/// and an output `Vec` instead.
pub fn detect_spikes(timeline: &Timeline, params: &DetectParams) -> Vec<Spike> {
    let mut scratch = DetectScratch::default();
    let mut spikes = Vec::new();
    detect_spikes_into(timeline, params, &mut scratch, &mut spikes);
    spikes
}

/// [`detect_spikes`] into caller-owned buffers: `spikes` is cleared and
/// refilled; `scratch` keeps its capacity across calls.
pub fn detect_spikes_into(
    timeline: &Timeline,
    params: &DetectParams,
    scratch: &mut DetectScratch,
    spikes: &mut Vec<Spike>,
) {
    spikes.clear();
    detect_values_into(
        timeline.state,
        timeline.start,
        &timeline.values,
        params,
        params.max_spikes,
        scratch,
        spikes,
    );
    spikes.sort_unstable_by_key(|s| (s.start, s.peak));
    sift_obs::attr_add("spikes", u64::try_from(spikes.len()).unwrap_or(u64::MAX));
}

/// The shared walk core: detects spikes over a raw value slice whose
/// first element falls at `first_hour`, appending at most `budget` spikes
/// onto `spikes` in discovery (descending peak) order. Callers own
/// clearing, sorting, and instrumentation.
fn detect_values_into(
    state: State,
    first_hour: Hour,
    v: &[f64],
    params: &DetectParams,
    budget: usize,
    scratch: &mut DetectScratch,
    spikes: &mut Vec<Spike>,
) -> usize {
    let n = v.len();
    let consumed = &mut scratch.consumed;
    consumed.clear();
    consumed.resize(n, false);

    // Visit blocks from highest to lowest (earliest first on ties): each
    // unconsumed visit is by construction the highest remaining peak, so
    // the walk order matches the paper's "start at the highest peak"
    // iteration without rescanning the series per spike.
    let order = &mut scratch.order;
    order.clear();
    order.extend((0..n).filter(|&i| v[i] >= params.min_peak));
    order.sort_unstable_by(|&a, &b| {
        v[b].partial_cmp(&v[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut emitted = 0usize;
    for &peak in order.iter() {
        if emitted >= budget {
            break;
        }
        if consumed[peak] {
            continue;
        }
        let peak_val = v[peak];

        // Forward walk: advance while the next block holds at least
        // `half_ratio` of the current one (and is above the floor and
        // free).
        let mut end = peak;
        while end + 1 < n
            && !consumed[end + 1]
            && v[end + 1] > params.walk_floor
            && v[end + 1] >= v[end] * params.half_ratio
        {
            end += 1;
        }

        // Backward walk: step back while blocks are above the floor and
        // free.
        let mut start = peak;
        while start > 0 && !consumed[start - 1] && v[start - 1] > params.walk_floor {
            start -= 1;
        }

        for slot in &mut consumed[start..=end] {
            *slot = true;
        }
        spikes.push(Spike {
            state,
            start: first_hour + to_i64(start),
            peak: first_hour + to_i64(peak),
            end: first_hour + to_i64(end) + 1,
            magnitude: peak_val,
        });
        emitted += 1;
    }
    emitted
}

/// Serializable state of an [`IncrementalDetector`], for checkpointing.
/// Holds only the open suffix of the series — everything before the last
/// sealed barrier has already been emitted and never needs revisiting.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DetectorSnapshot {
    state: State,
    params: DetectParams,
    origin: Hour,
    tail: Vec<f64>,
    tail_start: i64,
    emitted: usize,
}

/// The prominence walk, online: values stream in hour by hour and spikes
/// are sealed (emitted, never revised) as soon as the series makes them
/// final.
///
/// # Equivalence with the batch walk
///
/// Call a position with value `<= walk_floor` a *barrier*. Both walks
/// stop at barriers, and (given `min_peak > walk_floor`, asserted at
/// construction) a barrier never seeds a spike, so the batch walk over
/// the full series decomposes into independent walks over the maximal
/// barrier-free *segments*. Within one segment, the batch visit order
/// (value descending, index ascending) restricted to the segment is the
/// segment-local visit order, and consumption never crosses a barrier —
/// so walking each segment alone yields exactly the spikes the batch
/// walk finds there. The final batch sort by `(start, peak)` makes
/// emission order immaterial. The incremental detector therefore buffers
/// only the suffix after the last barrier, and the moment a new barrier
/// arrives it seals every completed segment before it: concatenating the
/// sealed output (plus [`IncrementalDetector::finish`] for the trailing
/// open segment) is byte-identical to `detect_spikes` on the full
/// series.
///
/// Two boundary conditions, both checked or documented rather than
/// silently diverged from:
///
/// * `min_peak > walk_floor` is asserted in [`IncrementalDetector::new`];
///   with the inequality reversed a barrier could seed a spike whose
///   walk escapes its segment.
/// * `max_spikes` is a *global* cap applied in magnitude order, which an
///   online detector cannot replicate (it would need future peaks). The
///   incremental walk spends the same total budget segment by segment,
///   so equivalence is exact whenever the full series stays under the
///   cap — 20 000 by default, far above anything the study produces.
///
/// # Bounded lag
///
/// The open suffix never shrinks until a barrier arrives, so detection
/// lag is bounded by the longest barrier-free run in the series.
/// Anonymity rounding makes quiet hours exactly zero in practice, so
/// runs are short; a series that never comes back to the floor is the
/// pathological case, and [`IncrementalDetector::open_hours`] exposes
/// the current run length so callers can surface it (the serve daemon
/// degrades the region with `DetectorLagging` past its lag budget).
#[derive(Debug)]
pub struct IncrementalDetector {
    state: State,
    params: DetectParams,
    /// Hour of logical index 0 — the first value ever appended.
    origin: Hour,
    /// The open suffix: values after the last sealed barrier.
    tail: Vec<f64>,
    /// Logical index of `tail[0]`.
    tail_start: i64,
    /// Spikes emitted so far; counts against `params.max_spikes`.
    emitted: usize,
    scratch: DetectScratch,
}

impl IncrementalDetector {
    /// Creates a detector for a series whose first value falls at
    /// `origin`. Asserts `min_peak > walk_floor` (see the type docs).
    pub fn new(state: State, origin: Hour, params: DetectParams) -> Self {
        assert!(
            params.min_peak > params.walk_floor,
            "incremental detection requires min_peak > walk_floor so \
             barriers cannot seed spikes"
        );
        IncrementalDetector {
            state,
            params,
            origin,
            tail: Vec::new(),
            tail_start: 0,
            emitted: 0,
            scratch: DetectScratch::default(),
        }
    }

    /// Appends the next hours of the series and seals every spike made
    /// final by them, pushing sealed spikes onto `out` (which is *not*
    /// cleared) in `(start, peak)` order. Returns the number sealed.
    pub fn append(&mut self, values: &[f64], out: &mut Vec<Spike>) -> usize {
        self.tail.extend_from_slice(values);
        let floor = self.params.walk_floor;
        match self.tail.iter().rposition(|&v| v <= floor) {
            // The suffix ending at the last barrier is final: no future
            // value can walk back across that barrier.
            Some(last_barrier) => self.seal_prefix(last_barrier + 1, out),
            None => 0,
        }
    }

    /// Seals the trailing open segment as if the series ended here, and
    /// returns the number of spikes pushed onto `out`. This is the only
    /// call that can emit a spike whose extent is not yet final; use it
    /// at end of stream. (Appending afterwards starts a fresh segment —
    /// the flushed suffix is treated as consumed.)
    pub fn finish(&mut self, out: &mut Vec<Spike>) -> usize {
        self.seal_prefix(self.tail.len(), out)
    }

    /// Hours currently buffered past the last barrier: the detection lag
    /// if the series stopped now.
    pub fn open_hours(&self) -> usize {
        self.tail.len()
    }

    /// Total hours appended so far.
    pub fn hours_seen(&self) -> i64 {
        self.tail_start + to_i64(self.tail.len())
    }

    /// One past the last hour appended so far.
    pub fn watermark(&self) -> Hour {
        self.origin + self.hours_seen()
    }

    /// Captures the detector state for checkpointing.
    pub fn snapshot(&self) -> DetectorSnapshot {
        DetectorSnapshot {
            state: self.state,
            params: self.params,
            origin: self.origin,
            tail: self.tail.clone(),
            tail_start: self.tail_start,
            emitted: self.emitted,
        }
    }

    /// Rebuilds a detector from a checkpoint; continues byte-identically
    /// to the detector the snapshot was taken from.
    pub fn restore(snap: DetectorSnapshot) -> Self {
        IncrementalDetector {
            state: snap.state,
            params: snap.params,
            origin: snap.origin,
            tail: snap.tail,
            tail_start: snap.tail_start,
            emitted: snap.emitted,
            scratch: DetectScratch::default(),
        }
    }

    /// Walks every barrier-free run inside `tail[..limit]` and drops the
    /// sealed prefix. `limit` is one past a barrier (append) or the tail
    /// length (finish), so every run in range is complete.
    fn seal_prefix(&mut self, limit: usize, out: &mut Vec<Spike>) -> usize {
        let before = out.len();
        let floor = self.params.walk_floor;
        let mut i = 0usize;
        while i < limit {
            if self.tail[i] <= floor {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while j < limit && self.tail[j] > floor {
                j += 1;
            }
            let base = out.len();
            let budget = self.params.max_spikes.saturating_sub(self.emitted);
            let first_hour = self.origin + self.tail_start + to_i64(i);
            self.emitted += detect_values_into(
                self.state,
                first_hour,
                &self.tail[i..j],
                &self.params,
                budget,
                &mut self.scratch,
                out,
            );
            out[base..].sort_unstable_by_key(|s| (s.start, s.peak));
            i = j;
        }
        self.tail.drain(..limit);
        self.tail_start += to_i64(limit);
        out.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(values: Vec<f64>) -> Timeline {
        Timeline {
            state: State::TX,
            start: Hour(0),
            values,
        }
    }

    fn detect(values: Vec<f64>) -> Vec<Spike> {
        detect_spikes(&timeline(values), &DetectParams::default())
    }

    #[test]
    fn single_clean_spike() {
        let mut v = vec![0.0; 48];
        v[10] = 20.0;
        v[11] = 60.0;
        v[12] = 100.0;
        v[13] = 70.0;
        v[14] = 40.0;
        v[15] = 25.0;
        // 25 -> 0.2 is a below-half drop; 0.2 is also under the noise
        // floor, so the tail block does not register as its own spike.
        v[16] = 0.2;
        let spikes = detect(v);
        assert_eq!(spikes.len(), 1);
        let s = spikes[0];
        assert_eq!(s.peak, Hour(12));
        assert!((s.magnitude - 100.0).abs() < 1e-9);
        assert_eq!(s.start, Hour(10), "backward walk stops at zero");
        assert_eq!(s.end, Hour(16), "forward walk stops at the half-drop");
        assert_eq!(s.duration_h(), 6);
    }

    #[test]
    fn forward_walk_stops_at_zero() {
        let mut v = vec![0.0; 24];
        v[5] = 100.0;
        v[6] = 60.0;
        v[7] = 40.0;
        let spikes = detect(v);
        assert_eq!(spikes.len(), 1);
        assert_eq!(spikes[0].end, Hour(8));
    }

    #[test]
    fn two_separate_spikes() {
        let mut v = vec![0.0; 100];
        v[10] = 100.0;
        v[11] = 80.0;
        v[50] = 50.0;
        v[51] = 45.0;
        let spikes = detect(v);
        assert_eq!(spikes.len(), 2);
        assert_eq!(spikes[0].peak, Hour(10));
        assert_eq!(spikes[1].peak, Hour(50));
        assert!(spikes[0].window().intersect(&spikes[1].window()).is_none());
    }

    #[test]
    fn successive_peaks_count_once() {
        // A plateau of near-equal highs is one spike, not many (§3.3's
        // first challenge).
        let mut v = vec![0.0; 48];
        for (i, val) in [30.0, 80.0, 95.0, 100.0, 97.0, 85.0, 60.0, 35.0, 20.0]
            .iter()
            .enumerate()
        {
            v[10 + i] = *val;
        }
        let spikes = detect(v);
        assert_eq!(spikes.len(), 1);
        assert_eq!(spikes[0].start, Hour(10));
        assert_eq!(spikes[0].end, Hour(19));
    }

    #[test]
    fn adjacent_spike_boundary_respected() {
        // A second spike's backward walk must stop at the endpoint of the
        // first (already consumed) spike.
        let mut v = vec![0.0; 48];
        v[10] = 100.0;
        v[11] = 10.0; // below-half drop ends spike 1 here, but nonzero
        v[12] = 90.0; // second spike, detected second
        v[13] = 50.0;
        let spikes = detect(v);
        assert_eq!(spikes.len(), 2);
        let first = spikes.iter().find(|s| s.peak == Hour(10)).expect("first");
        let second = spikes.iter().find(|s| s.peak == Hour(12)).expect("second");
        // The first spike's forward walk stops at the below-half drop
        // after hour 10; the second spike's backward walk stops at the
        // first spike's boundary (hour 11 is nonzero but its own spike's
        // backward walk is blocked by consumption order — hour 11 was not
        // consumed by the first spike, so the second claims it).
        assert_eq!(first.end, Hour(11));
        assert_eq!(second.start, Hour(11));
        assert!(first.window().intersect(&second.window()).is_none());
    }

    #[test]
    fn noise_floor_filters_small_peaks() {
        let mut v = vec![0.0; 48];
        v[10] = 100.0;
        v[30] = 0.2; // below min_peak
        let spikes = detect(v);
        assert_eq!(spikes.len(), 1);
    }

    #[test]
    fn flat_zero_series_has_no_spikes() {
        assert!(detect(vec![0.0; 100]).is_empty());
        assert!(detect(vec![]).is_empty());
    }

    #[test]
    fn spikes_disjoint_and_sorted_invariant() {
        // A noisy series: the invariants must hold regardless of shape.
        let v: Vec<f64> = (0..500)
            .map(|i| {
                let x = (i as f64 * 0.7).sin().abs() * 60.0;
                if i % 97 == 0 {
                    100.0
                } else if i % 11 == 0 {
                    0.0
                } else {
                    x
                }
            })
            .collect();
        let spikes = detect(v);
        assert!(!spikes.is_empty());
        for s in &spikes {
            assert!(s.start <= s.peak && s.peak < s.end);
            assert!(s.magnitude >= DetectParams::default().min_peak);
        }
        for pair in spikes.windows(2) {
            assert!(pair[0].start < pair[1].start, "sorted by start");
            assert!(
                pair[0].end <= pair[1].start,
                "spikes must not overlap: {:?} vs {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn peak_at_series_edges() {
        let mut v = vec![0.0; 24];
        v[0] = 100.0;
        v[23] = 50.0;
        let spikes = detect(v);
        assert_eq!(spikes.len(), 2);
        assert_eq!(spikes[0].start, Hour(0));
        assert_eq!(spikes[1].end, Hour(24));
    }

    /// Feeds `values` to an incremental detector in `chunk`-sized pieces
    /// and returns the full sealed output.
    fn incremental(values: &[f64], chunk: usize) -> Vec<Spike> {
        let mut det = IncrementalDetector::new(State::TX, Hour(0), DetectParams::default());
        let mut out = Vec::new();
        for piece in values.chunks(chunk) {
            det.append(piece, &mut out);
        }
        det.finish(&mut out);
        out
    }

    #[test]
    fn incremental_matches_batch_on_noisy_series() {
        let v: Vec<f64> = (0..500)
            .map(|i| {
                let x = (i as f64 * 0.7).sin().abs() * 60.0;
                if i % 97 == 0 {
                    100.0
                } else if i % 11 == 0 {
                    0.0
                } else {
                    x
                }
            })
            .collect();
        let batch = detect(v.clone());
        for chunk in [1, 7, 24, 168, 500] {
            assert_eq!(incremental(&v, chunk), batch, "chunk={chunk}");
        }
    }

    #[test]
    fn incremental_seals_at_barrier() {
        let mut det = IncrementalDetector::new(State::TX, Hour(0), DetectParams::default());
        let mut out = Vec::new();
        assert_eq!(det.append(&[0.0, 10.0, 100.0, 60.0], &mut out), 0);
        assert_eq!(det.open_hours(), 3, "open run buffers until a barrier");
        // The next zero is a barrier: the spike is final the hour it
        // lands, not at end of stream.
        assert_eq!(det.append(&[0.0], &mut out), 1);
        assert_eq!(det.open_hours(), 0);
        assert_eq!(out[0].start, Hour(1));
        assert_eq!(out[0].peak, Hour(2));
        assert_eq!(out[0].end, Hour(4));
        assert_eq!(det.watermark(), Hour(5));
    }

    #[test]
    fn incremental_snapshot_restore_is_transparent() {
        let v: Vec<f64> = (0..300)
            .map(|i| {
                if i % 13 == 0 {
                    0.0
                } else {
                    (i % 29) as f64 * 3.0
                }
            })
            .collect();
        let batch = detect(v.clone());
        for cut in [0, 1, 50, 150, 299, 300] {
            let mut out = Vec::new();
            let mut det = IncrementalDetector::new(State::TX, Hour(0), DetectParams::default());
            det.append(&v[..cut], &mut out);
            let mut det = IncrementalDetector::restore(det.snapshot());
            det.append(&v[cut..], &mut out);
            det.finish(&mut out);
            assert_eq!(out, batch, "cut={cut}");
        }
    }

    #[test]
    #[should_panic(expected = "min_peak > walk_floor")]
    fn incremental_rejects_floor_above_min_peak() {
        let params = DetectParams {
            min_peak: 0.2,
            walk_floor: 0.25,
            ..DetectParams::default()
        };
        let _ = IncrementalDetector::new(State::TX, Hour(0), params);
    }

    #[test]
    fn max_spikes_cap_respected() {
        let mut v = vec![0.0; 200];
        for i in (0..200).step_by(4) {
            v[i] = 50.0;
        }
        let params = DetectParams {
            max_spikes: 5,
            ..DetectParams::default()
        };
        let spikes = detect_spikes(&timeline(v), &params);
        assert_eq!(spikes.len(), 5);
    }
}

//! Spike detection by topographic-prominence walk.
//!
//! "The SIFT detection algorithm starts at the highest peak, then
//! continues forward in time block by block until the current time
//! block's value is less than half of the value in the previous block (or
//! zero). This point marks the ending of the spike. The start point is
//! determined by stepping backward in time starting from the peak, either
//! until the current block's value is zero or the endpoint of another
//! spike" (§3.3).
//!
//! Detection iterates: take the highest unconsumed peak, walk out its
//! extent, mark it consumed, repeat while peaks clear the noise floor.

use crate::timeline::Timeline;
use serde::{Deserialize, Serialize};
use sift_geo::State;
use sift_simtime::{Hour, HourRange};

/// Detection parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DetectParams {
    /// Minimum peak value (on the timeline's 0–100 scale) for a spike to
    /// be kept. After global renormalization against a two-year maximum,
    /// ordinary spikes sit at single-digit values, so the floor is small;
    /// noise rejection comes mostly from the anonymity-rounded zeros
    /// between spikes.
    pub min_peak: f64,
    /// The forward walk stops when the next block falls below this
    /// fraction of the current block (the paper uses one half).
    pub half_ratio: f64,
    /// Values at or below this are treated as zero by the walks. After
    /// re-fetch averaging, hours where only one round's sample survived
    /// anonymity carry tiny nonzero residue; without a floor those
    /// residues bridge unrelated spikes into long artifacts.
    pub walk_floor: f64,
    /// Hard cap on spikes per timeline, a guard against pathological
    /// inputs.
    pub max_spikes: usize,
}

impl Default for DetectParams {
    fn default() -> Self {
        DetectParams {
            min_peak: 0.5,
            half_ratio: 0.5,
            walk_floor: 0.25,
            max_spikes: 20_000,
        }
    }
}

/// A detected spike of user interest.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Spike {
    /// Region of the underlying timeline.
    pub state: State,
    /// First hour of elevated interest (inclusive).
    pub start: Hour,
    /// Hour of maximum interest.
    pub peak: Hour,
    /// One past the last hour of the spike (exclusive).
    pub end: Hour,
    /// Peak value on the timeline's global 0–100 scale.
    pub magnitude: f64,
}

impl Spike {
    /// Spike duration in hours: "the time elapsed between their start and
    /// end times ... the duration of the user interest" (§3.3).
    pub fn duration_h(&self) -> i64 {
        self.end - self.start
    }

    /// The spike's hour window, `[start, end)`.
    pub fn window(&self) -> HourRange {
        HourRange::new(self.start, self.end)
    }
}

/// Reusable working buffers for [`detect_spikes_into`]. The refetch loop
/// detects once per round per region; keeping the visit-order and
/// consumed-block buffers here makes every round after the first
/// allocation-free.
#[derive(Debug, Default)]
pub struct DetectScratch {
    consumed: Vec<bool>,
    order: Vec<usize>,
}

/// Detects every spike in a timeline, returned sorted by start hour.
///
/// Convenience wrapper over [`detect_spikes_into`] that allocates its own
/// buffers; callers detecting in a loop should hold a [`DetectScratch`]
/// and an output `Vec` instead.
pub fn detect_spikes(timeline: &Timeline, params: &DetectParams) -> Vec<Spike> {
    let mut scratch = DetectScratch::default();
    let mut spikes = Vec::new();
    detect_spikes_into(timeline, params, &mut scratch, &mut spikes);
    spikes
}

/// [`detect_spikes`] into caller-owned buffers: `spikes` is cleared and
/// refilled; `scratch` keeps its capacity across calls.
pub fn detect_spikes_into(
    timeline: &Timeline,
    params: &DetectParams,
    scratch: &mut DetectScratch,
    spikes: &mut Vec<Spike>,
) {
    let v = &timeline.values;
    let n = v.len();
    let consumed = &mut scratch.consumed;
    consumed.clear();
    consumed.resize(n, false);
    spikes.clear();

    // Visit blocks from highest to lowest (earliest first on ties): each
    // unconsumed visit is by construction the highest remaining peak, so
    // the walk order matches the paper's "start at the highest peak"
    // iteration without rescanning the series per spike.
    let order = &mut scratch.order;
    order.clear();
    order.extend((0..n).filter(|&i| v[i] >= params.min_peak));
    order.sort_unstable_by(|&a, &b| {
        v[b].partial_cmp(&v[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    for &peak in order.iter() {
        if spikes.len() >= params.max_spikes {
            break;
        }
        if consumed[peak] {
            continue;
        }
        let peak_val = v[peak];

        // Forward walk: advance while the next block holds at least
        // `half_ratio` of the current one (and is above the floor and
        // free).
        let mut end = peak;
        while end + 1 < n
            && !consumed[end + 1]
            && v[end + 1] > params.walk_floor
            && v[end + 1] >= v[end] * params.half_ratio
        {
            end += 1;
        }

        // Backward walk: step back while blocks are above the floor and
        // free.
        let mut start = peak;
        while start > 0 && !consumed[start - 1] && v[start - 1] > params.walk_floor {
            start -= 1;
        }

        for slot in &mut consumed[start..=end] {
            *slot = true;
        }
        spikes.push(Spike {
            state: timeline.state,
            start: timeline.hour_of(start),
            peak: timeline.hour_of(peak),
            end: timeline.hour_of(end) + 1,
            magnitude: peak_val,
        });
    }

    spikes.sort_unstable_by_key(|s| (s.start, s.peak));
    sift_obs::attr_add("spikes", u64::try_from(spikes.len()).unwrap_or(u64::MAX));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(values: Vec<f64>) -> Timeline {
        Timeline {
            state: State::TX,
            start: Hour(0),
            values,
        }
    }

    fn detect(values: Vec<f64>) -> Vec<Spike> {
        detect_spikes(&timeline(values), &DetectParams::default())
    }

    #[test]
    fn single_clean_spike() {
        let mut v = vec![0.0; 48];
        v[10] = 20.0;
        v[11] = 60.0;
        v[12] = 100.0;
        v[13] = 70.0;
        v[14] = 40.0;
        v[15] = 25.0;
        // 25 -> 0.2 is a below-half drop; 0.2 is also under the noise
        // floor, so the tail block does not register as its own spike.
        v[16] = 0.2;
        let spikes = detect(v);
        assert_eq!(spikes.len(), 1);
        let s = spikes[0];
        assert_eq!(s.peak, Hour(12));
        assert!((s.magnitude - 100.0).abs() < 1e-9);
        assert_eq!(s.start, Hour(10), "backward walk stops at zero");
        assert_eq!(s.end, Hour(16), "forward walk stops at the half-drop");
        assert_eq!(s.duration_h(), 6);
    }

    #[test]
    fn forward_walk_stops_at_zero() {
        let mut v = vec![0.0; 24];
        v[5] = 100.0;
        v[6] = 60.0;
        v[7] = 40.0;
        let spikes = detect(v);
        assert_eq!(spikes.len(), 1);
        assert_eq!(spikes[0].end, Hour(8));
    }

    #[test]
    fn two_separate_spikes() {
        let mut v = vec![0.0; 100];
        v[10] = 100.0;
        v[11] = 80.0;
        v[50] = 50.0;
        v[51] = 45.0;
        let spikes = detect(v);
        assert_eq!(spikes.len(), 2);
        assert_eq!(spikes[0].peak, Hour(10));
        assert_eq!(spikes[1].peak, Hour(50));
        assert!(spikes[0].window().intersect(&spikes[1].window()).is_none());
    }

    #[test]
    fn successive_peaks_count_once() {
        // A plateau of near-equal highs is one spike, not many (§3.3's
        // first challenge).
        let mut v = vec![0.0; 48];
        for (i, val) in [30.0, 80.0, 95.0, 100.0, 97.0, 85.0, 60.0, 35.0, 20.0]
            .iter()
            .enumerate()
        {
            v[10 + i] = *val;
        }
        let spikes = detect(v);
        assert_eq!(spikes.len(), 1);
        assert_eq!(spikes[0].start, Hour(10));
        assert_eq!(spikes[0].end, Hour(19));
    }

    #[test]
    fn adjacent_spike_boundary_respected() {
        // A second spike's backward walk must stop at the endpoint of the
        // first (already consumed) spike.
        let mut v = vec![0.0; 48];
        v[10] = 100.0;
        v[11] = 10.0; // below-half drop ends spike 1 here, but nonzero
        v[12] = 90.0; // second spike, detected second
        v[13] = 50.0;
        let spikes = detect(v);
        assert_eq!(spikes.len(), 2);
        let first = spikes.iter().find(|s| s.peak == Hour(10)).expect("first");
        let second = spikes.iter().find(|s| s.peak == Hour(12)).expect("second");
        // The first spike's forward walk stops at the below-half drop
        // after hour 10; the second spike's backward walk stops at the
        // first spike's boundary (hour 11 is nonzero but its own spike's
        // backward walk is blocked by consumption order — hour 11 was not
        // consumed by the first spike, so the second claims it).
        assert_eq!(first.end, Hour(11));
        assert_eq!(second.start, Hour(11));
        assert!(first.window().intersect(&second.window()).is_none());
    }

    #[test]
    fn noise_floor_filters_small_peaks() {
        let mut v = vec![0.0; 48];
        v[10] = 100.0;
        v[30] = 0.2; // below min_peak
        let spikes = detect(v);
        assert_eq!(spikes.len(), 1);
    }

    #[test]
    fn flat_zero_series_has_no_spikes() {
        assert!(detect(vec![0.0; 100]).is_empty());
        assert!(detect(vec![]).is_empty());
    }

    #[test]
    fn spikes_disjoint_and_sorted_invariant() {
        // A noisy series: the invariants must hold regardless of shape.
        let v: Vec<f64> = (0..500)
            .map(|i| {
                let x = (i as f64 * 0.7).sin().abs() * 60.0;
                if i % 97 == 0 {
                    100.0
                } else if i % 11 == 0 {
                    0.0
                } else {
                    x
                }
            })
            .collect();
        let spikes = detect(v);
        assert!(!spikes.is_empty());
        for s in &spikes {
            assert!(s.start <= s.peak && s.peak < s.end);
            assert!(s.magnitude >= DetectParams::default().min_peak);
        }
        for pair in spikes.windows(2) {
            assert!(pair[0].start < pair[1].start, "sorted by start");
            assert!(
                pair[0].end <= pair[1].start,
                "spikes must not overlap: {:?} vs {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn peak_at_series_edges() {
        let mut v = vec![0.0; 24];
        v[0] = 100.0;
        v[23] = 50.0;
        let spikes = detect(v);
        assert_eq!(spikes.len(), 2);
        assert_eq!(spikes[0].start, Hour(0));
        assert_eq!(spikes[1].end, Hour(24));
    }

    #[test]
    fn max_spikes_cap_respected() {
        let mut v = vec![0.0; 200];
        for i in (0..200).step_by(4) {
            v[i] = 50.0;
        }
        let params = DetectParams {
            max_spikes: 5,
            ..DetectParams::default()
        };
        let spikes = detect_spikes(&timeline(v), &params);
        assert_eq!(spikes.len(), 5);
    }
}

//! Study-level durability: per-region journals and round checkpoints.
//!
//! A study crawls each region through the re-fetch averaging loop and a
//! rising-suggestions pass — days of HTTP traffic at paper scale. This
//! module makes that pipeline resumable: every fetched response is
//! journaled before it is used, and each completed re-fetch round is
//! sealed with an atomic checkpoint that subsumes (and empties) the
//! journal. A study killed in round *k* resumes at round *k* with rounds
//! `< k` intact, re-fetching at most the one response that was in flight
//! when the process died.
//!
//! Replay is exact by construction: the re-fetch loop consumes recovered
//! responses through the same code path as live fetches, and the
//! simulated trends service is deterministic in the request coordinates,
//! so a crashed-and-resumed study converges to the same `StudyResult` as
//! an uninterrupted run of the same seed (proven in `tests/resume_http.rs`).
//!
//! Layout: `<dir>/<STATE>/region.ckpt` + `<dir>/<STATE>/region.wal`,
//! one durability domain per region so the parallel region workers never
//! contend on a file.

use serde::{Deserialize, Serialize};
use sift_geo::State;
use sift_journal::{read_checkpoint, write_checkpoint, CrashInjector, Journal};
use sift_trends::{FrameResponse, RisingResponse};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Durability configuration for `run_study_durable`: where the journals
/// live, and (in tests) which crash plan to execute.
#[derive(Clone)]
pub struct StudyDurability {
    dir: PathBuf,
    crash: Option<Arc<CrashInjector>>,
}

impl StudyDurability {
    /// Durability rooted at `dir` (created on first use).
    pub fn new(dir: impl Into<PathBuf>) -> StudyDurability {
        StudyDurability {
            dir: dir.into(),
            crash: None,
        }
    }

    /// Wires a crash injector into every journal append and checkpoint
    /// this study performs (shared across regions).
    pub fn with_crash(mut self, crash: Arc<CrashInjector>) -> StudyDurability {
        self.crash = Some(crash);
        self
    }

    /// The durability root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Opens (recovering) the journal of one region.
    pub fn region(&self, state: State) -> io::Result<RegionJournal> {
        RegionJournal::open(&self.dir.join(state.abbrev()), self.crash.clone())
    }
}

/// One journaled response or round boundary.
#[derive(Serialize, Deserialize)]
enum RegionRecord {
    /// A frame slot filled in the re-fetch loop (fetched or degraded).
    Frame {
        /// Re-fetch round (0-based).
        round: u32,
        /// Frame index within the round's plan.
        idx: u32,
        /// The response that filled the slot.
        resp: FrameResponse,
    },
    /// A re-fetch round completed (every slot filled, timeline folded).
    RoundDone {
        /// The completed round (0-based).
        round: u32,
    },
    /// A rising-suggestions response (weekly crawl or daily drill-down).
    Rising {
        /// First hour of the requested frame.
        start: i64,
        /// Frame length in hours.
        len: u32,
        /// The response.
        resp: RisingResponse,
    },
}

/// Checkpoint payload: the full replay state at a round boundary.
#[derive(Default, Serialize, Deserialize)]
struct ReplayState {
    /// `(round, idx, response)` for every filled frame slot.
    frames: Vec<(u32, u32, FrameResponse)>,
    /// Rounds fully completed.
    rounds_done: u32,
    /// `(start, len, response)` for every rising response.
    rising: Vec<(i64, u32, RisingResponse)>,
}

/// The durability domain of one region: a write-ahead journal of
/// responses plus a checkpoint sealed at each round boundary. The
/// re-fetch loop asks it for recovered responses before fetching, and
/// hands it every fresh response before using it.
pub struct RegionJournal {
    journal: Journal,
    ckpt_path: PathBuf,
    crash: Option<Arc<CrashInjector>>,
    frames: HashMap<(u32, u32), FrameResponse>,
    rising: HashMap<(i64, u32), RisingResponse>,
    rounds_done: u32,
    resumed_from_round: u32,
    replayed: u64,
}

impl RegionJournal {
    fn open(dir: &Path, crash: Option<Arc<CrashInjector>>) -> io::Result<RegionJournal> {
        std::fs::create_dir_all(dir)?;
        let ckpt_path = dir.join("region.ckpt");
        let mut state = match read_checkpoint(&ckpt_path)? {
            Some(bytes) => decode_state(&bytes)?,
            None => ReplayState::default(),
        };
        let (journal, recovery) = Journal::open_with(&dir.join("region.wal"), crash.clone())?;
        for payload in &recovery.records {
            let parsed = std::str::from_utf8(payload)
                .ok()
                .and_then(|json| serde_json::from_str::<RegionRecord>(json).ok());
            match parsed {
                Some(RegionRecord::Frame { round, idx, resp }) => {
                    state.frames.push((round, idx, resp));
                }
                Some(RegionRecord::RoundDone { round }) => {
                    state.rounds_done = state.rounds_done.max(round + 1);
                }
                Some(RegionRecord::Rising { start, len, resp }) => {
                    state.rising.push((start, len, resp));
                }
                None => {
                    sift_obs::event(
                        sift_obs::Level::Warn,
                        "core.durable",
                        "journal record with valid CRC failed to decode; skipped",
                        &[],
                    );
                }
            }
        }
        let frames: HashMap<(u32, u32), FrameResponse> = state
            .frames
            .into_iter()
            .map(|(round, idx, resp)| ((round, idx), resp))
            .collect();
        let rising: HashMap<(i64, u32), RisingResponse> = state
            .rising
            .into_iter()
            .map(|(start, len, resp)| ((start, len), resp))
            .collect();
        Ok(RegionJournal {
            journal,
            ckpt_path,
            crash,
            frames,
            rising,
            rounds_done: state.rounds_done,
            resumed_from_round: state.rounds_done,
            replayed: 0,
        })
    }

    /// The round the region resumes at: the first one not sealed by a
    /// checkpoint or a journaled `RoundDone`. Zero on a fresh directory.
    pub fn resumed_from_round(&self) -> u32 {
        self.resumed_from_round
    }

    /// Responses served from the journal instead of the network so far.
    pub fn frames_replayed(&self) -> u64 {
        self.replayed
    }

    /// The recovered response for a frame slot, if the journal holds one —
    /// a hit means this fetch already happened in a previous life and
    /// must not be repeated.
    pub fn replayed_frame(&mut self, round: u32, idx: u32) -> Option<FrameResponse> {
        let hit = self.frames.get(&(round, idx)).cloned();
        if hit.is_some() {
            self.replayed += 1;
        }
        hit
    }

    /// Whether every slot of `round` (of `slots` planned frames) is
    /// recoverable without touching the network.
    pub fn round_recovered(&self, round: u32, slots: usize) -> bool {
        round < self.rounds_done
            || (0..slots).all(|i| {
                u32::try_from(i)
                    .map(|idx| self.frames.contains_key(&(round, idx)))
                    .unwrap_or(false)
            })
    }

    /// Journals a freshly filled frame slot (write-ahead: call before the
    /// response is folded into any result).
    pub fn record_frame(&mut self, round: u32, idx: u32, resp: &FrameResponse) -> io::Result<()> {
        self.append(&RegionRecord::Frame {
            round,
            idx,
            resp: resp.clone(),
        })?;
        self.frames.insert((round, idx), resp.clone());
        Ok(())
    }

    /// Seals a completed round: journals the boundary, then writes the
    /// checkpoint that subsumes (and empties) the journal.
    pub fn round_done(&mut self, round: u32) -> io::Result<()> {
        if round < self.rounds_done {
            return Ok(()); // replayed round: already sealed in a previous life
        }
        self.append(&RegionRecord::RoundDone { round })?;
        self.rounds_done = round + 1;
        self.checkpoint()
    }

    /// The recovered rising response for a frame, if the journal holds one.
    pub fn replayed_rising(&mut self, start: i64, len: u32) -> Option<RisingResponse> {
        self.rising.get(&(start, len)).cloned()
    }

    /// Journals a freshly fetched rising response.
    pub fn record_rising(&mut self, start: i64, len: u32, resp: &RisingResponse) -> io::Result<()> {
        self.append(&RegionRecord::Rising {
            start,
            len,
            resp: resp.clone(),
        })?;
        self.rising.insert((start, len), resp.clone());
        Ok(())
    }

    /// Seals the region: checkpoint everything, empty the journal. Called
    /// when the region's pipeline completes, so a resume of a finished
    /// study replays without re-fetching anything.
    pub fn finish(&mut self) -> io::Result<()> {
        self.journal.sync()?;
        self.checkpoint()
    }

    fn checkpoint(&mut self) -> io::Result<()> {
        let mut frames: Vec<(u32, u32, FrameResponse)> = self
            .frames
            .iter()
            .map(|(&(round, idx), resp)| (round, idx, resp.clone()))
            .collect();
        frames.sort_by_key(|&(round, idx, _)| (round, idx));
        let mut rising: Vec<(i64, u32, RisingResponse)> = self
            .rising
            .iter()
            .map(|(&(start, len), resp)| (start, len, resp.clone()))
            .collect();
        rising.sort_by_key(|&(start, len, _)| (start, len));
        let state = ReplayState {
            frames,
            rounds_done: self.rounds_done,
            rising,
        };
        let json = serde_json::to_string(&state)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        write_checkpoint(&self.ckpt_path, json.as_bytes(), self.crash.as_deref())?;
        self.journal.truncate_all()
    }

    fn append(&mut self, record: &RegionRecord) -> io::Result<()> {
        let json = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.journal.append(json.as_bytes())
    }
}

fn decode_state(bytes: &[u8]) -> io::Result<ReplayState> {
    let json =
        std::str::from_utf8(bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    serde_json::from_str(json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_journal::testutil::scratch_dir;
    use sift_journal::{CrashPlan, CrashSite};
    use sift_simtime::Hour;
    use sift_trends::SearchTerm;

    fn frame(start: i64, values: Vec<u8>) -> FrameResponse {
        FrameResponse {
            term: SearchTerm::parse("topic:Internet outage"),
            state: State::TX,
            start: Hour(start),
            values,
        }
    }

    #[test]
    fn rounds_and_rising_survive_reopen() {
        let dir = scratch_dir("region_journal");
        let durability = StudyDurability::new(&dir);
        {
            let mut j = durability.region(State::TX).expect("open");
            assert_eq!(j.resumed_from_round(), 0);
            j.record_frame(0, 0, &frame(0, vec![1])).expect("record");
            j.record_frame(0, 1, &frame(168, vec![2])).expect("record");
            j.round_done(0).expect("seal round");
            j.record_frame(1, 0, &frame(0, vec![3])).expect("record");
            // No RoundDone for round 1: the process "dies" here.
        }
        let mut j = durability.region(State::TX).expect("reopen");
        assert_eq!(j.resumed_from_round(), 1, "round 0 sealed, round 1 open");
        assert!(j.round_recovered(0, 2));
        assert!(!j.round_recovered(1, 2), "round 1 is missing slot 1");
        assert_eq!(j.replayed_frame(0, 0).expect("slot").values, vec![1]);
        assert_eq!(
            j.replayed_frame(1, 0).expect("partial round slot").values,
            vec![3],
            "journaled frames of the open round must not be re-fetched"
        );
        assert_eq!(j.replayed_frame(1, 1), None);
        assert_eq!(j.frames_replayed(), 2);
    }

    #[test]
    fn crash_between_checkpoint_temp_and_rename_keeps_journal_authoritative() {
        let dir = scratch_dir("region_ckpt_crash");
        let inj = Arc::new(CrashInjector::new(
            CrashPlan::nowhere().at(CrashSite::CheckpointTempWritten, 0),
        ));
        let durability = StudyDurability::new(&dir).with_crash(inj);
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut j = durability.region(State::TX).expect("open");
            j.record_frame(0, 0, &frame(0, vec![7])).expect("record");
            j.round_done(0).expect("seal round"); // dies before the rename
        }))
        .is_err();
        assert!(crashed, "injected crash must fire");
        // Recovery: the checkpoint never landed, but the journal still
        // holds the frame AND the RoundDone record, so nothing is lost.
        let clean = StudyDurability::new(&dir);
        let mut j = clean.region(State::TX).expect("recover");
        assert_eq!(j.resumed_from_round(), 1);
        assert_eq!(j.replayed_frame(0, 0).expect("slot").values, vec![7]);
    }

    #[test]
    fn finish_makes_resume_a_pure_replay() {
        let dir = scratch_dir("region_finish");
        let durability = StudyDurability::new(&dir);
        {
            let mut j = durability.region(State::TX).expect("open");
            j.record_frame(0, 0, &frame(0, vec![1])).expect("record");
            j.round_done(0).expect("seal");
            j.record_rising(
                0,
                168,
                &RisingResponse {
                    state: State::TX,
                    start: Hour(0),
                    rising: vec![],
                },
            )
            .expect("record rising");
            j.finish().expect("finish");
        }
        let mut j = durability.region(State::TX).expect("reopen");
        assert!(j.replayed_rising(0, 168).is_some());
        assert!(j.replayed_frame(0, 0).is_some());
    }
}

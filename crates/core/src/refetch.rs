//! Iterative re-fetch averaging.
//!
//! "We mitigate the sampling error with an iterative method. First, we
//! build a time series from a single set of time frames and detect the
//! resulting spikes. Then, we repeat this procedure but instead take the
//! average of two time frames to reduce the sampling error at each time
//! frame position. We follow this procedure until the set of spikes we
//! detect converge" (§3.2). The paper observes convergence after six
//! rounds.

use crate::detect::{detect_spikes_into, DetectParams, DetectScratch, Spike};
use crate::durable::RegionJournal;
use crate::timeline::{stitch_into, StitchError, Timeline};
use serde::{Deserialize, Serialize};
use sift_geo::State;
use sift_simtime::{Hour, HourRange};
use sift_trends::client::{FetchError, TrendsClient};
use sift_trends::{FrameRequest, FrameResponse, SearchTerm};

/// Parameters of the averaging loop.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RefetchParams {
    /// Maximum re-fetch rounds (the paper needed six).
    pub max_rounds: u32,
    /// Spike-set similarity at which the loop declares convergence.
    pub convergence: f64,
    /// Minimum rounds before convergence may be declared.
    pub min_rounds: u32,
    /// Two spikes "match" across rounds when their peaks are within this
    /// many hours.
    pub peak_tolerance_h: i64,
    /// Spikes below this magnitude are ignored by the convergence
    /// criterion (they still appear in the final spike set). Near the
    /// detection floor, sampling noise makes marginal spikes flicker
    /// between rounds; requiring them to stabilise would keep the loop
    /// fetching long after the meaningful spikes have settled.
    pub convergence_floor: f64,
}

impl Default for RefetchParams {
    fn default() -> Self {
        RefetchParams {
            max_rounds: 8,
            convergence: 0.95,
            min_rounds: 2,
            peak_tolerance_h: 3,
            convergence_floor: 1.0,
        }
    }
}

/// The outcome of the averaging loop for one region.
#[derive(Clone, Debug)]
pub struct RefetchOutcome {
    /// The averaged, renormalized timeline after the final round.
    pub timeline: Timeline,
    /// Spikes detected on the final timeline.
    pub spikes: Vec<Spike>,
    /// Rounds executed.
    pub rounds: u32,
    /// Whether the spike set converged (vs hitting `max_rounds`).
    pub converged: bool,
    /// Spike-set similarity after each round (starting with round 2).
    pub similarity_trace: Vec<f64>,
    /// Frame slots filled with a live or journal-replayed response
    /// (degraded slots are not counted). Replayed slots are included so a
    /// resumed run reports the same logical workload as an uninterrupted
    /// one; [`RefetchOutcome::frames_replayed`] says how many of them
    /// never touched the network this time.
    pub frames_fetched: u64,
    /// Of [`RefetchOutcome::frames_fetched`], slots served from a
    /// recovered journal instead of the network (resumed runs only).
    pub frames_replayed: u64,
    /// The re-fetch round this loop resumed at (0 for a fresh run): every
    /// earlier round was recovered whole from a checkpoint or journal.
    pub resumed_from_round: u32,
    /// Frame slots filled from the previous round's response because the
    /// fresh fetch failed (graceful degradation; only possible after
    /// round 1).
    pub frames_degraded: u64,
    /// Fresh-fetch share of all frame slots filled:
    /// `frames_fetched / (frames_fetched + frames_degraded)`. 1.0 means
    /// every frame of every round came from a live fetch.
    pub coverage: f64,
    /// Whether the loop stopped early because the client reported itself
    /// unhealthy (its circuit breaker open). The timeline and spikes of
    /// the rounds already run are still returned; `converged` stays
    /// `false` unless convergence was declared before the halt.
    pub halted: bool,
}

/// Errors of the averaging loop.
#[derive(Debug)]
pub enum RefetchError {
    /// A frame fetch failed (after the client's own retries).
    Fetch(FetchError),
    /// Fetched frames could not be stitched.
    Stitch(StitchError),
    /// The write-ahead journal or checkpoint could not be written. Raised
    /// only when durability was requested: a crawl that cannot uphold its
    /// crash-safety contract fails loudly instead of silently degrading
    /// to a non-resumable run.
    Durability(std::io::Error),
}

impl std::fmt::Display for RefetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefetchError::Fetch(e) => write!(f, "fetching failed: {e}"),
            RefetchError::Stitch(e) => write!(f, "stitching failed: {e}"),
            RefetchError::Durability(e) => write!(f, "journaling failed: {e}"),
        }
    }
}

impl std::error::Error for RefetchError {}

/// Magnitude-weighted similarity of two spike sets: the matched share of
/// spike mass, where a spike of set `a` matches at most one spike of set
/// `b` with a peak within `tolerance_h` hours, contributing the smaller of
/// the two magnitudes. Two empty sets are fully similar.
///
/// Weighting by magnitude makes the convergence criterion care about the
/// spikes that matter: marginal, noise-floor spikes flickering between
/// rounds barely move the score, while a major spike appearing or
/// disappearing does.
pub fn spike_set_similarity(a: &[Spike], b: &[Spike], tolerance_h: i64) -> f64 {
    spike_set_similarity_scratch(a, b, tolerance_h, &mut Vec::new())
}

/// [`spike_set_similarity`] with a caller-owned match buffer (`used` is
/// cleared and refilled), so the per-round convergence check in the
/// averaging loop allocates nothing.
pub fn spike_set_similarity_scratch(
    a: &[Spike],
    b: &[Spike],
    tolerance_h: i64,
    used: &mut Vec<bool>,
) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mass = |set: &[Spike]| set.iter().map(|s| s.magnitude).sum::<f64>();
    let denom = mass(a).max(mass(b));
    if denom <= 0.0 {
        return 1.0;
    }
    used.clear();
    used.resize(b.len(), false);
    let mut matched = 0.0f64;
    for sa in a {
        if let Some((idx, sb)) = b
            .iter()
            .enumerate()
            .filter(|(i, sb)| !used[*i] && (sb.peak - sa.peak).abs() <= tolerance_h)
            .min_by_key(|(_, sb)| (sb.peak - sa.peak).abs())
        {
            used[idx] = true;
            matched += sa.magnitude.min(sb.magnitude);
        }
    }
    matched / denom
}

/// Runs the averaging loop for one region over pre-planned frame ranges.
///
/// Each round fetches every frame with a fresh sample tag, stitches a
/// timeline, folds it into the running mean, re-detects spikes and
/// compares the spike set with the previous round's.
///
/// Degradation contract: a frame fetch that still fails after the
/// client's own retries aborts the loop only in round 1 (there is nothing
/// to fall back to). From round 2 on, the slot is filled with the
/// previous round's response for the same frame — the running mean keeps
/// its shape, the round merely adds no fresh sample there — and the loss
/// is surfaced in [`RefetchOutcome::frames_degraded`] /
/// [`RefetchOutcome::coverage`] and the
/// `sift_refetch_frames_degraded_total` counter.
pub fn averaged_timeline(
    client: &dyn TrendsClient,
    term: &SearchTerm,
    state: State,
    frames: &[HourRange],
    params: &RefetchParams,
    detect: &DetectParams,
) -> Result<RefetchOutcome, RefetchError> {
    averaged_timeline_impl(client, term, state, frames, params, detect, None)
}

/// [`averaged_timeline`] with crash-safe durability: every response is
/// journaled before it is folded into the running mean, each completed
/// round is sealed with an atomic checkpoint, and slots the journal
/// already holds are replayed instead of re-fetched. A loop killed in
/// round *k* therefore resumes at round *k*, re-fetching at most the one
/// response that was in flight — and, because replayed responses flow
/// through the same code path as live ones, converges to the same
/// outcome an uninterrupted run would have produced.
pub fn averaged_timeline_durable(
    client: &dyn TrendsClient,
    term: &SearchTerm,
    state: State,
    frames: &[HourRange],
    params: &RefetchParams,
    detect: &DetectParams,
    journal: &mut RegionJournal,
) -> Result<RefetchOutcome, RefetchError> {
    averaged_timeline_impl(client, term, state, frames, params, detect, Some(journal))
}

/// A zero-length placeholder for the round loop's reusable timeline
/// buffers; every field is overwritten before first use.
fn empty_timeline(state: State) -> Timeline {
    Timeline {
        state,
        start: Hour(0),
        values: Vec::new(),
    }
}

/// Copies `src` into `dst` reusing `dst`'s value buffer — the derived
/// `Clone` would allocate a fresh `Vec` per round.
fn copy_timeline(dst: &mut Timeline, src: &Timeline) {
    dst.state = src.state;
    dst.start = src.start;
    dst.values.clear();
    dst.values.extend_from_slice(&src.values);
}

fn averaged_timeline_impl(
    client: &dyn TrendsClient,
    term: &SearchTerm,
    state: State,
    frames: &[HourRange],
    params: &RefetchParams,
    detect: &DetectParams,
    mut journal: Option<&mut RegionJournal>,
) -> Result<RefetchOutcome, RefetchError> {
    assert!(params.max_rounds >= 1);
    let resumed_from_round = journal.as_ref().map_or(0, |j| j.resumed_from_round());
    let state_label = state.to_string();
    let mut similarity_trace = Vec::new();
    let mut frames_fetched = 0u64;
    let mut frames_replayed = 0u64;
    let mut frames_degraded = 0u64;
    let mut rounds = 0u32;
    let mut converged = false;
    let mut halted = false;

    // Per-round working set, hoisted so the loop reuses capacity instead
    // of reallocating once per round (this is the per-region hot path:
    // every buffer below would otherwise be rebuilt max_rounds times).
    let mut responses: Vec<FrameResponse> = Vec::with_capacity(frames.len());
    // Empty until the first round completes; the degradation fallback
    // checks emptiness where it previously checked `Option::None`.
    let mut prev_responses: Vec<FrameResponse> = Vec::new();
    let mut round_timeline = empty_timeline(state);
    let mut mean = empty_timeline(state);
    let mut detect_input = empty_timeline(state);
    let mut detect_scratch = DetectScratch::default();
    let mut spikes: Vec<Spike> = Vec::new();
    let mut strong: Vec<Spike> = Vec::new();
    let mut prev_strong: Vec<Spike> = Vec::new();
    let mut have_prev_strong = false;
    let mut similarity_used: Vec<bool> = Vec::new();
    // One request, re-stamped per frame: `SearchTerm` owns heap, so
    // cloning it per fetch would allocate once per frame per round.
    let mut request = FrameRequest {
        term: term.clone(),
        state,
        start: Hour(0),
        len: 0,
        tag: 0,
    };

    for round in 0..params.max_rounds {
        // A round the journal can serve whole needs no network at all, so
        // the breaker-health gate below must not halt it.
        let round_recovered = journal
            .as_ref()
            .is_some_and(|j| j.round_recovered(round, frames.len()));
        // Round 1 must run — there is no result without it, and a fresh
        // breaker has seen no traffic yet. Later rounds only refine the
        // estimate, so when the client's breaker has opened the loop
        // keeps what it has instead of queueing doomed fetches.
        if round > 0 && !round_recovered && !client.healthy() {
            halted = true;
            sift_obs::counter("sift_refetch_halted_total", &[("state", &state_label)]).inc();
            sift_obs::event(
                sift_obs::Level::Warn,
                "core.refetch",
                "refetch halted: client unhealthy (breaker open)",
                &[
                    // sift-lint: allow(hot-alloc) — halt path: fires at most once, then breaks the loop
                    ("state", serde_json::Value::Str(state_label.clone())),
                    ("rounds_run", serde_json::Value::UInt(u64::from(rounds))),
                ],
            );
            break;
        }
        rounds = round + 1;
        {
            let _span = sift_obs::span("fetch");
            responses.clear();
            for (i, r) in frames.iter().enumerate() {
                let idx = u32::try_from(i).unwrap_or(u32::MAX);
                // A slot the journal holds was fetched in a previous life
                // of this process — replay it; fetching again would break
                // the zero-refetch resume contract.
                if let Some(resp) = journal.as_mut().and_then(|j| j.replayed_frame(round, idx)) {
                    frames_fetched += 1;
                    frames_replayed += 1;
                    responses.push(resp);
                    continue;
                }
                request.start = r.start;
                request.len = u32::try_from(r.len()).unwrap_or(u32::MAX);
                request.tag = u64::from(round);
                match client.fetch_frame(&request) {
                    Ok(resp) => {
                        if let Some(j) = journal.as_mut() {
                            j.record_frame(round, idx, &resp)
                                .map_err(RefetchError::Durability)?;
                        }
                        frames_fetched += 1;
                        responses.push(resp);
                    }
                    Err(e) => {
                        // Round 1 has no previous sample to degrade to;
                        // later rounds reuse the same frame slot from the
                        // round before and carry on.
                        if prev_responses.is_empty() {
                            return Err(RefetchError::Fetch(e));
                        }
                        frames_degraded += 1;
                        sift_obs::counter(
                            "sift_refetch_frames_degraded_total",
                            &[("state", &state_label)],
                        )
                        .inc();
                        sift_obs::event(
                            sift_obs::Level::Warn,
                            "core.refetch",
                            "frame fetch failed; reusing previous round's sample",
                            &[
                                // sift-lint: allow(hot-alloc) — failure path: runs once per degraded frame, not per sample
                                ("state", serde_json::Value::Str(state_label.clone())),
                                ("frame_start", serde_json::Value::Int(r.start.0)),
                                ("round", serde_json::Value::UInt(u64::from(rounds))),
                                // sift-lint: allow(hot-alloc) — failure path: the error string is the event payload
                                ("error", serde_json::Value::Str(e.to_string())),
                            ],
                        );
                        // Journal the degraded slot too: replay must
                        // reproduce the run exactly, including the slots
                        // that fell back to the previous round's sample.
                        if let Some(j) = journal.as_mut() {
                            j.record_frame(round, idx, &prev_responses[i])
                                .map_err(RefetchError::Durability)?;
                        }
                        // sift-lint: allow(hot-alloc) — failure path: the degraded slot needs its own copy
                        responses.push(prev_responses[i].clone());
                    }
                }
            }
            sift_obs::attr_add("frames", u64::try_from(responses.len()).unwrap_or(u64::MAX));
        }

        {
            let _span = sift_obs::span("stitch");
            stitch_into(&responses, &mut round_timeline).map_err(RefetchError::Stitch)?;
        }
        std::mem::swap(&mut prev_responses, &mut responses);
        // Seal the round: atomic checkpoint subsuming (and emptying) the
        // journal. A crash from here on resumes at round + 1.
        if let Some(j) = journal.as_mut() {
            j.round_done(round).map_err(RefetchError::Durability)?;
        }

        if round == 0 {
            copy_timeline(&mut mean, &round_timeline);
        } else {
            mean.accumulate_mean(&round_timeline, round + 1);
        }
        // Work on a renormalized copy; the running mean itself must stay
        // un-renormalized so later rounds average in the same units.
        {
            let _span = sift_obs::span("detect");
            copy_timeline(&mut detect_input, &mean);
            detect_input.renormalize();
            detect_spikes_into(&detect_input, detect, &mut detect_scratch, &mut spikes);
        }

        strong.clear();
        strong.extend(
            spikes
                .iter()
                .copied()
                .filter(|s| s.magnitude >= params.convergence_floor),
        );
        if have_prev_strong {
            let sim = spike_set_similarity_scratch(
                &prev_strong,
                &strong,
                params.peak_tolerance_h,
                &mut similarity_used,
            );
            similarity_trace.push(sim);
            if rounds >= params.min_rounds && sim >= params.convergence {
                converged = true;
                break;
            }
        }
        std::mem::swap(&mut prev_strong, &mut strong);
        have_prev_strong = true;
    }

    sift_obs::counter("sift_refetch_rounds_total", &[("state", &state_label)])
        .add(u64::from(rounds));
    if converged {
        sift_obs::counter("sift_refetch_converged_total", &[("state", &state_label)]).inc();
    }
    sift_obs::counter("sift_spikes_detected_total", &[("state", &state_label)])
        .add(u64::try_from(spikes.len()).unwrap_or(u64::MAX));

    // `spikes` and `mean` hold the last completed round's detection and
    // running mean: round 1 always runs to completion or returns `Err`
    // above, and the halt/convergence breaks leave both intact.
    let mut timeline = mean;
    timeline.renormalize();
    let slots = frames_fetched + frames_degraded;
    let coverage = if slots == 0 {
        1.0
    } else {
        // sift-lint: allow(lossy-cast) — slot counts are far below 2^52; the ratio is diagnostic
        frames_fetched as f64 / slots as f64
    };
    Ok(RefetchOutcome {
        timeline,
        spikes,
        rounds,
        converged,
        similarity_trace,
        frames_fetched,
        frames_replayed,
        resumed_from_round,
        frames_degraded,
        coverage,
        halted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_simtime::Hour;
    use sift_trends::events::{Cause, OutageEvent};
    use sift_trends::terms::Provider;
    use sift_trends::{Scenario, TrendsService};

    fn spike(peak: i64) -> Spike {
        Spike {
            state: State::TX,
            start: Hour(peak - 1),
            peak: Hour(peak),
            end: Hour(peak + 2),
            magnitude: 50.0,
        }
    }

    fn close(x: f64, want: f64) -> bool {
        (x - want).abs() < 1e-12
    }

    #[test]
    fn similarity_edge_cases() {
        assert!(close(spike_set_similarity(&[], &[], 3), 1.0));
        assert!(close(spike_set_similarity(&[spike(10)], &[], 3), 0.0));
        assert!(close(spike_set_similarity(&[], &[spike(10)], 3), 0.0));
        assert!(close(
            spike_set_similarity(&[spike(10)], &[spike(11)], 3),
            1.0
        ));
        assert!(close(
            spike_set_similarity(&[spike(10)], &[spike(20)], 3),
            0.0
        ));
    }

    #[test]
    fn similarity_does_not_double_match() {
        // Two spikes in `a` near one spike in `b`: only one may match.
        let a = [spike(10), spike(12)];
        let b = [spike(11)];
        assert!(close(spike_set_similarity(&a, &b, 3), 0.5));
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = [spike(10), spike(40), spike(90)];
        let b = [spike(11), spike(41)];
        assert_eq!(
            spike_set_similarity(&a, &b, 3),
            spike_set_similarity(&b, &a, 3)
        );
    }

    /// A realistic-density world: two target events plus periodic
    /// moderate "anchor" outages. Real states see several outages a day,
    /// which is what keeps every weekly frame's scaling ratio anchored;
    /// a world with two events in five weeks has quiet frames whose
    /// maxima are anonymity-noise flukes, and no stitcher can calibrate
    /// across a 100x dynamic-range jump quantized to integers.
    fn service_with_events() -> TrendsService {
        let mut events = vec![
            OutageEvent {
                id: 0,
                name: "big".into(),
                cause: Cause::IspNetwork(Provider::Verizon),
                start: Hour(200),
                duration_h: 10,
                states: vec![(State::TX, 0.25)],
                severity: 9_000.0,
                lags_h: vec![0],
            },
            OutageEvent {
                id: 1,
                name: "small".into(),
                cause: Cause::IspNetwork(Provider::Comcast),
                start: Hour(600),
                duration_h: 6,
                states: vec![(State::TX, 0.10)],
                severity: 9_000.0,
                lags_h: vec![0],
            },
        ];
        for (i, start) in (40..900).step_by(60).enumerate() {
            events.push(OutageEvent {
                id: 100 + i as u32,
                name: format!("anchor-{i}"),
                cause: Cause::IspNetwork(Provider::Frontier),
                start: Hour(start),
                duration_h: 2,
                states: vec![(State::TX, 0.015)],
                severity: 8_000.0,
                lags_h: vec![0],
            });
        }
        TrendsService::with_defaults(Scenario::single_region(State::TX, events))
    }

    fn weekly_frames(hours: i64) -> Vec<HourRange> {
        crate::plan::plan_frames(
            HourRange::new(Hour(0), Hour(hours)),
            crate::plan::PlanParams::default(),
        )
        .frames
    }

    #[test]
    fn averaging_converges_and_finds_events() {
        let service = service_with_events();
        let outcome = averaged_timeline(
            &service,
            &SearchTerm::parse("topic:Internet outage"),
            State::TX,
            &weekly_frames(900),
            &RefetchParams::default(),
            &DetectParams::default(),
        )
        .expect("averaging succeeds");

        assert!(outcome.rounds >= 2);
        assert!(
            outcome.converged,
            "similarity trace: {:?}",
            outcome.similarity_trace
        );
        // Both injected events are among the detected spikes.
        let has_peak_near = |h: i64| outcome.spikes.iter().any(|s| (s.peak - Hour(h)).abs() <= 6);
        assert!(has_peak_near(205), "spikes: {:?}", outcome.spikes);
        assert!(has_peak_near(603), "spikes: {:?}", outcome.spikes);
        assert_eq!(outcome.timeline.range().len(), 900);
        assert!(outcome.frames_fetched > 0);
        assert_eq!(outcome.frames_degraded, 0);
        assert!((outcome.coverage - 1.0).abs() < 1e-12);
    }

    /// A client that fails every `period`-th frame fetch (transport-style)
    /// once the first round has completed cleanly.
    struct FlakyAfterFirstRound {
        inner: TrendsService,
        round_len: usize,
        period: usize,
        calls: std::sync::atomic::AtomicUsize,
    }

    impl sift_trends::client::TrendsClient for FlakyAfterFirstRound {
        fn fetch_frame(
            &self,
            req: &sift_trends::FrameRequest,
        ) -> Result<sift_trends::FrameResponse, sift_trends::client::FetchError> {
            let call = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if call >= self.round_len && call % self.period == 0 {
                return Err(sift_trends::client::FetchError::Transport(
                    "injected reset".into(),
                ));
            }
            self.inner
                .fetch_frame(req)
                .map_err(sift_trends::client::FetchError::Service)
        }

        fn fetch_rising(
            &self,
            req: &sift_trends::RisingRequest,
        ) -> Result<sift_trends::RisingResponse, sift_trends::client::FetchError> {
            self.inner
                .fetch_rising(req)
                .map_err(sift_trends::client::FetchError::Service)
        }
    }

    #[test]
    fn fetch_failures_after_round_one_degrade_instead_of_aborting() {
        let frames = weekly_frames(900);
        let client = FlakyAfterFirstRound {
            inner: service_with_events(),
            round_len: frames.len(),
            period: 5,
            calls: std::sync::atomic::AtomicUsize::new(0),
        };
        let outcome = averaged_timeline(
            &client,
            &SearchTerm::parse("topic:Internet outage"),
            State::TX,
            &frames,
            &RefetchParams::default(),
            &DetectParams::default(),
        )
        .expect("degraded averaging still succeeds");
        assert!(outcome.frames_degraded > 0, "{outcome:?}");
        assert!(
            outcome.coverage < 1.0 && outcome.coverage > 0.5,
            "{outcome:?}"
        );
        // The injected events survive the degradation.
        let has_peak_near = |h: i64| outcome.spikes.iter().any(|s| (s.peak - Hour(h)).abs() <= 6);
        assert!(has_peak_near(205), "spikes: {:?}", outcome.spikes);
        assert_eq!(outcome.timeline.range().len(), 900);
    }

    /// A client that reports itself unhealthy (breaker open) once the
    /// first round's fetches have gone out.
    struct UnhealthyAfterFirstRound {
        inner: TrendsService,
        round_len: usize,
        calls: std::sync::atomic::AtomicUsize,
    }

    impl sift_trends::client::TrendsClient for UnhealthyAfterFirstRound {
        fn fetch_frame(
            &self,
            req: &sift_trends::FrameRequest,
        ) -> Result<sift_trends::FrameResponse, sift_trends::client::FetchError> {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.inner
                .fetch_frame(req)
                .map_err(sift_trends::client::FetchError::Service)
        }

        fn fetch_rising(
            &self,
            req: &sift_trends::RisingRequest,
        ) -> Result<sift_trends::RisingResponse, sift_trends::client::FetchError> {
            self.inner
                .fetch_rising(req)
                .map_err(sift_trends::client::FetchError::Service)
        }

        fn healthy(&self) -> bool {
            self.calls.load(std::sync::atomic::Ordering::SeqCst) < self.round_len
        }
    }

    #[test]
    fn unhealthy_client_halts_after_round_one_keeping_the_result() {
        let frames = weekly_frames(900);
        let client = UnhealthyAfterFirstRound {
            inner: service_with_events(),
            round_len: frames.len(),
            calls: std::sync::atomic::AtomicUsize::new(0),
        };
        let outcome = averaged_timeline(
            &client,
            &SearchTerm::parse("topic:Internet outage"),
            State::TX,
            &frames,
            &RefetchParams::default(),
            &DetectParams::default(),
        )
        .expect("halting is not an error");
        assert!(outcome.halted, "{outcome:?}");
        assert_eq!(outcome.rounds, 1, "only round one may run");
        assert!(!outcome.converged);
        // Round one's estimate survives the halt.
        assert_eq!(outcome.timeline.range().len(), 900);
        let has_peak_near = |h: i64| outcome.spikes.iter().any(|s| (s.peak - Hour(h)).abs() <= 6);
        assert!(has_peak_near(205), "spikes: {:?}", outcome.spikes);
    }

    #[test]
    fn healthy_client_never_halts() {
        let service = service_with_events();
        let outcome = averaged_timeline(
            &service,
            &SearchTerm::parse("topic:Internet outage"),
            State::TX,
            &weekly_frames(900),
            &RefetchParams::default(),
            &DetectParams::default(),
        )
        .expect("averaging succeeds");
        assert!(!outcome.halted);
    }

    #[test]
    fn round_one_failures_still_propagate() {
        // Fails from the very first call: there is no previous round to
        // degrade to, so the loop must surface the error.
        let frames = weekly_frames(900);
        let client = FlakyAfterFirstRound {
            inner: service_with_events(),
            round_len: 0,
            period: 1,
            calls: std::sync::atomic::AtomicUsize::new(0),
        };
        let err = averaged_timeline(
            &client,
            &SearchTerm::parse("topic:Internet outage"),
            State::TX,
            &frames,
            &RefetchParams::default(),
            &DetectParams::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RefetchError::Fetch(_)), "{err}");
    }

    #[test]
    fn averaging_suppresses_baseline_noise() {
        // One real event in an otherwise quiet world: the anonymity-
        // thresholded baseline noise (occasional counts of 2–3) must stay
        // far below the event once the series is globally calibrated.
        let mut events = vec![OutageEvent {
            id: 0,
            name: "main".into(),
            cause: Cause::IspNetwork(Provider::Verizon),
            start: Hour(400),
            duration_h: 8,
            states: vec![(State::TX, 0.25)],
            severity: 9_000.0,
            lags_h: vec![0],
        }];
        for (i, start) in (40..900).step_by(60).enumerate() {
            events.push(OutageEvent {
                id: 100 + i as u32,
                name: format!("anchor-{i}"),
                cause: Cause::IspNetwork(Provider::Frontier),
                start: Hour(start),
                duration_h: 2,
                states: vec![(State::TX, 0.015)],
                severity: 8_000.0,
                lags_h: vec![0],
            });
        }
        let service = TrendsService::with_defaults(Scenario::single_region(State::TX, events));
        let outcome = averaged_timeline(
            &service,
            &SearchTerm::parse("topic:Internet outage"),
            State::TX,
            &weekly_frames(900),
            &RefetchParams::default(),
            &DetectParams::default(),
        )
        .expect("averaging succeeds");
        let strong: Vec<_> = outcome
            .spikes
            .iter()
            .filter(|s| s.magnitude > 50.0)
            .collect();
        assert_eq!(strong.len(), 1, "spikes: {:?}", outcome.spikes);
        assert!(
            (strong[0].peak - Hour(403)).abs() <= 2,
            "peak {:?}",
            strong[0].peak
        );
        // Baseline texture may register as spikes (it does on the real
        // service too), but must stay an order of magnitude below the
        // event.
        let medium = outcome
            .spikes
            .iter()
            .filter(|s| s.magnitude > 12.0 && s.magnitude <= 50.0)
            .count();
        assert!(medium <= 3, "texture too strong: {:?}", outcome.spikes);
    }

    #[test]
    fn durable_loop_crashed_mid_round_resumes_to_the_identical_outcome() {
        use crate::durable::StudyDurability;
        use sift_journal::testutil::scratch_dir;
        use sift_journal::{CrashInjector, CrashPlan, CrashSite};
        use std::sync::Arc;

        let term = SearchTerm::parse("topic:Internet outage");
        let frames = weekly_frames(900);
        let clean = averaged_timeline(
            &service_with_events(),
            &term,
            State::TX,
            &frames,
            &RefetchParams::default(),
            &DetectParams::default(),
        )
        .expect("clean run");

        let dir = scratch_dir("refetch_durable");
        let inj = Arc::new(CrashInjector::new(
            CrashPlan::nowhere().at(CrashSite::MidJournalRecord, 9),
        ));
        let durability = StudyDurability::new(&dir).with_crash(inj);
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut j = durability.region(State::TX).expect("open");
            let _ = averaged_timeline_durable(
                &service_with_events(),
                &term,
                State::TX,
                &frames,
                &RefetchParams::default(),
                &DetectParams::default(),
                &mut j,
            );
        }))
        .is_err();
        assert!(crashed, "injected crash must fire");

        let mut j = StudyDurability::new(&dir)
            .region(State::TX)
            .expect("recover");
        let resumed = averaged_timeline_durable(
            &service_with_events(),
            &term,
            State::TX,
            &frames,
            &RefetchParams::default(),
            &DetectParams::default(),
            &mut j,
        )
        .expect("resumed run");

        assert!(resumed.frames_replayed > 0, "{resumed:?}");
        assert_eq!(resumed.timeline, clean.timeline);
        assert_eq!(resumed.spikes, clean.spikes);
        assert_eq!(resumed.rounds, clean.rounds);
        assert_eq!(resumed.converged, clean.converged);
        assert_eq!(
            resumed.frames_fetched, clean.frames_fetched,
            "replayed slots count toward the same logical workload"
        );
    }

    #[test]
    fn errors_propagate() {
        let service = service_with_events();
        // A frame over the service limit.
        let err = averaged_timeline(
            &service,
            &SearchTerm::parse("topic:Internet outage"),
            State::TX,
            &[HourRange::new(Hour(0), Hour(500))],
            &RefetchParams::default(),
            &DetectParams::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RefetchError::Fetch(_)), "{err}");
    }
}

//! Frame planning: partitioning a time range into overlapping weekly
//! frames.
//!
//! "SIFT partitions the selected time range into consecutive and
//! overlapping weekly time frames to construct an hourly extended time
//! series" (§3.1). The overlap is what lets the processing pipeline
//! recover the scaling ratio between adjacent, independently-normalized
//! frames.

use serde::{Deserialize, Serialize};
use sift_simtime::HourRange;

/// Planning parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanParams {
    /// Frame length in hours. The service caps hourly frames at 168.
    pub frame_len: u32,
    /// Hours between consecutive frame starts. `step < frame_len` yields
    /// an overlap of `frame_len - step` hours.
    pub step: u32,
}

impl Default for PlanParams {
    fn default() -> Self {
        // Half-week advance: 84 hours of overlap for robust ratio
        // estimation (see the stitching ablation in DESIGN.md).
        PlanParams {
            frame_len: 168,
            step: 84,
        }
    }
}

impl PlanParams {
    /// The overlap between consecutive frames, in hours.
    pub fn overlap(&self) -> u32 {
        self.frame_len - self.step
    }
}

/// The planned frames covering a range.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FramePlan {
    /// The parameters the plan was built with.
    pub params: PlanParams,
    /// Frame ranges, in chronological order.
    pub frames: Vec<HourRange>,
}

/// Plans consecutive overlapping frames covering `range`.
///
/// Every hour of `range` is covered by at least one frame; consecutive
/// frames overlap by `params.overlap()` hours except possibly the last,
/// which is anchored to the end of the range (keeping full length where
/// possible) so no partial, hard-to-stitch tail frame is produced.
///
/// # Panics
///
/// Panics if `params.step == 0` or `params.step >= params.frame_len` (no
/// overlap means no stitching) or if the range is shorter than one frame.
pub fn plan_frames(range: HourRange, params: PlanParams) -> FramePlan {
    assert!(params.step > 0, "step must be positive");
    assert!(
        params.step < params.frame_len,
        "step must leave an overlap (step {} >= frame {})",
        params.step,
        params.frame_len
    );
    assert!(
        range.len() >= i64::from(params.frame_len),
        "range of {}h is shorter than one {}h frame",
        range.len(),
        params.frame_len
    );

    let mut frames = Vec::new();
    let mut start = range.start;
    loop {
        let end = start + i64::from(params.frame_len);
        if end >= range.end {
            // Anchor the final frame to the end of the range.
            let last = HourRange::new(range.end - i64::from(params.frame_len), range.end);
            if frames.last() != Some(&last) {
                frames.push(last);
            }
            break;
        }
        frames.push(HourRange::new(start, end));
        start += i64::from(params.step);
    }
    FramePlan { params, frames }
}

impl FramePlan {
    /// Number of planned frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if the plan contains no frames (never produced by
    /// [`plan_frames`]).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_simtime::{Hour, STUDY_RANGE};

    #[test]
    fn covers_range_with_overlaps() {
        let range = HourRange::new(Hour(0), Hour(1000));
        let plan = plan_frames(range, PlanParams::default());
        // Full coverage.
        assert_eq!(plan.frames.first().unwrap().start, Hour(0));
        assert_eq!(plan.frames.last().unwrap().end, Hour(1000));
        // Each consecutive pair overlaps.
        for pair in plan.frames.windows(2) {
            let overlap = pair[0].intersect(&pair[1]).expect("frames overlap");
            assert!(!overlap.is_empty(), "consecutive frames must overlap");
            assert!(pair[1].start > pair[0].start, "strictly advancing");
        }
        // All frames are full length.
        for f in &plan.frames {
            assert_eq!(f.len(), 168);
        }
    }

    #[test]
    fn exact_fit_single_frame() {
        let range = HourRange::new(Hour(0), Hour(168));
        let plan = plan_frames(range, PlanParams::default());
        assert_eq!(plan.frames, vec![range]);
    }

    #[test]
    fn study_range_frame_count() {
        let plan = plan_frames(STUDY_RANGE, PlanParams::default());
        // 731 days: (17544 - 168) / 84 + 1 ≈ 207..209 frames.
        assert!(
            (205..=210).contains(&plan.len()),
            "got {} frames",
            plan.len()
        );
    }

    #[test]
    fn last_frame_anchored_without_duplicates() {
        // Range length chosen so the natural grid would land exactly on
        // the end.
        let range = HourRange::new(Hour(0), Hour(168 + 84));
        let plan = plan_frames(range, PlanParams::default());
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.frames[1], HourRange::new(Hour(84), Hour(252)));
        let mut dedup = plan.frames.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), plan.len());
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn zero_overlap_rejected() {
        let _ = plan_frames(
            HourRange::new(Hour(0), Hour(1000)),
            PlanParams {
                frame_len: 168,
                step: 168,
            },
        );
    }

    #[test]
    #[should_panic(expected = "shorter than one")]
    fn too_short_range_rejected() {
        let _ = plan_frames(HourRange::new(Hour(0), Hour(100)), PlanParams::default());
    }
}

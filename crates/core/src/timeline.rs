//! Time-series reconstruction: stitching piecewise-normalized frames.
//!
//! "SIFT reconstructs a continuous time series from piecewise time frames
//! by initially fetching consecutive and overlapping time frames. Then,
//! SIFT uses the intersecting regions to identify the scaling ratio
//! between the consecutive time frames. Finally, SIFT rescales the
//! right-adjacent time frame by this ratio and appends it sequentially to
//! the preceding time series" (§3.2).
//!
//! The scaling ratio is estimated as the ratio of sums over the overlap
//! (`r = Σs / Σf`, scaling the incoming frame `f` onto the running series
//! `s`). Because consecutive frames are *independent random samples* of
//! the same search population, their per-hour values rarely coincide in
//! quiet regions (anonymity rounding leaves sparse nonzero blocks), so
//! estimators that need pointwise agreement (least squares `Σs·f/Σf²`)
//! collapse; the ratio of sums only needs the overlap *expectations* to
//! match, which sampling guarantees. Frames whose overlap carries no
//! signal on either side inherit the previous frame's scale: with both
//! sides at zero, any ratio is consistent with the data and continuity is
//! the best prior.

use serde::{Deserialize, Serialize};
use sift_geo::State;
use sift_simtime::{Hour, HourRange};
use sift_trends::FrameResponse;
use std::fmt;

/// A continuous, globally-calibrated interest time series for one region,
/// renormalized to a 0–100 index over its full range.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// The region the series describes.
    pub state: State,
    /// Hour of `values[0]`.
    pub start: Hour,
    /// Hourly interest values on the global 0–100 scale.
    pub values: Vec<f64>,
}

/// Saturating `usize → i64` for lengths and indices: a series cannot
/// approach 2⁶³ hours, and saturation keeps the conversion total without
/// introducing a panic path.
pub(crate) fn to_i64(n: usize) -> i64 {
    i64::try_from(n).unwrap_or(i64::MAX)
}

impl Timeline {
    /// The covered hour range.
    pub fn range(&self) -> HourRange {
        HourRange::with_len(self.start, to_i64(self.values.len()))
    }

    /// The value at `at`, or `None` outside the range.
    pub fn value_at(&self, at: Hour) -> Option<f64> {
        if at < self.start {
            return None;
        }
        self.values
            .get(usize::try_from(at - self.start).ok()?)
            .copied()
    }

    /// Index of an hour within `values`, or `None` outside the range.
    pub fn index_of(&self, at: Hour) -> Option<usize> {
        if at < self.start || at >= self.start + to_i64(self.values.len()) {
            None
        } else {
            usize::try_from(at - self.start).ok()
        }
    }

    /// The hour of `values[idx]`.
    pub fn hour_of(&self, idx: usize) -> Hour {
        self.start + to_i64(idx)
    }

    /// Renormalizes the series so its maximum is 100 (no-op if all zero).
    pub fn renormalize(&mut self) {
        let max = self.values.iter().copied().fold(0.0f64, f64::max);
        if max > 0.0 {
            for v in &mut self.values {
                *v *= 100.0 / max;
            }
        }
    }

    /// Averages `other` into this timeline with weight `1/n` (running mean
    /// after `n` accumulated series). Ranges must match.
    pub fn accumulate_mean(&mut self, other: &Timeline, n: u32) {
        assert_eq!(self.range(), other.range(), "timeline ranges must match");
        assert!(n >= 1);
        let w = 1.0 / f64::from(n);
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += (b - *a) * w;
        }
    }
}

/// Why frames could not be stitched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StitchError {
    /// No frames were provided.
    NoFrames,
    /// Frames belong to different regions.
    MixedStates,
    /// Consecutive frames leave a gap: nothing to calibrate against.
    Gap {
        /// End of the covered series so far.
        covered_until: Hour,
        /// Start of the offending frame.
        next_start: Hour,
    },
    /// A frame adds no new hours (duplicate or out of order).
    NoProgress {
        /// Start of the offending frame.
        frame_start: Hour,
    },
    /// A streaming stitcher's retained overlap window is shorter than the
    /// overlap a frame requires (the frame reaches further back than the
    /// stitcher kept raw values for).
    OverlapExceedsWindow {
        /// Overlap hours the frame requires.
        overlap: i64,
        /// Raw hours the stitcher retained.
        window: i64,
    },
}

impl fmt::Display for StitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StitchError::NoFrames => write!(f, "no frames to stitch"),
            StitchError::MixedStates => write!(f, "frames from different regions"),
            StitchError::Gap {
                covered_until,
                next_start,
            } => write!(
                f,
                "gap between frames: covered until {covered_until}, next starts {next_start}"
            ),
            StitchError::NoProgress { frame_start } => {
                write!(f, "frame starting {frame_start} adds no new hours")
            }
            StitchError::OverlapExceedsWindow { overlap, window } => {
                write!(
                    f,
                    "frame needs {overlap}h of overlap but only {window}h were retained"
                )
            }
        }
    }
}

impl std::error::Error for StitchError {}

/// Stitches consecutive overlapping frames into one calibrated, 0–100
/// renormalized [`Timeline`].
///
/// Frames must be sorted by start (the fetcher's response store returns
/// them this way), cover each hour at least once, and each frame must
/// overlap the series built so far.
pub fn stitch(frames: &[&FrameResponse]) -> Result<Timeline, StitchError> {
    let first = *frames.first().ok_or(StitchError::NoFrames)?;
    let mut out = Timeline {
        state: first.state,
        start: first.start,
        values: Vec::new(),
    };
    stitch_core(frames, &mut out)?;
    Ok(out)
}

/// [`stitch`] into a caller-owned timeline: `out.values` is cleared and
/// refilled, keeping its capacity, so a loop stitching round after round
/// (the refetch averaging loop) allocates nothing after the first round.
/// Also takes the frames by value-slice, sparing callers the `Vec<&_>`
/// the reference-slice API forces per call.
pub fn stitch_into(frames: &[FrameResponse], out: &mut Timeline) -> Result<(), StitchError> {
    stitch_core(frames, out)
}

fn stitch_core<T: std::borrow::Borrow<FrameResponse>>(
    frames: &[T],
    out: &mut Timeline,
) -> Result<(), StitchError> {
    let first = frames.first().ok_or(StitchError::NoFrames)?.borrow();
    if frames.iter().any(|f| f.borrow().state != first.state) {
        return Err(StitchError::MixedStates);
    }

    let start = first.start;
    out.state = first.state;
    out.start = start;
    let values = &mut out.values;
    values.clear();
    values.extend(first.values.iter().map(|v| f64::from(*v)));
    // The scale applied to the previous frame, inherited when an overlap
    // carries no signal.
    let mut prev_scale = 1.0f64;

    for frame in &frames[1..] {
        let frame = frame.borrow();
        let covered_until = start + to_i64(values.len());
        if frame.start > covered_until {
            return Err(StitchError::Gap {
                covered_until,
                next_start: frame.start,
            });
        }
        let frame_end = frame.start + to_i64(frame.values.len());
        if frame_end <= covered_until {
            return Err(StitchError::NoProgress {
                frame_start: frame.start,
            });
        }

        // Overlap of the incoming frame with the series built so far
        // (nonnegative: the gap check above guarantees
        // `frame.start <= covered_until`).
        let overlap_len = usize::try_from(covered_until - frame.start).unwrap_or(0);
        let series_tail = &values[values.len() - overlap_len..];
        let frame_head = &frame.values[..overlap_len];

        let sum_series: f64 = series_tail.iter().sum();
        let sum_frame: f64 = frame_head.iter().map(|f| f64::from(*f)).sum();
        let scale = if sum_series > 0.0 && sum_frame > 0.0 {
            sum_series / sum_frame
        } else {
            // No usable signal in the overlap: keep the previous scale.
            prev_scale
        };
        prev_scale = scale;

        for v in &frame.values[overlap_len..] {
            values.push(f64::from(*v) * scale);
        }
    }

    out.renormalize();
    sift_obs::attr_add(
        "frames_stitched",
        u64::try_from(frames.len()).unwrap_or(u64::MAX),
    );
    Ok(())
}

/// Serializable state of a [`StreamStitcher`], for checkpointing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StitcherSnapshot {
    state: State,
    start: Hour,
    covered: i64,
    prev_scale: f64,
    keep: usize,
    tail: Vec<f64>,
    max_raw: f64,
}

/// Incrementally stitches frames as they arrive, producing the *raw*
/// calibrated series — the exact values `stitch` builds *before* its
/// final 0–100 renormalization.
///
/// Renormalization divides by the global maximum, which depends on data
/// that has not arrived yet; an online consumer that must never revise
/// what it already emitted therefore works on the raw series (anchored
/// to the first frame's scale) and renormalizes at read time if it needs
/// the batch presentation. Because the stitcher performs the same
/// floating-point operations in the same order as [`stitch`], the raw
/// stream is byte-identical to the batch series divided by its final
/// scale factor — multiplying the streamed values by `100 / max_raw()`
/// at end of stream reproduces the batch output bit for bit.
///
/// Only the last `keep` raw hours are retained (the widest overlap any
/// planned frame needs), so memory stays constant no matter how long the
/// daemon runs.
#[derive(Clone, Debug)]
pub struct StreamStitcher {
    state: State,
    start: Hour,
    /// Hours emitted so far.
    covered: i64,
    /// Scale applied to the previous frame, inherited on dead overlaps.
    prev_scale: f64,
    /// Maximum overlap supported; the retained tail is capped here.
    keep: usize,
    /// The last `keep` raw values of the series.
    tail: Vec<f64>,
    /// Running maximum of the raw series.
    max_raw: f64,
}

impl StreamStitcher {
    /// Creates a stitcher for a series beginning at `start`; the first
    /// appended frame must start exactly there. `keep` is the widest
    /// frame overlap the plan can produce (the planner's frame length
    /// covers every case).
    pub fn new(state: State, start: Hour, keep: usize) -> Self {
        StreamStitcher {
            state,
            start,
            covered: 0,
            prev_scale: 1.0,
            keep,
            tail: Vec::new(),
            max_raw: 0.0,
        }
    }

    /// Appends the next frame: `out_new` is cleared and refilled with the
    /// newly covered raw hours (frames arrive overlapping; only the
    /// non-overlapping suffix is new).
    pub fn append(
        &mut self,
        frame: &FrameResponse,
        out_new: &mut Vec<f64>,
    ) -> Result<(), StitchError> {
        out_new.clear();
        if frame.state != self.state {
            return Err(StitchError::MixedStates);
        }
        let covered_until = self.start + self.covered;
        if frame.start > covered_until {
            return Err(StitchError::Gap {
                covered_until,
                next_start: frame.start,
            });
        }
        let frame_end = frame.start + to_i64(frame.values.len());
        if frame_end <= covered_until {
            return Err(StitchError::NoProgress {
                frame_start: frame.start,
            });
        }
        let overlap = covered_until - frame.start;
        let overlap_len = usize::try_from(overlap).unwrap_or(0);
        if overlap_len > self.tail.len() {
            return Err(StitchError::OverlapExceedsWindow {
                overlap,
                window: to_i64(self.tail.len()),
            });
        }

        // Same estimator, same operation order as `stitch_core`: the sum
        // over the series tail ranges over raw values built by the very
        // same multiplications, so the ratio comes out bit-identical.
        let series_tail = &self.tail[self.tail.len() - overlap_len..];
        let frame_head = &frame.values[..overlap_len];
        let sum_series: f64 = series_tail.iter().sum();
        let sum_frame: f64 = frame_head.iter().map(|f| f64::from(*f)).sum();
        let scale = if sum_series > 0.0 && sum_frame > 0.0 {
            sum_series / sum_frame
        } else {
            self.prev_scale
        };
        self.prev_scale = scale;

        for v in &frame.values[overlap_len..] {
            let raw = f64::from(*v) * scale;
            self.max_raw = self.max_raw.max(raw);
            out_new.push(raw);
            self.tail.push(raw);
        }
        if self.tail.len() > self.keep {
            let excess = self.tail.len() - self.keep;
            self.tail.drain(..excess);
        }
        self.covered += to_i64(out_new.len());
        Ok(())
    }

    /// One past the last hour covered so far.
    pub fn covered_until(&self) -> Hour {
        self.start + self.covered
    }

    /// Hours covered so far.
    pub fn covered(&self) -> i64 {
        self.covered
    }

    /// Running maximum of the raw series (0 until any signal arrives).
    /// `100 / max_raw` is the factor batch renormalization would apply.
    pub fn max_raw(&self) -> f64 {
        self.max_raw
    }

    /// Captures the stitcher state for checkpointing.
    pub fn snapshot(&self) -> StitcherSnapshot {
        StitcherSnapshot {
            state: self.state,
            start: self.start,
            covered: self.covered,
            prev_scale: self.prev_scale,
            keep: self.keep,
            tail: self.tail.clone(),
            max_raw: self.max_raw,
        }
    }

    /// Rebuilds a stitcher from a checkpoint; continues byte-identically
    /// to the stitcher the snapshot was taken from.
    pub fn restore(snap: StitcherSnapshot) -> Self {
        StreamStitcher {
            state: snap.state,
            start: snap.start,
            covered: snap.covered,
            prev_scale: snap.prev_scale,
            keep: snap.keep,
            tail: snap.tail,
            max_raw: snap.max_raw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_trends::SearchTerm;

    fn term() -> SearchTerm {
        SearchTerm::parse("topic:Internet outage")
    }

    fn frame(state: State, start: i64, values: Vec<u8>) -> FrameResponse {
        FrameResponse {
            term: term(),
            state,
            start: Hour(start),
            values,
        }
    }

    /// Builds service-style frames from a known true series: each frame is
    /// independently scaled to its own maximum, like the real service.
    fn piecewise_frames(truth: &[f64], frame_len: usize, step: usize) -> Vec<FrameResponse> {
        let mut out = Vec::new();
        let mut start = 0usize;
        loop {
            let end = (start + frame_len).min(truth.len());
            let window = &truth[start..end];
            let max = window.iter().copied().fold(0.0f64, f64::max);
            let values: Vec<u8> = window
                .iter()
                .map(|v| {
                    if max <= 0.0 || *v <= 0.0 {
                        0
                    } else {
                        ((v * 100.0 / max).round() as u8).max(1)
                    }
                })
                .collect();
            out.push(frame(State::TX, start as i64, values));
            if end == truth.len() {
                break;
            }
            start += step;
        }
        out
    }

    #[test]
    fn recovers_relative_magnitudes_across_frames() {
        // Two spikes in different weeks: the piecewise indexing makes both
        // look like "100"; stitching must recover that the second is half
        // the first. The baseline sits at 10 so the service's integer
        // 0–100 quantization can still express the spike:baseline ratio.
        let mut truth = vec![10.0; 400];
        truth[50] = 200.0;
        truth[51] = 160.0;
        truth[300] = 100.0;
        truth[301] = 80.0;
        let frames = piecewise_frames(&truth, 168, 84);
        let refs: Vec<&FrameResponse> = frames.iter().collect();
        let tl = stitch(&refs).expect("stitch");

        let big = tl.values[50];
        let small = tl.values[300];
        assert!(
            (big - 100.0).abs() < 1.0,
            "biggest spike renormalizes to 100"
        );
        assert!(
            (small / big - 0.5).abs() < 0.1,
            "relative magnitude recovered: {small} vs {big}"
        );
    }

    #[test]
    fn output_covers_full_range() {
        let truth: Vec<f64> = (0..500).map(|i| 1.0 + (i % 37) as f64).collect();
        let frames = piecewise_frames(&truth, 168, 84);
        let refs: Vec<&FrameResponse> = frames.iter().collect();
        let tl = stitch(&refs).expect("stitch");
        assert_eq!(tl.values.len(), 500);
        assert_eq!(tl.start, Hour(0));
        assert_eq!(tl.range().len(), 500);
    }

    #[test]
    fn scale_invariance_of_result() {
        // Multiplying the true series by any constant must not change the
        // stitched, renormalized output (the service never reveals scale).
        let mut truth = vec![2.0; 300];
        truth[40] = 50.0;
        truth[200] = 30.0;
        let scaled: Vec<f64> = truth.iter().map(|v| v * 7.0).collect();
        let a = {
            let fs = piecewise_frames(&truth, 168, 84);
            let refs: Vec<&FrameResponse> = fs.iter().collect();
            stitch(&refs).expect("stitch")
        };
        let b = {
            let fs = piecewise_frames(&scaled, 168, 84);
            let refs: Vec<&FrameResponse> = fs.iter().collect();
            stitch(&refs).expect("stitch")
        };
        for (x, y) in a.values.iter().zip(b.values.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_overlap_inherits_scale() {
        // Middle frame's overlap with both neighbours is all zero; the
        // series must still come out continuous and finite.
        let mut truth = vec![0.0; 500];
        truth[10] = 50.0;
        truth[490] = 25.0;
        let frames = piecewise_frames(&truth, 168, 84);
        let refs: Vec<&FrameResponse> = frames.iter().collect();
        let tl = stitch(&refs).expect("stitch");
        assert!(tl.values.iter().all(|v| v.is_finite()));
        assert!((tl.values[10] - 100.0).abs() < 1.0);
        assert!(tl.values[490] > 0.0);
    }

    #[test]
    fn gap_is_an_error() {
        let frames = [
            frame(State::TX, 0, vec![10; 168]),
            frame(State::TX, 200, vec![10; 168]),
        ];
        let refs: Vec<&FrameResponse> = frames.iter().collect();
        match stitch(&refs) {
            Err(StitchError::Gap {
                covered_until,
                next_start,
            }) => {
                assert_eq!(covered_until, Hour(168));
                assert_eq!(next_start, Hour(200));
            }
            other => panic!("expected gap error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_frame_is_an_error() {
        let frames = [
            frame(State::TX, 0, vec![10; 168]),
            frame(State::TX, 0, vec![10; 168]),
        ];
        let refs: Vec<&FrameResponse> = frames.iter().collect();
        assert!(matches!(stitch(&refs), Err(StitchError::NoProgress { .. })));
    }

    #[test]
    fn mixed_states_is_an_error() {
        let frames = [
            frame(State::TX, 0, vec![10; 168]),
            frame(State::CA, 84, vec![10; 168]),
        ];
        let refs: Vec<&FrameResponse> = frames.iter().collect();
        assert_eq!(stitch(&refs), Err(StitchError::MixedStates));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(stitch(&[]), Err(StitchError::NoFrames));
    }

    #[test]
    fn single_frame_passes_through_renormalized() {
        let f = frame(State::TX, 10, vec![0, 25, 50]);
        let tl = stitch(&[&f]).expect("stitch");
        assert_eq!(tl.values, vec![0.0, 50.0, 100.0]);
        assert_eq!(tl.start, Hour(10));
        assert_eq!(tl.value_at(Hour(11)), Some(50.0));
        assert_eq!(tl.value_at(Hour(9)), None);
        assert_eq!(tl.value_at(Hour(13)), None);
        assert_eq!(tl.index_of(Hour(12)), Some(2));
        assert_eq!(tl.hour_of(2), Hour(12));
    }

    #[test]
    fn accumulate_mean_averages() {
        let f1 = frame(State::TX, 0, vec![100, 0]);
        let f2 = frame(State::TX, 0, vec![0, 100]);
        let mut a = stitch(&[&f1]).expect("stitch");
        let b = stitch(&[&f2]).expect("stitch");
        a.accumulate_mean(&b, 2);
        assert_eq!(a.values, vec![50.0, 50.0]);
    }

    /// Streams `frames` through a [`StreamStitcher`] (snapshotting and
    /// restoring after `cut` frames) and returns the raw series.
    fn stream(frames: &[FrameResponse], keep: usize, cut: usize) -> Vec<f64> {
        let mut st = StreamStitcher::new(frames[0].state, frames[0].start, keep);
        let mut raw = Vec::new();
        let mut new = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            if i == cut {
                st = StreamStitcher::restore(st.snapshot());
            }
            st.append(f, &mut new).expect("stream append");
            raw.extend_from_slice(&new);
        }
        assert_eq!(st.covered(), to_i64(raw.len()));
        raw
    }

    #[test]
    fn stream_matches_batch_bit_for_bit() {
        let mut truth = vec![10.0; 600];
        truth[50] = 200.0;
        truth[51] = 160.0;
        truth[300] = 100.0;
        truth[301] = 80.0;
        truth[560] = 55.0;
        let frames = piecewise_frames(&truth, 168, 84);
        let refs: Vec<&FrameResponse> = frames.iter().collect();
        let batch = stitch(&refs).expect("stitch");

        for cut in [0, 1, 3, frames.len()] {
            let raw = stream(&frames, 168, cut);
            assert_eq!(raw.len(), batch.values.len());
            // The raw stream is the batch series before renormalization:
            // applying the same final scale reproduces it exactly.
            let mut st = StreamStitcher::new(State::TX, Hour(0), 168);
            let mut new = Vec::new();
            for f in &frames {
                st.append(f, &mut new).expect("append");
            }
            let factor = 100.0 / st.max_raw();
            for (r, b) in raw.iter().zip(batch.values.iter()) {
                assert_eq!(r * factor, *b, "cut={cut}");
            }
        }
    }

    #[test]
    fn stream_keeps_bounded_tail() {
        let truth: Vec<f64> = (0..2000).map(|i| 1.0 + (i % 37) as f64).collect();
        let frames = piecewise_frames(&truth, 168, 84);
        let raw = stream(&frames, 168, 0);
        assert_eq!(raw.len(), truth.len());
    }

    #[test]
    fn stream_rejects_gap_and_no_progress() {
        let mut st = StreamStitcher::new(State::TX, Hour(0), 168);
        let mut new = Vec::new();
        st.append(&frame(State::TX, 0, vec![10; 168]), &mut new)
            .expect("first frame");
        assert!(matches!(
            st.append(&frame(State::TX, 200, vec![10; 168]), &mut new),
            Err(StitchError::Gap { .. })
        ));
        assert!(matches!(
            st.append(&frame(State::TX, 0, vec![10; 168]), &mut new),
            Err(StitchError::NoProgress { .. })
        ));
        assert!(matches!(
            st.append(&frame(State::CA, 84, vec![10; 168]), &mut new),
            Err(StitchError::MixedStates)
        ));
    }

    #[test]
    fn stream_rejects_overlap_beyond_window() {
        // keep=4 retains too little history for an 84-hour overlap.
        let mut st = StreamStitcher::new(State::TX, Hour(0), 4);
        let mut new = Vec::new();
        st.append(&frame(State::TX, 0, vec![10; 168]), &mut new)
            .expect("first frame");
        assert!(matches!(
            st.append(&frame(State::TX, 84, vec![10; 168]), &mut new),
            Err(StitchError::OverlapExceedsWindow { .. })
        ));
    }

    #[test]
    fn all_zero_series_stays_zero() {
        let f = frame(State::TX, 0, vec![0; 168]);
        let tl = stitch(&[&f]).expect("stitch");
        assert!(tl.values.iter().all(|v| v.abs() < f64::EPSILON));
    }
}

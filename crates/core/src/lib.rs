//! SIFT — the detection and analysis pipeline for user-affecting Internet
//! outages.
//!
//! This crate is the paper's primary contribution (§3): given access to a
//! trends aggregation service (anything implementing
//! [`sift_trends::TrendsClient`]), SIFT
//!
//! 1. **reconstructs** a continuous, globally-calibrated interest time
//!    series per region from piecewise-normalized, randomly-sampled weekly
//!    frames ([`timeline`]),
//! 2. **averages** repeated re-fetches until the detected spike set
//!    converges, taming the service's sampling error ([`refetch`]),
//! 3. **detects** spikes of user interest with a topographic-prominence
//!    walk and measures their start, peak, end, magnitude and duration
//!    ([`detect`]),
//! 4. **analyses** the spikes along the paper's three axes — impact
//!    ([`impact`]), area ([`area`]) and context ([`context`]) — annotating
//!    each spike with simultaneously-rising search terms, heavy-hitter
//!    prioritised and semantically clustered,
//! 5. and drives the whole study end to end ([`study`], [`report`]),
//!    crash-safely when asked ([`durable`]): responses are journaled
//!    write-ahead, rounds sealed with atomic checkpoints, and a killed
//!    study resumes where it died.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod context;
pub mod detect;
pub mod durable;
pub mod impact;
pub mod plan;
pub mod refetch;
pub mod report;
pub mod study;
pub mod timeline;

pub use area::{cluster_spikes, OutageCluster};
pub use context::{AnnotatedSpike, Annotation, ContextParams};
pub use detect::{detect_spikes, DetectParams, DetectorSnapshot, IncrementalDetector, Spike};
pub use durable::{RegionJournal, StudyDurability};
pub use plan::{plan_frames, FramePlan, PlanParams};
pub use refetch::{averaged_timeline_durable, RefetchError, RefetchOutcome, RefetchParams};
pub use study::{
    assemble_study, run_region_study, run_study, run_study_durable, RegionOutcome, StudyError,
    StudyParams, StudyResult, StudyStats,
};
pub use timeline::{stitch, StitchError, StitcherSnapshot, StreamStitcher, Timeline};

//! Area analysis: cross-state co-occurrence of spikes (§4.2).
//!
//! "SIFT analyzes the outage area by matching concurrent spikes from
//! distinct states." Spikes co-occurring with a common *anchor* spike form
//! an outage cluster; the cluster's state count is the paper's "number of
//! distinct states simultaneously observing a spike" (Fig. 5, Table 2).
//!
//! Clustering is anchor-based rather than transitive, and matches on
//! *peak proximity*: a spike joins the strongest anchor whose peak lies
//! within `slack_h` hours of its own. At the study's spike density
//! (several spikes peak somewhere in the country every hour), any looser
//! rule — window overlap, transitive chaining — would weld unrelated
//! regional outages into artifact clusters spanning dozens of states;
//! peak matching asks the paper's question: "spikes simultaneously
//! occurring ... for that particular time".

use crate::detect::Spike;
use serde::{Deserialize, Serialize};
use sift_geo::State;
use sift_simtime::{Hour, HourRange};
use std::collections::HashMap;

/// A group of spikes co-occurring in time across regions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OutageCluster {
    /// Member spikes, sorted by (start, state). Never empty.
    pub spikes: Vec<Spike>,
    /// Window of the anchor (strongest) spike.
    pub anchor_window: HourRange,
    /// The hull of all member windows.
    pub window: HourRange,
    /// Distinct regions spiking, sorted.
    pub states: Vec<State>,
}

impl OutageCluster {
    /// Number of distinct regions simultaneously spiking.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Hour of the earliest member peak.
    pub fn first_peak(&self) -> Hour {
        self.spikes
            .iter()
            .map(|s| s.peak)
            .min()
            .expect("clusters are never empty") // sift-lint: allow(no-panic) — `spikes` is non-empty by construction
    }

    /// The anchor spike: the member with the greatest magnitude.
    pub fn anchor(&self) -> &Spike {
        self.spikes
            .iter()
            .max_by(|a, b| {
                a.magnitude
                    .partial_cmp(&b.magnitude)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("clusters are never empty") // sift-lint: allow(no-panic) — `spikes` is non-empty by construction
    }

    /// Longest member duration in hours.
    pub fn max_duration_h(&self) -> i64 {
        self.spikes
            .iter()
            .map(|s| s.duration_h())
            .max()
            .expect("clusters are never empty") // sift-lint: allow(no-panic) — `spikes` is non-empty by construction
    }

    /// Per-state lag of the earliest peak in that state behind the
    /// cluster's first peak, in hours — the §4.2 lag analysis of the
    /// Facebook outage.
    pub fn peak_lags(&self) -> Vec<(State, i64)> {
        let first = self.first_peak();
        let mut earliest: std::collections::BTreeMap<State, Hour> =
            std::collections::BTreeMap::new();
        for s in &self.spikes {
            let e = earliest.entry(s.state).or_insert(s.peak);
            if s.peak < *e {
                *e = s.peak;
            }
        }
        earliest
            .into_iter()
            .map(|(state, peak)| (state, peak - first))
            .collect()
    }
}

/// Hours per bucket of the anchor time index.
const BUCKET_H: i64 = 48;

/// Groups spikes into co-occurrence clusters.
///
/// Spikes are visited strongest-first. Each spike joins the cluster of the
/// strongest anchor whose *peak* is within `slack_h` hours of its own;
/// otherwise it becomes a new anchor. Runs in roughly `O(n · c)` where
/// `c` is the local density of anchors (indexed by time bucket).
pub fn cluster_spikes(spikes: &[Spike], slack_h: i64) -> Vec<OutageCluster> {
    assert!(slack_h >= 0);
    let mut order: Vec<usize> = (0..spikes.len()).collect();
    order.sort_by(|&a, &b| {
        spikes[b]
            .magnitude
            .partial_cmp(&spikes[a].magnitude)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(spikes[a].start.cmp(&spikes[b].start))
            .then(spikes[a].state.index().cmp(&spikes[b].state.index()))
    });

    struct Anchor {
        window: HourRange, // pre-widened by slack
        members: Vec<usize>,
    }
    let mut anchors: Vec<Anchor> = Vec::new();
    let mut index: HashMap<i64, Vec<usize>> = HashMap::new();

    for idx in order {
        // Peaks within `slack_h` of the anchor's peak connect. The
        // anchor's stored interval is its peak widened by the slack, so
        // matching the member's *raw* peak point gives |Δpeak| <= slack.
        let peak = spikes[idx].peak;
        let w = HourRange::new(peak - slack_h, peak + slack_h + 1);
        let point = HourRange::new(peak, peak + 1);
        let lo = w.start.0.div_euclid(BUCKET_H);
        let hi = w.end.0.div_euclid(BUCKET_H);
        // Earliest-created matching anchor = strongest one, because
        // anchors are created in descending magnitude order.
        let mut best: Option<usize> = None;
        for b in lo..=hi {
            if let Some(list) = index.get(&b) {
                for &a in list {
                    if anchors[a].window.overlaps(&point) && best.map_or(true, |cur| a < cur) {
                        best = Some(a);
                    }
                }
            }
        }
        match best {
            Some(a) => anchors[a].members.push(idx),
            None => {
                let a = anchors.len();
                anchors.push(Anchor {
                    window: w,
                    members: vec![idx],
                });
                for b in lo..=hi {
                    index.entry(b).or_default().push(a);
                }
            }
        }
    }

    let mut clusters: Vec<OutageCluster> = anchors
        .into_iter()
        .map(|a| {
            let anchor_window = HourRange::new(a.window.start + slack_h, a.window.end - slack_h);
            let mut members: Vec<Spike> = a.members.iter().map(|&i| spikes[i]).collect();
            members.sort_by_key(|s| (s.start, s.state.index()));
            let window = members
                .iter()
                .map(|s| s.window())
                .reduce(|x, y| x.hull(&y))
                // sift-lint: allow(no-panic) — every anchor starts with one member
                .expect("non-empty");
            let mut states: Vec<State> = members.iter().map(|s| s.state).collect();
            states.sort_by_key(|s| s.index());
            states.dedup();
            OutageCluster {
                spikes: members,
                anchor_window,
                window,
                states,
            }
        })
        .collect();
    clusters.sort_by_key(|c| (c.window.start, c.window.end));
    clusters
}

/// Empirical CDF of cluster state-counts evaluated at `1..=max_states` —
/// the Fig. 5 curve. `cdf[k-1]` is the fraction of clusters touching at
/// most `k` states.
pub fn state_count_cdf(clusters: &[OutageCluster], max_states: usize) -> Vec<f64> {
    let mut counts = vec![0usize; max_states + 1];
    for c in clusters {
        counts[c.state_count().min(max_states)] += 1;
    }
    let total = clusters.len().max(1) as f64;
    let mut out = Vec::with_capacity(max_states);
    let mut acc = 0usize;
    for &count in &counts[1..] {
        acc += count;
        out.push(acc as f64 / total);
    }
    out
}

/// Fraction of clusters spanning at least `k` states (the paper: 11 %
/// include 10 or more states).
pub fn share_spanning_at_least(clusters: &[OutageCluster], k: usize) -> f64 {
    if clusters.is_empty() {
        return 0.0;
    }
    clusters.iter().filter(|c| c.state_count() >= k).count() as f64 / clusters.len() as f64
}

/// The `k` widest clusters by state count — the Table 2 ranking.
pub fn top_by_extent(clusters: &[OutageCluster], k: usize) -> Vec<&OutageCluster> {
    let mut refs: Vec<&OutageCluster> = clusters.iter().collect();
    refs.sort_by_key(|c| (std::cmp::Reverse(c.state_count()), c.window.start));
    refs.truncate(k);
    refs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spike(state: State, start: i64, dur: i64) -> Spike {
        spike_mag(state, start, dur, 50.0)
    }

    fn spike_mag(state: State, start: i64, dur: i64, mag: f64) -> Spike {
        Spike {
            state,
            start: Hour(start),
            peak: Hour(start + dur / 2),
            end: Hour(start + dur),
            magnitude: mag,
        }
    }

    #[test]
    fn same_hour_peaks_cluster() {
        let spikes = vec![
            spike(State::CA, 0, 5), // peak at 2
            spike(State::TX, 0, 5), // peak at 2
            spike(State::NY, 100, 5),
        ];
        let clusters = cluster_spikes(&spikes, 0);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].state_count(), 2);
        assert_eq!(clusters[0].states, vec![State::CA, State::TX]);
        assert_eq!(clusters[1].state_count(), 1);
        assert_eq!(clusters[0].window, HourRange::new(Hour(0), Hour(5)));
    }

    #[test]
    fn no_transitive_chaining_past_the_anchor() {
        // B peaks within slack of anchor A; C within slack of B but not
        // of A: C must not be welded into A's cluster through B.
        let spikes = vec![
            spike_mag(State::CA, 0, 4, 90.0), // peak 2, anchor
            spike_mag(State::TX, 1, 4, 50.0), // peak 3, joins CA at slack 1
            spike_mag(State::NY, 2, 4, 40.0), // peak 4, outside anchor's reach
        ];
        let clusters = cluster_spikes(&spikes, 1);
        assert_eq!(clusters.len(), 2);
        let big = clusters
            .iter()
            .find(|c| c.state_count() == 2)
            .expect("2-state");
        assert_eq!(big.states, vec![State::CA, State::TX]);
        assert_eq!(big.anchor().state, State::CA);
    }

    #[test]
    fn spikes_join_the_strongest_concurrent_anchor() {
        let spikes = vec![
            spike_mag(State::CA, 0, 10, 100.0), // peak 5
            spike_mag(State::NY, 0, 10, 90.0),  // peak 5, joins CA
            spike_mag(State::TX, 4, 2, 10.0),   // peak 5, joins CA too
        ];
        let clusters = cluster_spikes(&spikes, 0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].state_count(), 3);
        assert_eq!(clusters[0].anchor().state, State::CA);
    }

    #[test]
    fn slack_bridges_near_misses() {
        // Peaks at 2 and 3: apart at slack 0, together at slack 1.
        let spikes = vec![spike(State::CA, 0, 4), spike(State::TX, 1, 4)];
        assert_eq!(cluster_spikes(&spikes, 0).len(), 2);
        assert_eq!(cluster_spikes(&spikes, 1).len(), 1);
    }

    #[test]
    fn same_state_repeats_count_once() {
        let spikes = vec![
            spike_mag(State::CA, 0, 6, 80.0), // peak 3
            spike(State::CA, 2, 4),           // peak 4
            spike(State::TX, 3, 3),           // peak 4
        ];
        let clusters = cluster_spikes(&spikes, 1);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].state_count(), 2, "distinct states only");
        assert_eq!(clusters[0].spikes.len(), 3);
        assert_eq!(clusters[0].max_duration_h(), 6);
    }

    #[test]
    fn cdf_and_share() {
        let spikes = vec![
            // Cluster 1: 3 states (peaks 2, 2, 3).
            spike_mag(State::CA, 0, 5, 90.0),
            spike(State::TX, 1, 3),
            spike(State::NY, 2, 3),
            // Cluster 2: 1 state.
            spike(State::GA, 100, 5),
            // Cluster 3: 1 state.
            spike(State::FL, 200, 5),
        ];
        let clusters = cluster_spikes(&spikes, 1);
        assert_eq!(clusters.len(), 3);
        let cdf = state_count_cdf(&clusters, 5);
        assert!((cdf[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((cdf[2] - 1.0).abs() < 1e-12);
        assert!((share_spanning_at_least(&clusters, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!(share_spanning_at_least(&[], 2).abs() < 1e-12);
    }

    #[test]
    fn top_by_extent_ranks() {
        let spikes = vec![
            spike_mag(State::CA, 0, 5, 90.0),
            spike(State::TX, 1, 3),
            spike(State::GA, 100, 5),
        ];
        let clusters = cluster_spikes(&spikes, 1);
        let top = top_by_extent(&clusters, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].state_count(), 2);
    }

    #[test]
    fn peak_lags_relative_to_first() {
        let mut a = spike_mag(State::CA, 0, 6, 90.0);
        a.peak = Hour(2);
        let mut b = spike(State::TX, 1, 5);
        b.peak = Hour(5);
        let clusters = cluster_spikes(&[a, b], 3);
        assert_eq!(clusters.len(), 1);
        let lags = clusters[0].peak_lags();
        assert_eq!(lags, vec![(State::CA, 0), (State::TX, 3)]);
    }

    #[test]
    fn bucket_boundaries_do_not_split_matches() {
        // Peaks straddling a 48h bucket boundary must still match.
        let spikes = vec![
            spike_mag(State::CA, 44, 6, 90.0), // peak 47 (bucket 0)
            spike(State::TX, 47, 2),           // peak 48 (bucket 1)
        ];
        let clusters = cluster_spikes(&spikes, 1);
        assert_eq!(clusters.len(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(cluster_spikes(&[], 0).is_empty());
        assert_eq!(state_count_cdf(&[], 3), vec![0.0, 0.0, 0.0]);
    }
}

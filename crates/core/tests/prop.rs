//! Property tests: stitching and detection invariants.

use proptest::prelude::*;
use sift_core::detect::{detect_spikes, DetectParams};
use sift_core::timeline::{stitch, Timeline};
use sift_geo::State;
use sift_simtime::Hour;
use sift_trends::{FrameResponse, SearchTerm};

/// Service-style piecewise frames over a known true series.
fn piecewise_frames(truth: &[f64], frame_len: usize, step: usize) -> Vec<FrameResponse> {
    let mut out = Vec::new();
    let mut start = 0usize;
    loop {
        let end = (start + frame_len).min(truth.len());
        let window = &truth[start..end];
        let max = window.iter().copied().fold(0.0f64, f64::max);
        let values: Vec<u8> = window
            .iter()
            .map(|v| {
                if max <= 0.0 {
                    0
                } else {
                    (v * 100.0 / max).round() as u8
                }
            })
            .collect();
        out.push(FrameResponse {
            term: SearchTerm::parse("topic:Internet outage"),
            state: State::TX,
            start: Hour(start as i64),
            values,
        });
        if end == truth.len() {
            break;
        }
        start += step;
    }
    out
}

fn truth_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..50.0, 200..500)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stitching output covers the full range, is finite, non-negative
    /// and renormalized to a max of 100 (when any signal exists).
    #[test]
    fn stitch_output_well_formed(truth in truth_strategy()) {
        let frames = piecewise_frames(&truth, 168, 84);
        let refs: Vec<&FrameResponse> = frames.iter().collect();
        let tl = stitch(&refs).expect("stitch");
        prop_assert_eq!(tl.values.len(), truth.len());
        let max = tl.values.iter().copied().fold(0.0f64, f64::max);
        for v in &tl.values {
            prop_assert!(v.is_finite() && *v >= 0.0);
        }
        if truth.iter().any(|v| *v >= 0.5) {
            prop_assert!((max - 100.0).abs() < 1e-9, "max {}", max);
        }
    }

    /// Scaling the true series by any positive constant leaves the
    /// stitched, renormalized series unchanged (the service hides scale,
    /// SIFT must not depend on it).
    #[test]
    fn stitch_scale_invariant(truth in truth_strategy(), scale in 0.5f64..20.0) {
        let frames_a = piecewise_frames(&truth, 168, 84);
        let scaled: Vec<f64> = truth.iter().map(|v| v * scale).collect();
        let frames_b = piecewise_frames(&scaled, 168, 84);
        let a = stitch(&frames_a.iter().collect::<Vec<_>>()).expect("stitch");
        let b = stitch(&frames_b.iter().collect::<Vec<_>>()).expect("stitch");
        for (x, y) in a.values.iter().zip(b.values.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Detection invariants on arbitrary series: spikes are sorted,
    /// disjoint, within bounds, with start <= peak < end, and every peak
    /// clears the floor.
    #[test]
    fn detection_invariants(values in proptest::collection::vec(0.0f64..100.0, 0..600)) {
        let tl = Timeline {
            state: State::TX,
            start: Hour(0),
            values: values.clone(),
        };
        let params = DetectParams::default();
        let spikes = detect_spikes(&tl, &params);
        for s in &spikes {
            prop_assert!(s.start <= s.peak && s.peak < s.end);
            prop_assert!(s.start.0 >= 0);
            prop_assert!(s.end.0 <= values.len() as i64);
            prop_assert!(s.magnitude >= params.min_peak);
            // The reported magnitude really is the value at the peak.
            prop_assert!((s.magnitude - values[s.peak.0 as usize]).abs() < 1e-12);
        }
        for pair in spikes.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start, "spikes overlap");
        }
        // Every block above the floor is covered by some spike.
        for (i, v) in values.iter().enumerate() {
            if *v >= params.min_peak {
                let h = Hour(i as i64);
                prop_assert!(
                    spikes.iter().any(|s| s.window().contains(h)),
                    "uncovered above-floor block at {} (value {})",
                    i,
                    v
                );
            }
        }
    }

    /// Up-scaling a series never loses detections: the detection floors
    /// (`min_peak`, `walk_floor`) are absolute, so scaling values up can
    /// only extend walks and merge neighbours — every original peak must
    /// still be covered by some spike afterwards.
    #[test]
    fn upscaling_never_loses_peaks(values in proptest::collection::vec(0.0f64..100.0, 10..300)) {
        let params = DetectParams::default();
        let a = detect_spikes(
            &Timeline { state: State::TX, start: Hour(0), values: values.clone() },
            &params,
        );
        // Rescale so the max is exactly 100 (what renormalize does).
        let max = values.iter().copied().fold(0.0f64, f64::max);
        prop_assume!(max > params.min_peak && max <= 100.0);
        let scaled: Vec<f64> = values.iter().map(|v| v * 100.0 / max).collect();
        let b = detect_spikes(
            &Timeline { state: State::TX, start: Hour(0), values: scaled },
            &params,
        );
        for sa in &a {
            prop_assert!(
                b.iter().any(|sb| sb.window().contains(sa.peak)),
                "peak of {:?} uncovered after upscale",
                sa
            );
        }
        prop_assert!(b.len() <= values.len());
    }
}

//! Property tests: the online (incremental) pipeline is *byte-identical*
//! to the batch pipeline — for any series, any chunking of its arrival,
//! and any snapshot/restore (crash/recover) point.
//!
//! These are the equivalence proofs the serve daemon leans on: if they
//! hold, a daemon that crashed and recovered mid-ingest answers exactly
//! what a batch run over the same data would have answered.

use proptest::prelude::*;
use sift_core::detect::{detect_spikes, DetectParams};
use sift_core::timeline::{stitch, Timeline};
use sift_core::{IncrementalDetector, StreamStitcher};
use sift_geo::State;
use sift_simtime::Hour;
use sift_trends::{FrameResponse, SearchTerm};

/// Service-style piecewise frames over a known true series (same shape
/// as `prop.rs`): each frame independently renormalized to max 100.
fn piecewise_frames(truth: &[f64], frame_len: usize, step: usize) -> Vec<FrameResponse> {
    let mut out = Vec::new();
    let mut start = 0usize;
    loop {
        let end = (start + frame_len).min(truth.len());
        let window = &truth[start..end];
        let max = window.iter().copied().fold(0.0f64, f64::max);
        let values: Vec<u8> = window
            .iter()
            .map(|v| {
                if max <= 0.0 {
                    0
                } else {
                    (v * 100.0 / max).round() as u8
                }
            })
            .collect();
        out.push(FrameResponse {
            term: SearchTerm::parse("topic:Internet outage"),
            state: State::TX,
            start: Hour(start as i64),
            values,
        });
        if end == truth.len() {
            break;
        }
        start += step;
    }
    out
}

/// Feed `values` to an incremental detector in the given chunk sizes,
/// snapshotting and restoring (via the serialized checkpoint bytes, the
/// same medium the daemon persists) after every `restore_every`-th
/// chunk. Returns the full sealed spike set.
fn run_incremental(
    values: &[f64],
    chunks: &[usize],
    restore_every: usize,
) -> Vec<sift_core::Spike> {
    let params = DetectParams::default();
    let mut det = IncrementalDetector::new(State::TX, Hour(0), params);
    let mut out = Vec::new();
    let mut fed = 0usize;
    for (i, &chunk) in chunks.iter().enumerate() {
        if fed >= values.len() {
            break;
        }
        let end = (fed + chunk.max(1)).min(values.len());
        det.append(&values[fed..end], &mut out);
        fed = end;
        if restore_every > 0 && i % restore_every == 0 {
            // Crash here: round-trip the snapshot through its serialized
            // form, exactly like the daemon's checkpoint file.
            let json = serde_json::to_string(&det.snapshot()).expect("encode snapshot");
            let snap = serde_json::from_str(&json).expect("decode snapshot");
            det = IncrementalDetector::restore(snap);
        }
    }
    if fed < values.len() {
        det.append(&values[fed..], &mut out);
    }
    det.finish(&mut out);
    out
}

fn values_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, 20..400)
}

fn chunks_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..60, 10..100)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental detection over any chunking of the series, with
    /// serialized snapshot/restore at arbitrary points, yields the exact
    /// spike set batch detection computes — same count, same bounds,
    /// bit-identical magnitudes.
    #[test]
    fn incremental_detector_equals_batch(
        values in values_strategy(),
        chunks in chunks_strategy(),
        restore_every in 0usize..5,
    ) {
        let batch = detect_spikes(
            &Timeline { state: State::TX, start: Hour(0), values: values.clone() },
            &DetectParams::default(),
        );
        let online = run_incremental(&values, &chunks, restore_every);
        prop_assert_eq!(online, batch);
    }

    /// The streaming stitcher, fed the same frames one at a time with a
    /// serialized snapshot/restore after an arbitrary frame, reproduces
    /// the batch stitcher bit-for-bit modulo the final global
    /// renormalization factor (which needs future data and is therefore
    /// deferred by the daemon).
    #[test]
    fn stream_stitcher_equals_batch(
        truth in values_strategy(),
        cut in 0usize..16,
    ) {
        prop_assume!(truth.len() >= 168);
        let frames = piecewise_frames(&truth, 168, 84);
        let refs: Vec<&FrameResponse> = frames.iter().collect();
        let batch = stitch(&refs).expect("batch stitch");

        let mut st = StreamStitcher::new(State::TX, Hour(0), 168);
        let mut raw = Vec::new();
        let mut new_values = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            st.append(frame, &mut new_values).expect("stream stitch");
            raw.extend_from_slice(&new_values);
            if i == cut {
                let json = serde_json::to_string(&st.snapshot()).expect("encode snapshot");
                let snap = serde_json::from_str(&json).expect("decode snapshot");
                st = StreamStitcher::restore(snap);
            }
        }
        prop_assert_eq!(raw.len(), batch.values.len());
        let max_raw = st.max_raw();
        if max_raw > 0.0 {
            let scale = 100.0 / max_raw;
            for (r, b) in raw.iter().zip(batch.values.iter()) {
                // Exact equality: same f64 ops in the same order.
                prop_assert_eq!(r * scale, *b);
            }
        }
    }

    /// End-to-end online pipeline (stream-stitch then incremental detect
    /// on the raw series, rescaled at the end) finds spikes at the same
    /// positions as the batch pipeline run over the renormalized series
    /// whenever the first frame carries the global maximum (scale == 1
    /// up to renormalization). This is the regime the daemon's raw-scale
    /// detection is exact in; `stream_stitcher_equals_batch` covers the
    /// values themselves in every regime.
    #[test]
    fn online_pipeline_matches_batch_positions(
        truth in values_strategy(),
        chunks in chunks_strategy(),
    ) {
        prop_assume!(truth.len() >= 170);
        // Pin the global max into the first frame so raw scale == batch
        // scale after renormalization.
        let mut truth = truth;
        truth[10] = 100.0;
        let frames = piecewise_frames(&truth, 168, 84);
        let refs: Vec<&FrameResponse> = frames.iter().collect();
        let batch_tl = stitch(&refs).expect("batch stitch");
        let batch = detect_spikes(&batch_tl, &DetectParams::default());

        let mut st = StreamStitcher::new(State::TX, Hour(0), 168);
        let mut raw = Vec::new();
        let mut new_values = Vec::new();
        for frame in &frames {
            st.append(frame, &mut new_values).expect("stream stitch");
            raw.extend_from_slice(&new_values);
        }
        let scale = 100.0 / st.max_raw();
        let rescaled: Vec<f64> = raw.iter().map(|v| v * scale).collect();
        let online = run_incremental(&rescaled, &chunks, 3);
        prop_assert_eq!(online, batch);
    }
}

//! Greedy agglomerative clustering of search phrases.

use crate::vector::{cosine, Embedding};

/// A cluster of semantically similar phrases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cluster {
    /// Indices into the input slice, in input order. Never empty.
    pub members: Vec<usize>,
    /// Index of the representative member: the input with the highest
    /// weight (ties break towards the earlier input).
    pub representative: usize,
}

/// Clusters weighted phrases by cosine similarity of their embeddings.
///
/// Phrases are visited in descending weight order; each joins the first
/// existing cluster whose (weight-averaged, renormalized) centroid is at
/// least `threshold` similar, otherwise it founds a new cluster. Phrases
/// with zero embeddings (all stop words) each form singleton clusters —
/// there is nothing semantic to merge on.
///
/// Output clusters are ordered by their total member weight, descending,
/// which is the order the annotation ranking consumes them in.
pub fn cluster_phrases(phrases: &[(String, f64)], threshold: f32) -> Vec<Cluster> {
    struct Working {
        members: Vec<usize>,
        centroid: Embedding,
        mass: f32,
        total_weight: f64,
    }

    let embeddings: Vec<Embedding> = phrases
        .iter()
        .map(|(p, _)| Embedding::of_phrase(p))
        .collect();

    // Descending weight, stable on index, so heavier phrases seed clusters.
    let mut order: Vec<usize> = (0..phrases.len()).collect();
    order.sort_by(|&a, &b| {
        phrases[b]
            .1
            .partial_cmp(&phrases[a].1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut clusters: Vec<Working> = Vec::new();
    for idx in order {
        let emb = &embeddings[idx];
        let joined = if emb.is_zero() {
            None
        } else {
            clusters
                .iter_mut()
                .find(|c| c.mass > 0.0 && cosine(&c.centroid, emb) >= threshold)
        };
        match joined {
            Some(c) => {
                c.members.push(idx);
                c.total_weight += phrases[idx].1;
                c.centroid.accumulate(emb, 1.0);
                c.centroid.normalize();
                c.mass += 1.0;
            }
            None => {
                let mass = if emb.is_zero() { 0.0 } else { 1.0 };
                clusters.push(Working {
                    members: vec![idx],
                    centroid: emb.clone(),
                    mass,
                    total_weight: phrases[idx].1,
                });
            }
        }
    }

    clusters.sort_by(|a, b| {
        b.total_weight
            .partial_cmp(&a.total_weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.members[0].cmp(&b.members[0]))
    });

    clusters
        .into_iter()
        .map(|mut c| {
            let representative = *c
                .members
                .iter()
                .max_by(|&&a, &&b| {
                    phrases[a]
                        .1
                        .partial_cmp(&phrases[b].1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.cmp(&a))
                })
                // sift-lint: allow(no-panic) — union-find groups always hold at least one member
                .expect("clusters are never empty");
            c.members.sort_unstable();
            Cluster {
                members: c.members,
                representative,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SIMILARITY_THRESHOLD;

    fn phrases(items: &[(&str, f64)]) -> Vec<(String, f64)> {
        items.iter().map(|(s, w)| (s.to_string(), *w)).collect()
    }

    fn cluster_of(clusters: &[Cluster], idx: usize) -> &Cluster {
        clusters
            .iter()
            .find(|c| c.members.contains(&idx))
            .expect("every input must be in exactly one cluster")
    }

    #[test]
    fn paper_example_phrase_variants_merge() {
        let input = phrases(&[
            ("is verizon down", 76.0),
            ("verizon outage", 100.0),
            ("comcast outage", 90.0),
            ("verizon down", 50.0),
        ]);
        let clusters = cluster_phrases(&input, DEFAULT_SIMILARITY_THRESHOLD);
        let verizon = cluster_of(&clusters, 1);
        assert!(verizon.members.contains(&0));
        assert!(verizon.members.contains(&3));
        assert!(!verizon.members.contains(&2));
        assert_eq!(verizon.representative, 1, "highest weight represents");
    }

    #[test]
    fn partition_is_total_and_disjoint() {
        let input = phrases(&[
            ("spectrum internet outage", 100.0),
            ("internet down", 76.0),
            ("metro pcs outage", 242.0),
            ("san jose power outage", 90.0),
            ("power outage san jose", 10.0),
        ]);
        let clusters = cluster_phrases(&input, DEFAULT_SIMILARITY_THRESHOLD);
        let mut seen: Vec<usize> = clusters.iter().flat_map(|c| c.members.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // Word-order variants merge.
        let sj = cluster_of(&clusters, 3);
        assert!(sj.members.contains(&4));
    }

    #[test]
    fn clusters_ordered_by_total_weight() {
        let input = phrases(&[("xfinity outage", 10.0), ("att outage", 500.0)]);
        let clusters = cluster_phrases(&input, DEFAULT_SIMILARITY_THRESHOLD);
        assert_eq!(clusters[0].members, vec![1]);
        assert_eq!(clusters[1].members, vec![0]);
    }

    #[test]
    fn zero_embedding_phrases_are_singletons() {
        let input = phrases(&[("is my", 5.0), ("the a", 4.0), ("verizon", 3.0)]);
        let clusters = cluster_phrases(&input, DEFAULT_SIMILARITY_THRESHOLD);
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn empty_input_gives_no_clusters() {
        assert!(cluster_phrases(&[], DEFAULT_SIMILARITY_THRESHOLD).is_empty());
    }

    #[test]
    fn threshold_one_keeps_distinct_phrases_apart() {
        let input = phrases(&[("verizon outage", 1.0), ("verizon issues today", 1.0)]);
        let clusters = cluster_phrases(&input, 0.999);
        assert_eq!(clusters.len(), 2);
    }
}

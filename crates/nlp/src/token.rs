//! Phrase normalization and tokenization.

/// Stop words removed during tokenization. Deliberately short: search
/// phrases are already terse, and words like `down` or `not` carry outage
/// meaning and are handled by the lexicon instead.
const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "at", "for", "in", "is", "my", "of", "on", "the", "to", "why", "with",
];

/// Lower-cases a phrase and collapses every non-alphanumeric run into a
/// single space.
///
/// ```
/// assert_eq!(sift_nlp::normalize("Is  Verizon down?!"), "is verizon down");
/// ```
pub fn normalize(phrase: &str) -> String {
    let mut out = String::with_capacity(phrase.len());
    let mut pending_space = false;
    for ch in phrase.chars() {
        if ch.is_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            // Keep only alphanumerics from the lowercase expansion: 'İ'
            // (U+0130) lowers to "i\u{307}", and the combining mark would
            // read as a separator on a second pass, breaking idempotence.
            out.extend(ch.to_lowercase().filter(|c| c.is_alphanumeric()));
        } else {
            pending_space = true;
        }
    }
    out
}

/// Splits a phrase into normalized content tokens, dropping stop words.
///
/// ```
/// assert_eq!(sift_nlp::tokenize("Is my Verizon down?"), vec!["verizon", "down"]);
/// ```
pub fn tokenize(phrase: &str) -> Vec<String> {
    normalize(phrase)
        .split(' ')
        .filter(|w| !w.is_empty() && !STOP_WORDS.contains(w))
        .map(str::to_owned)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_is_idempotent() {
        for s in [
            "Is Verizon Down?",
            "san-jose POWER outage!!",
            "  a  b  ",
            "İnternet İSS",
        ] {
            let once = normalize(s);
            assert_eq!(normalize(&once), once);
        }
    }

    #[test]
    fn punctuation_and_case_folded() {
        assert_eq!(normalize("AT&T outage"), "at t outage");
        assert_eq!(normalize("T-Mobile"), "t mobile");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("???"), "");
    }

    #[test]
    fn stop_words_removed() {
        assert_eq!(
            tokenize("why is the internet down in San Jose"),
            vec!["internet", "down", "san", "jose"]
        );
        assert!(tokenize("is my of").is_empty());
    }

    #[test]
    fn unicode_survives() {
        assert_eq!(tokenize("Zürich outage"), vec!["zürich", "outage"]);
    }
}

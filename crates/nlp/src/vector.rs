//! Hashed word/character-n-gram phrase embeddings.

use crate::lexicon;
use crate::token::tokenize;

/// Dimensionality of phrase embeddings. 256 is plenty for the few-thousand
/// term vocabulary of outage search phrases while keeping hash collisions
/// rare.
pub const EMBEDDING_DIM: usize = 256;

/// Share of a token's mass carried by the whole-word feature; the rest is
/// spread over its character trigrams. Trigrams carry most of the mass so
/// misspellings ("verzion") stay measurably close to their intended entity
/// while distinct entities (few shared trigrams) stay apart.
const WORD_FEATURE_SHARE: f32 = 0.2;

/// A dense, L2-normalized phrase vector.
///
/// Built feature-hashing style: each token contributes a whole-word feature
/// plus character-trigram features, scaled by its lexicon weight; the
/// phrase vector is the sum, normalized to unit length. Deterministic
/// across runs and platforms (FNV-1a hashing).
#[derive(Clone, Debug, PartialEq)]
pub struct Embedding {
    values: [f32; EMBEDDING_DIM],
}

impl Embedding {
    /// The all-zero embedding (an empty phrase).
    pub fn zero() -> Self {
        Embedding {
            values: [0.0; EMBEDDING_DIM],
        }
    }

    /// Embeds a raw search phrase.
    pub fn of_phrase(phrase: &str) -> Self {
        let tokens = tokenize(phrase);
        let mut e = Embedding::zero();
        for t in &tokens {
            let canon = lexicon::canonical(t);
            let w = lexicon::weight(canon);
            e.add_feature(&format!("w:{canon}"), w * WORD_FEATURE_SHARE);
            let grams = trigrams(canon);
            if !grams.is_empty() {
                // sift-lint: allow(lossy-cast) — trigram counts are tiny; f32 holds them exactly
                let per = w * (1.0 - WORD_FEATURE_SHARE) / grams.len() as f32;
                for g in grams {
                    e.add_feature(&format!("g:{g}"), per);
                }
            }
        }
        e.normalize();
        e
    }

    /// True if the embedding has no mass (empty or all-stop-word phrase).
    pub fn is_zero(&self) -> bool {
        // sift-lint: allow(float-eq) — an untouched embedding is exactly zero; no arithmetic error to tolerate
        self.values.iter().all(|v| *v == 0.0)
    }

    /// Adds `other` into `self`, scaled by `scale` (for centroids).
    pub fn accumulate(&mut self, other: &Embedding, scale: f32) {
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += b * scale;
        }
    }

    /// Rescales the vector to unit L2 norm (no-op for the zero vector).
    pub fn normalize(&mut self) {
        let norm = self.values.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in &mut self.values {
                *v /= norm;
            }
        }
    }

    fn add_feature(&mut self, feature: &str, weight: f32) {
        let h = fnv1a(feature.as_bytes());
        let idx = (h % EMBEDDING_DIM as u64) as usize;
        // A second hash bit gives features signs, which keeps unrelated
        // collisions from systematically inflating similarity.
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        self.values[idx] += sign * weight;
    }
}

/// Cosine similarity of two embeddings, in `[-1, 1]` (0 if either is zero).
pub fn cosine(a: &Embedding, b: &Embedding) -> f32 {
    let dot: f32 = a
        .values
        .iter()
        .zip(b.values.iter())
        .map(|(x, y)| x * y)
        .sum();
    let na: f32 = a.values.iter().map(|v| v * v).sum::<f32>().sqrt();
    let nb: f32 = b.values.iter().map(|v| v * v).sum::<f32>().sqrt();
    if na <= 0.0 || nb <= 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Character trigrams of a token, with boundary markers (`^tx`, `xt$`).
fn trigrams(token: &str) -> Vec<String> {
    let padded: Vec<char> = std::iter::once('^')
        .chain(token.chars())
        .chain(std::iter::once('$'))
        .collect();
    if padded.len() < 3 {
        return Vec::new();
    }
    padded.windows(3).map(|w| w.iter().collect()).collect()
}

/// FNV-1a 64-bit hash: small, deterministic, good avalanche for short keys.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_is_deterministic() {
        let a = Embedding::of_phrase("spectrum internet outage");
        let b = Embedding::of_phrase("spectrum internet outage");
        assert_eq!(a, b);
    }

    #[test]
    fn unit_norm_for_nonempty() {
        let e = Embedding::of_phrase("verizon outage");
        let norm: f32 = e.values.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5, "norm {norm}");
    }

    #[test]
    fn empty_phrase_is_zero() {
        assert!(Embedding::of_phrase("").is_zero());
        assert!(Embedding::of_phrase("is my the").is_zero());
        assert!(cosine(&Embedding::zero(), &Embedding::zero()).abs() < 1e-12);
    }

    #[test]
    fn self_similarity_is_one() {
        let e = Embedding::of_phrase("xfinity down");
        assert!((cosine(&e, &e) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn misspellings_stay_close() {
        let a = Embedding::of_phrase("verizon outage");
        let misspelled = Embedding::of_phrase("verzion outage");
        let other_entity = Embedding::of_phrase("comcast outage");
        let sim_misspelled = cosine(&a, &misspelled);
        let sim_other = cosine(&a, &other_entity);
        assert!(
            sim_misspelled > 0.3,
            "misspelling similarity {sim_misspelled}"
        );
        assert!(
            sim_misspelled > sim_other + 0.1,
            "misspelling ({sim_misspelled}) must beat a different entity ({sim_other})"
        );
    }

    #[test]
    fn word_order_is_ignored() {
        let a = Embedding::of_phrase("outage spectrum");
        let b = Embedding::of_phrase("spectrum outage");
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn trigram_boundaries() {
        assert_eq!(trigrams("tx"), vec!["^tx", "tx$"]);
        assert!(trigrams("a").len() == 1);
        assert!(trigrams("").is_empty());
    }

    #[test]
    fn unrelated_phrases_are_distant() {
        let a = Embedding::of_phrase("san jose power outage");
        let b = Embedding::of_phrase("youtube down");
        assert!(cosine(&a, &b) < 0.5);
    }
}

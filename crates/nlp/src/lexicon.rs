//! Domain lexicon: canonical forms and weights for outage vocabulary.
//!
//! The semantic clustering needs `is verizon down` to match
//! `verizon outage` without matching `comcast outage`. Two mechanisms
//! achieve this:
//!
//! 1. **Canonicalisation** — outage synonyms map to the single canonical
//!    token `outage` before embedding, so phrasing differences vanish.
//! 2. **Weighting** — generic domain words (`outage`, `internet`,
//!    `service`, …) carry little weight, leaving entity tokens (provider
//!    names, place names — anything *not* in the lexicon) to dominate the
//!    phrase vector.

/// Weight of a generic domain token relative to an entity token.
pub const GENERIC_WEIGHT: f32 = 0.25;

/// Weight of an entity (out-of-lexicon) token.
pub const ENTITY_WEIGHT: f32 = 1.0;

/// Synonyms of "outage" in user search phrasing.
const OUTAGE_SYNONYMS: &[&str] = &[
    "down",
    "offline",
    "broken",
    "out",
    "issues",
    "issue",
    "problems",
    "problem",
    "error",
    "errors",
    "slow",
    "working",
    "outages",
    "outage",
    "disruption",
    "interruption",
];

/// Generic domain words that should not dominate similarity.
const GENERIC_WORDS: &[&str] = &[
    "internet",
    "service",
    "network",
    "wifi",
    "phone",
    "cell",
    "cellular",
    "connection",
    "web",
    "app",
    "website",
    "site",
    "today",
    "now",
    "near",
    "me",
    "not",
    "no",
    "cant",
    "connect",
    "report",
    "map",
    "status",
    "check",
];

/// Canonical form of a normalized token: outage synonyms collapse to
/// `outage`; everything else is unchanged.
pub fn canonical(token: &str) -> &str {
    if OUTAGE_SYNONYMS.contains(&token) {
        "outage"
    } else {
        token
    }
}

/// Embedding weight of a canonical token: generic vocabulary is
/// down-weighted so entities dominate.
pub fn weight(canonical_token: &str) -> f32 {
    if canonical_token == "outage" || GENERIC_WORDS.contains(&canonical_token) {
        GENERIC_WEIGHT
    } else {
        ENTITY_WEIGHT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synonyms_collapse() {
        assert_eq!(canonical("down"), "outage");
        assert_eq!(canonical("offline"), "outage");
        assert_eq!(canonical("outage"), "outage");
        assert_eq!(canonical("verizon"), "verizon");
    }

    #[test]
    fn entities_outweigh_generics() {
        assert_eq!(weight("verizon"), ENTITY_WEIGHT);
        assert_eq!(weight("outage"), GENERIC_WEIGHT);
        assert_eq!(weight("internet"), GENERIC_WEIGHT);
        assert!(weight(canonical("down")) < ENTITY_WEIGHT);
    }
}

//! Mini word-vector NLP substrate for clustering search phrases.
//!
//! SIFT's context analysis "applies a natural language processing library
//! with pre-trained word vectors to cluster semantically similar phrases
//! such as `<is Verizon down>` and `<Verizon outage>`" (§3.4). Pre-trained
//! vector models are not available offline, so this crate implements the
//! closest deterministic equivalent:
//!
//! * [`normalize`]/[`tokenize`] — lower-casing, punctuation stripping and
//!   stop-word removal for search phrases,
//! * a domain [`lexicon`] canonicalising outage vocabulary (`down`,
//!   `offline`, `not working` → `outage`) and down-weighting generic terms
//!   so that *entities* (provider names, place names) dominate similarity,
//! * [`Embedding`] — fixed-dimension phrase vectors built from hashed word
//!   and character-n-gram features (n-grams give robustness to
//!   misspellings, which Google's search *topics* also absorb),
//! * [`cosine`] similarity and greedy agglomerative [`cluster`]ing.
//!
//! The interface is what a pre-trained-vector backend would expose, so the
//! substitution is contained here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod lexicon;
pub mod token;
pub mod vector;

pub use cluster::{cluster_phrases, Cluster};
pub use token::{normalize, tokenize};
pub use vector::{cosine, Embedding, EMBEDDING_DIM};

/// Default cosine-similarity threshold above which two phrases are
/// considered the same search intent. Chosen so `is verizon down` ≈
/// `verizon outage` while `verizon outage` ≉ `comcast outage`.
pub const DEFAULT_SIMILARITY_THRESHOLD: f32 = 0.60;

/// Convenience: cosine similarity of two raw phrases.
pub fn phrase_similarity(a: &str, b: &str) -> f32 {
    cosine(&Embedding::of_phrase(a), &Embedding::of_phrase(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_clusters_together() {
        let sim = phrase_similarity("is Verizon down", "Verizon outage");
        assert!(sim > DEFAULT_SIMILARITY_THRESHOLD, "similarity {sim}");
    }

    #[test]
    fn different_entities_stay_apart() {
        let sim = phrase_similarity("Verizon outage", "Comcast outage");
        assert!(sim < DEFAULT_SIMILARITY_THRESHOLD, "similarity {sim}");
    }
}

//! Property tests: normalization, embeddings and clustering invariants.

use proptest::prelude::*;
use sift_nlp::{cluster_phrases, cosine, normalize, Embedding, DEFAULT_SIMILARITY_THRESHOLD};

fn phrase_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z]{1,8}", 1..5).prop_map(|ws| ws.join(" "))
}

proptest! {
    /// Normalization is idempotent for arbitrary unicode input.
    #[test]
    fn normalize_idempotent(s in "\\PC{0,40}") {
        let once = normalize(&s);
        prop_assert_eq!(normalize(&once), once);
    }

    /// Self-similarity of any non-degenerate phrase is 1.
    #[test]
    fn self_similarity(p in phrase_strategy()) {
        let e = Embedding::of_phrase(&p);
        if !e.is_zero() {
            let sim = cosine(&e, &e);
            prop_assert!((sim - 1.0).abs() < 1e-4, "sim {}", sim);
        }
    }

    /// Cosine similarity is symmetric and bounded.
    #[test]
    fn cosine_symmetric_bounded(a in phrase_strategy(), b in phrase_strategy()) {
        let ea = Embedding::of_phrase(&a);
        let eb = Embedding::of_phrase(&b);
        let ab = cosine(&ea, &eb);
        let ba = cosine(&eb, &ea);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((-1.0..=1.0).contains(&ab));
    }

    /// Clustering partitions the input: every index appears exactly once,
    /// every representative is a member of its own cluster.
    #[test]
    fn clustering_is_a_partition(
        phrases in proptest::collection::vec((phrase_strategy(), 0.0f64..1000.0), 0..25)
    ) {
        let clusters = cluster_phrases(&phrases, DEFAULT_SIMILARITY_THRESHOLD);
        let mut seen: Vec<usize> = clusters.iter().flat_map(|c| c.members.clone()).collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..phrases.len()).collect();
        prop_assert_eq!(seen, expected);
        for c in &clusters {
            prop_assert!(c.members.contains(&c.representative));
        }
    }

    /// Duplicated phrases always land in the same cluster.
    #[test]
    fn duplicates_cluster_together(p in phrase_strategy(), w1 in 1.0f64..100.0, w2 in 1.0f64..100.0) {
        let e = Embedding::of_phrase(&p);
        prop_assume!(!e.is_zero());
        let phrases = vec![(p.clone(), w1), (p, w2)];
        let clusters = cluster_phrases(&phrases, DEFAULT_SIMILARITY_THRESHOLD);
        prop_assert_eq!(clusters.len(), 1);
        prop_assert_eq!(clusters[0].members.len(), 2);
    }
}

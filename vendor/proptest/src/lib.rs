//! Offline shim of `proptest`: deterministic random testing without
//! shrinking.
//!
//! Vendored because the build container has no crates.io access (see
//! `vendor/README.md`). The API subset matches what this workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`, range and
//! regex-literal strategies, `collection::vec`, tuples, `Just`, `any`,
//! `prop_oneof!`, and the `proptest!`/`prop_assert*` macros. Each test
//! runs `cases` deterministic iterations seeded from the test name; on
//! failure the generated inputs are printed, but no shrinking is
//! attempted — the failing values are reported as-is.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test execution: config, RNG, and the case loop.

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure: fails the whole test.
        Fail(String),
        /// `prop_assume!` rejection: the case is skipped.
        Reject,
    }

    impl TestCaseError {
        /// An assertion failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic generator: splitmix64.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary value.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Next 32 bits.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runs one property test: `cases` deterministic iterations of `f`.
    pub fn run<F>(name: &str, config: &Config, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // Stable seed derived from the test name (FNV-1a) so failures
        // reproduce across runs without an external seed file.
        let mut seed = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
        }
        let mut passed = 0u32;
        let mut case = 0u64;
        // Allow a bounded number of prop_assume! rejections, as the real
        // crate does, rather than counting them as passes.
        let max_attempts = config.cases as u64 * 16;
        while passed < config.cases && case < max_attempts {
            let mut rng = TestRng::new(seed ^ case.wrapping_mul(0x9E3779B97F4A7C15));
            case += 1;
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case failed for `{name}` \
                         (case {case} of {}): {msg}",
                        config.cases
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// A boxed strategy, used by `prop_oneof!` to mix strategy types.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Boxes a strategy (helper for `prop_oneof!` type unification).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds from a non-empty list of options.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            // Guard against rounding up to the excluded endpoint.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),* $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Any valid scalar value, rejection-sampled.
            loop {
                if let Some(c) = char::from_u32(rng.next_u32() & 0x10FFFF) {
                    return c;
                }
            }
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy over the full domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Vec`s with lengths drawn from `sizes` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty size range");
        VecStrategy { element, sizes }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start) as u64;
            let len = self.sizes.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! Regex-literal string strategies: `"[a-z]{1,8}"` as a `Strategy`.
    //!
    //! Supports the subset of proptest's regex syntax this workspace
    //! uses: literal characters, character classes with ranges, negation
    //! (`[^…]`) and `&&`-intersection, the `\PC` / `\pC` unicode-category
    //! escapes, and `{m}` / `{m,n}` repetition.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A set of chars as inclusive ranges.
    #[derive(Clone, Debug)]
    struct CharSet {
        ranges: Vec<(u32, u32)>,
    }

    impl CharSet {
        fn from_ranges(ranges: Vec<(u32, u32)>) -> CharSet {
            CharSet { ranges }
        }

        /// All printable non-category-C chars the shim draws `\PC` from:
        /// a representative spread rather than the full unicode table.
        fn not_control() -> CharSet {
            CharSet::from_ranges(vec![
                (0x20, 0x7E),       // ASCII printable
                (0xA1, 0xFF),       // Latin-1 supplement (printables)
                (0x100, 0x17F),     // Latin extended-A
                (0x391, 0x3C9),     // Greek
                (0x410, 0x44F),     // Cyrillic
                (0x4E00, 0x4EFF),   // CJK (slice)
                (0x1F600, 0x1F64F), // emoticons
            ])
        }

        /// Removes every char of `other` from `self`.
        fn subtract(&mut self, other: &CharSet) {
            let mut out = Vec::new();
            for &(lo, hi) in &self.ranges {
                let mut pieces = vec![(lo, hi)];
                for &(olo, ohi) in &other.ranges {
                    let mut next = Vec::new();
                    for (plo, phi) in pieces {
                        if ohi < plo || olo > phi {
                            next.push((plo, phi));
                        } else {
                            if olo > plo {
                                next.push((plo, olo - 1));
                            }
                            if ohi < phi {
                                next.push((ohi + 1, phi));
                            }
                        }
                    }
                    pieces = next;
                }
                out.extend(pieces);
            }
            self.ranges = out;
        }

        fn size(&self) -> u64 {
            self.ranges
                .iter()
                .map(|&(lo, hi)| (hi - lo + 1) as u64)
                .sum()
        }

        fn sample(&self, rng: &mut TestRng) -> char {
            let total = self.size();
            assert!(total > 0, "empty character class in regex strategy");
            loop {
                let mut idx = rng.below(total);
                for &(lo, hi) in &self.ranges {
                    let span = (hi - lo + 1) as u64;
                    if idx < span {
                        if let Some(c) = char::from_u32(lo + idx as u32) {
                            return c;
                        }
                        // Surrogate gap etc.: resample.
                        break;
                    }
                    idx -= span;
                }
            }
        }
    }

    struct PatternPart {
        set: CharSet,
        min: usize,
        max: usize,
    }

    /// The strategy a regex string literal compiles into.
    pub struct RegexStrategy {
        parts: Vec<PatternPart>,
    }

    fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> CharSet {
        match chars.next().expect("dangling backslash in regex strategy") {
            'n' => CharSet::from_ranges(vec![(0x0A, 0x0A)]),
            'r' => CharSet::from_ranges(vec![(0x0D, 0x0D)]),
            't' => CharSet::from_ranges(vec![(0x09, 0x09)]),
            'P' | 'p' => {
                // Only the category-C forms appear in this workspace:
                // \PC (not-control) and \pC (control).
                let cat = match chars.next() {
                    Some('{') => {
                        let mut name = String::new();
                        for c in chars.by_ref() {
                            if c == '}' {
                                break;
                            }
                            name.push(c);
                        }
                        name
                    }
                    Some(c) => c.to_string(),
                    None => panic!("truncated \\P escape in regex strategy"),
                };
                assert_eq!(cat, "C", "only category C supported in \\P escapes");
                CharSet::not_control()
            }
            c => CharSet::from_ranges(vec![(c as u32, c as u32)]),
        }
    }

    /// Parses `[…]` after the opening bracket, handling `^`, ranges,
    /// escapes, and `&&`-intersection with a nested class.
    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> CharSet {
        let negated = chars.peek() == Some(&'^') && {
            chars.next();
            true
        };
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        let mut subtract: Vec<CharSet> = Vec::new();
        while let Some(c) = chars.next() {
            match c {
                ']' => {
                    let mut set = if negated {
                        let mut full = CharSet::not_control();
                        // Negation inside a class: complement within the
                        // printable universe plus the named chars.
                        full.ranges.push((0x00, 0x1F));
                        full.subtract(&CharSet::from_ranges(ranges));
                        full
                    } else {
                        CharSet::from_ranges(ranges)
                    };
                    for s in &subtract {
                        // `&&[^X]` intersection = subtract X.
                        set.subtract(s);
                    }
                    return set;
                }
                '&' if chars.peek() == Some(&'&') => {
                    chars.next();
                    assert_eq!(
                        chars.next(),
                        Some('['),
                        "only [..&&[^..]] intersections are supported"
                    );
                    assert_eq!(
                        chars.next(),
                        Some('^'),
                        "only negated intersection classes are supported"
                    );
                    let mut inner: Vec<(u32, u32)> = Vec::new();
                    loop {
                        match chars.next() {
                            Some(']') => break,
                            Some('\\') => {
                                inner.extend(parse_escape(chars).ranges);
                            }
                            Some(c) => inner.push((c as u32, c as u32)),
                            None => panic!("unterminated intersection class"),
                        }
                    }
                    subtract.push(CharSet::from_ranges(inner));
                }
                '\\' => {
                    ranges.extend(parse_escape(chars).ranges);
                }
                lo => {
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.peek() {
                            Some(&']') | None => {
                                // Trailing '-' is a literal.
                                ranges.push((lo as u32, lo as u32));
                                ranges.push(('-' as u32, '-' as u32));
                            }
                            Some(&hi) => {
                                chars.next();
                                ranges.push((lo as u32, hi as u32));
                            }
                        }
                    } else {
                        ranges.push((lo as u32, lo as u32));
                    }
                }
            }
        }
        panic!("unterminated character class in regex strategy");
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            spec.push(c);
        }
        match spec.split_once(',') {
            Some((m, n)) => (
                m.trim().parse().expect("bad quantifier"),
                n.trim().parse().expect("bad quantifier"),
            ),
            None => {
                let n = spec.trim().parse().expect("bad quantifier");
                (n, n)
            }
        }
    }

    /// Compiles the regex subset into a strategy. Panics on syntax this
    /// shim does not support, so unsupported patterns fail loudly.
    pub fn compile(pattern: &str) -> RegexStrategy {
        let mut chars = pattern.chars().peekable();
        let mut parts = Vec::new();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars),
                '\\' => parse_escape(&mut chars),
                '.' => CharSet::not_control(),
                '(' | ')' | '|' | '*' | '+' | '?' => {
                    panic!("regex strategy shim does not support `{c}` (pattern `{pattern}`)")
                }
                lit => CharSet::from_ranges(vec![(lit as u32, lit as u32)]),
            };
            let (min, max) = parse_quantifier(&mut chars);
            parts.push(PatternPart { set, min, max });
        }
        RegexStrategy { parts }
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for part in &self.parts {
                let span = (part.max - part.min + 1) as u64;
                let n = part.min + rng.below(span) as usize;
                for _ in 0..n {
                    out.push(part.set.sample(rng));
                }
            }
            out
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            compile(self).generate(rng)
        }
    }
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec::Vec::from([
            $( $crate::strategy::boxed($option) ),+
        ]))
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn` runs `cases` times over generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)*
                // Capture inputs before the body, which may consume them.
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),*),
                    $(&$arg),*
                );
                let __result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("{__msg}\n  inputs: {__inputs}"),
                    )),
                    __other => __other,
                }
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_strategies_match_their_patterns() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let s = "[a-zA-Z][a-zA-Z0-9-]{0,15}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 16);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));

            let h = "[ -~&&[^\r\n]]{0,30}".generate(&mut rng);
            assert!(h.len() <= 30);
            assert!(h.chars().all(|c| (' '..='~').contains(&c)));

            let p = "/[a-z0-9/]{0,20}".generate(&mut rng);
            assert!(p.starts_with('/') && p.len() <= 21);

            let w = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&w.len()));
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));

            let u = "\\PC{0,40}".generate(&mut rng);
            assert!(u.chars().count() <= 40);
            assert!(u.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn ranges_and_collections() {
        let mut rng = TestRng::new(5);
        for _ in 0..500 {
            let x = (100u16..600).generate(&mut rng);
            assert!((100..600).contains(&x));
            let y = (-1_100_000i64..1_100_000).generate(&mut rng);
            assert!((-1_100_000..1_100_000).contains(&y));
            let f = (0.5f64..20.0).generate(&mut rng);
            assert!((0.5..20.0).contains(&f));
            let v = crate::collection::vec(any::<u8>(), 0..6).generate(&mut rng);
            assert!(v.len() < 6);
            let (a, b) = ((0u32..4), Just("x")).generate(&mut rng);
            assert!(a < 4);
            assert_eq!(b, "x");
            let m = prop_oneof![Just(1u8), Just(2u8)].generate(&mut rng);
            assert!(m == 1 || m == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires args, assertions, and assumptions together.
        #[test]
        fn macro_smoke(x in 0u32..50, s in "[a-z]{1,8}") {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }
}

//! Offline shim of `criterion`: a minimal wall-clock benchmark harness
//! with the same call surface the workspace's benches use.
//!
//! Vendored because the build container has no crates.io access (see
//! `vendor/README.md`). Each benchmark is warmed up briefly, then timed
//! for a fixed number of samples; median and spread go to stdout. There
//! is no statistical outlier analysis, HTML report, or baseline
//! comparison — this exists so `cargo bench` runs and gives usable
//! relative numbers offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box, like the real crate's.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Default samples per benchmark; groups can override.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Applies command-line-style config. The shim accepts and ignores
    /// filters; present so `criterion_group!` expansion matches.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Benchmarks a closure against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op
    /// besides matching the real API).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Runs and times the benchmarked routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, first warming up, then collecting samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that makes one
        // sample take roughly a millisecond, so cheap routines are not
        // dominated by timer resolution.
        let mut iters_per_sample = 1u64;
        let calibration_start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1)
                || calibration_start.elapsed() > Duration::from_millis(500)
                || iters_per_sample >= 1 << 20
            {
                break;
            }
            iters_per_sample *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed().div_f64(iters_per_sample as f64));
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples (iter was never called)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let lo = sorted[sorted.len() / 10];
        let hi = sorted[sorted.len() - 1 - sorted.len() / 10];
        println!(
            "  {group}/{id}: median {} (p10 {} .. p90 {}) over {} samples",
            fmt_duration(median),
            fmt_duration(lo),
            fmt_duration(hi),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group runner, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>());
        });
        group.finish();
    }
}

//! Offline shim of `rand_chacha`: a real ChaCha8 keystream generator with
//! the same word-consumption order as the upstream crate.
//!
//! Vendored because the build container has no crates.io access (see
//! `vendor/README.md`). The block function is the RFC 7539 ChaCha core at
//! 8 rounds with a 64-bit block counter and 64-bit stream id (both as in
//! rand_chacha), and `next_u32`/`next_u64` consume keystream words exactly
//! like rand_core's `BlockRng` — including the split-across-blocks case of
//! `next_u64` — so seeded streams match the real crate bit-for-bit.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;

/// ChaCha with 8 rounds, seeded from 32 bytes.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// 64-bit stream id (state words 14–15); always 0 for `from_seed`.
    stream: u64,
    buf: [u32; WORDS_PER_BLOCK],
    /// Next unconsumed word in `buf`; `WORDS_PER_BLOCK` means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha8_block(key: &[u32; 8], counter: u64, stream: u64) -> [u32; 16] {
    let mut state = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        stream as u32,
        (stream >> 32) as u32,
    ];
    let input = state;
    for _ in 0..4 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (out, inp) in state.iter_mut().zip(input.iter()) {
        *out = out.wrapping_add(*inp);
    }
    state
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        self.buf = chacha8_block(&self.key, self.counter, self.stream);
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        // Mirrors rand_core's BlockRng so word consumption (and the rare
        // low-half/high-half split across block boundaries) is identical.
        if self.index < WORDS_PER_BLOCK - 1 {
            let lo = self.buf[self.index] as u64;
            let hi = self.buf[self.index + 1] as u64;
            self.index += 2;
            lo | (hi << 32)
        } else if self.index >= WORDS_PER_BLOCK {
            self.refill();
            let lo = self.buf[0] as u64;
            let hi = self.buf[1] as u64;
            self.index = 2;
            lo | (hi << 32)
        } else {
            let lo = self.buf[WORDS_PER_BLOCK - 1] as u64;
            self.refill();
            let hi = self.buf[0] as u64;
            self.index = 1;
            lo | (hi << 32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc7539_chacha20_structure_at_8_rounds() {
        // Deterministic and stable across runs: same seed, same stream.
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..40).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..40).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Different seeds diverge.
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn zero_seed_known_answer() {
        // ChaCha8 keystream block 0 for the all-zero key/nonce starts with
        // bytes 3e 00 ef 2f (djb/eSTREAM vector); as a LE word: 0x2fef003e.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let w0 = rng.next_u32();
        assert_eq!(w0, 0x2fef_003e);
    }

    #[test]
    fn u64_split_across_block_boundary() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        // Consume 15 words, leaving one in the block; next_u64 must span
        // the boundary without dropping or duplicating a word.
        for _ in 0..15 {
            a.next_u32();
        }
        let split = a.next_u64();

        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut words = Vec::new();
        for _ in 0..17 {
            words.push(b.next_u32());
        }
        assert_eq!(split, words[15] as u64 | ((words[16] as u64) << 32));
    }
}

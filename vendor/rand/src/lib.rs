//! Offline shim of `rand` 0.8: the trait surface and distributions this
//! workspace uses, with bit-identical output streams.
//!
//! Vendored because the build container has no crates.io access (see
//! `vendor/README.md`). The sampling algorithms are faithful
//! re-implementations of the upstream ones — `seed_from_u64` is the
//! rand_core 0.6 PCG expansion, integer `gen_range` is Lemire widening
//! multiply with the same zone computation, float sampling uses the same
//! 53-bit / [1,2)-mantissa constructions, `gen_bool` the same fixed-point
//! comparison, and slice `choose`/`shuffle` the same index sampling — so a
//! given seed yields the same values as the real crate. The repo's seeded
//! simulations and statistically-tuned tests depend on this.

#![forbid(unsafe_code)]

/// Core generator interface: raw 32/64-bit output.
pub trait RngCore {
    /// Next 32 bits of output.
    fn next_u32(&mut self) -> u32;
    /// Next 64 bits of output.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with generator output.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-width seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed using the rand_core 0.6 PCG
    /// expansion, so `seed_from_u64(n)` matches the real crate exactly.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A distribution that produces `T` values from raw generator output.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats, all values for integers and `bool`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1) — upstream's
        // multiply-based conversion.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty => $m:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}

standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64,
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Upstream samples a u32 and checks the sign bit region.
        (rng.next_u32() as i32) < 0
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_range {
    ($($t:ty => ($uty:ty, $large:ty, $wide:ty, $m:ident)),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let range = self.end.wrapping_sub(self.start) as $uty as $large;
                // Lemire widening-multiply rejection with the upstream
                // zone so accepted samples match bit-for-bit.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$m() as $large;
                    let wide = (v as $wide) * (range as $wide);
                    let hi = (wide >> <$large>::BITS) as $large;
                    let lo = wide as $large;
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $t);
                    }
                }
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let range = end.wrapping_sub(start).wrapping_add(1) as $uty as $large;
                if range == 0 {
                    // The range spans the whole type.
                    return rng.$m() as $t;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$m() as $large;
                    let wide = (v as $wide) * (range as $wide);
                    let hi = (wide >> <$large>::BITS) as $large;
                    let lo = wide as $large;
                    if lo <= zone {
                        return start.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

uniform_int_range! {
    i8 => (u8, u32, u64, next_u32),
    u8 => (u8, u32, u64, next_u32),
    i16 => (u16, u32, u64, next_u32),
    u16 => (u16, u32, u64, next_u32),
    i32 => (u32, u32, u64, next_u32),
    u32 => (u32, u32, u64, next_u32),
    i64 => (u64, u64, u128, next_u64),
    u64 => (u64, u64, u128, next_u64),
    isize => (usize, u64, u128, next_u64),
    usize => (usize, u64, u128, next_u64),
}

macro_rules! uniform_float_range {
    ($($t:ty => ($uty:ty, $m:ident, $discard:expr, $exp:expr)),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let mut scale = self.end - self.start;
                loop {
                    // A value in [1, 2) from the raw mantissa bits, then
                    // mapped to [start, end) — upstream's construction.
                    let mantissa = rng.$m() >> $discard;
                    let value1_2 = <$t>::from_bits(mantissa | $exp);
                    let res = (value1_2 * scale - scale) + self.start;
                    if res < self.end {
                        return res;
                    }
                    // Boundary rounding produced `end`; shrink by one ulp.
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
        }
    )*};
}

uniform_float_range! {
    f64 => (u64, next_u64, 12, 1023u64 << 52),
    f32 => (u32, next_u32, 9, 127u32 << 23),
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        if p >= 1.0 {
            return true;
        }
        // Upstream Bernoulli: compare 64 random bits against p scaled
        // into fixed point.
        let p_int = (p * (2.0f64).powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers (`choose`, `shuffle`).
    use super::{Rng, RngCore};

    /// Samples an index below `ubound`, using 32-bit sampling when the
    /// bound fits — matching upstream `gen_index` so streams line up.
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }
    }
}

pub mod distributions {
    //! Re-exports matching the upstream module layout.
    pub use super::{Distribution, Standard};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u64);

    impl RngCore for Counting {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counting(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let r = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&r));
            let i = rng.gen_range(6..23);
            assert!((6..23).contains(&i));
            let k = rng.gen_range(3..=5);
            assert!((3..=5).contains(&k));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn slice_helpers() {
        use seq::SliceRandom;
        let mut rng = Counting(3);
        let items = [1, 2, 3, 4];
        assert!(items.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counting(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}

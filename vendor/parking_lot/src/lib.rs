//! Offline shim of `parking_lot`: poison-free [`Mutex`] and [`RwLock`]
//! wrappers over the standard library primitives.
//!
//! Vendored because the build container has no crates.io access (see
//! `vendor/README.md`). API-compatible for the subset this workspace uses:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s, and a poisoned std lock (a panic while held) is transparently
//! recovered, matching parking_lot's no-poisoning behaviour.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value in a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never fail.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value in a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}

//! Offline shim of the `bytes` crate: the subset of the API this workspace
//! uses, backed by plain `Vec<u8>` buffers.
//!
//! The container building this repository has no access to crates.io, so
//! the sanctioned external dependencies are vendored as small, faithful
//! API shims (see `vendor/README.md`). This one covers [`Bytes`],
//! [`BytesMut`], [`Buf`] and [`BufMut`] as used by `sift-net`'s HTTP
//! parser and serializer. Semantics match the real crate for this subset;
//! the zero-copy refcounting optimisation is intentionally absent.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer (shim: an owned `Vec<u8>`).
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a static slice into a buffer.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes {
            data: s.into_bytes(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes {
            data: s.as_bytes().to_vec(),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes {
            data: iter.into_iter().collect(),
        }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "b\"{}\"",
            String::from_utf8_lossy(&self.data).escape_debug()
        )
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data == *other
    }
}

/// A mutable, growable byte buffer (shim: `Vec<u8>` plus a consumed-prefix
/// cursor so [`Buf::advance`] and [`BytesMut::split_to`] are cheap).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Bytes before this offset have been consumed.
    head: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Unconsumed length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// True when no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a slice to the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` unconsumed bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let out = self.data[self.head..self.head + at].to_vec();
        self.head += at;
        self.compact();
        BytesMut { data: out, head: 0 }
    }

    /// Freezes the unconsumed bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data[self.head..].to_vec(),
        }
    }

    /// Drops the consumed prefix when it dominates the buffer, keeping
    /// amortised costs linear.
    fn compact(&mut self) {
        if self.head > 4096 && self.head * 2 > self.data.len() {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut {
            data: src.to_vec(),
            head: 0,
        }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{}\"", String::from_utf8_lossy(self).escape_debug())
    }
}

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Consumes the first `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Unconsumed length.
    fn remaining(&self) -> usize;
}

impl Buf for BytesMut {
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.head += cnt;
        self.compact();
    }

    fn remaining(&self) -> usize {
        self.len()
    }
}

/// Write cursor over a growable byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_advance_freeze() {
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(b"hello world");
        assert_eq!(&b[..], b"hello world");
        let head = b.split_to(6);
        assert_eq!(&head[..], b"hello ");
        b.advance(1);
        assert_eq!(b.freeze(), Bytes::from(&b"orld"[..]));
    }
}

//! Offline shim of `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented without syn/quote.
//!
//! Vendored because the build container has no crates.io access (see
//! `vendor/README.md`). The item is parsed by walking raw token trees and
//! the impl is emitted as a source string, which keeps the whole macro a
//! few hundred lines. Supported shapes are exactly what this workspace
//! derives on: named structs (optionally generic), tuple and unit
//! structs, and enums with unit / tuple / struct variants. Recognised
//! serde attributes: `#[serde(default)]` on fields and
//! `#[serde(transparent)]` on newtype structs (newtypes already
//! serialize transparently here, so the attribute is accepted and
//! otherwise ignored). Anything else fails loudly at compile time rather
//! than serializing wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim): converts the type into a
/// `serde::Value` tree using real serde's external data layout.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim: generated Serialize impl did not parse")
}

/// Derives `serde::Deserialize` (shim): reconstructs the type from a
/// `serde::Value` tree.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl did not parse")
}

struct Field {
    name: String,
    /// `#[serde(default)]` was present.
    default: bool,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Type parameter idents, e.g. `["T"]` for `ApiResult<T>`.
    generics: Vec<String>,
    kind: Kind,
}

// ---------------------------------------------------------------------
// Token-tree parsing.
// ---------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Skips leading attributes; returns true if any was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 1;
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if inner.first().and_then(ident_of).as_deref() == Some("serde") {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        for t in args.stream() {
                            match ident_of(&t).as_deref() {
                                Some("default") => has_default = true,
                                // Newtype structs serialize as their inner
                                // value in this shim, so transparent is
                                // already the behaviour.
                                Some("transparent") | None => {}
                                Some(other) => panic!(
                                    "serde_derive shim: unsupported serde attribute `{other}`"
                                ),
                            }
                        }
                    }
                }
                *i += 1;
            }
            _ => panic!("serde_derive shim: malformed attribute"),
        }
    }
    has_default
}

/// Skips `pub`, `pub(crate)`, `pub(in …)`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if tokens.get(*i).and_then(ident_of).as_deref() == Some("pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Parses `<…>` after the type name, collecting type-parameter idents.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*i), Some(t) if is_punct(t, '<')) {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    while *i < tokens.len() && depth > 0 {
        let t = &tokens[*i];
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
        } else if is_punct(t, ',') && depth == 1 {
            at_param_start = true;
        } else if is_punct(t, '\'') {
            panic!("serde_derive shim: lifetime parameters are not supported");
        } else if at_param_start && depth == 1 {
            if let Some(name) = ident_of(t) {
                if name == "const" {
                    panic!("serde_derive shim: const generics are not supported");
                }
                params.push(name);
                at_param_start = false;
            }
        }
        *i += 1;
    }
    params
}

/// Advances past a type, stopping at a top-level `,` (not consumed) or
/// end of tokens. Tracks `<`/`>` nesting; groups are opaque single tokens.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0usize;
    while *i < tokens.len() {
        let t = &tokens[*i];
        if angle == 0 && is_punct(t, ',') {
            return;
        }
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') {
            angle = angle.saturating_sub(1);
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let default = skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut i);
        let name = ident_of(&tokens[i])
            .unwrap_or_else(|| panic!("serde_derive shim: expected field name"));
        i += 1;
        assert!(
            is_punct(&tokens[i], ':'),
            "serde_derive shim: expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut arity = 0usize;
    let mut in_segment = false;
    let mut angle = 0usize;
    for t in &tokens {
        if angle == 0 && is_punct(t, ',') {
            if in_segment {
                arity += 1;
            }
            in_segment = false;
        } else {
            if is_punct(t, '<') {
                angle += 1;
            } else if is_punct(t, '>') {
                angle = angle.saturating_sub(1);
            }
            in_segment = true;
        }
    }
    if in_segment {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_of(&tokens[i])
            .unwrap_or_else(|| panic!("serde_derive shim: expected variant name"));
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                i += 1;
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the separator.
        if matches!(tokens.get(i), Some(t) if is_punct(t, '=')) {
            while i < tokens.len() && !is_punct(&tokens[i], ',') {
                i += 1;
            }
        }
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kw = ident_of(&tokens[i])
        .unwrap_or_else(|| panic!("serde_derive shim: expected `struct` or `enum`"));
    i += 1;
    let name =
        ident_of(&tokens[i]).unwrap_or_else(|| panic!("serde_derive shim: expected type name"));
    i += 1;
    let generics = parse_generics(&tokens, &mut i);
    // Anything between generics and the body (a where clause) is skipped.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break if kw == "enum" {
                    Kind::Enum(parse_variants(g.stream()))
                } else {
                    Kind::Struct(Shape::Named(parse_named_fields(g.stream())))
                };
            }
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && kw == "struct" =>
            {
                break Kind::Struct(Shape::Tuple(tuple_arity(g.stream())));
            }
            Some(t) if is_punct(t, ';') && kw == "struct" => {
                break Kind::Struct(Shape::Unit);
            }
            Some(_) => i += 1,
            None => panic!("serde_derive shim: could not find body of `{name}`"),
        }
    };
    Item {
        name,
        generics,
        kind,
    }
}

// ---------------------------------------------------------------------
// Code generation (plain source strings, parsed back into tokens).
// ---------------------------------------------------------------------

/// `impl<T: BOUND> … for Name<T>` pieces: (impl generics, type generics).
fn generics_for(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let with_bounds: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", with_bounds.join(", ")),
            format!("<{}>", item.generics.join(", ")),
        )
    }
}

fn obj_entries(pairs: &[(String, String)]) -> String {
    let entries: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!(
        "::serde::Value::Object(::std::vec::Vec::from([{}]))",
        entries.join(", ")
    )
}

fn arr_entries(items: &[String]) -> String {
    format!(
        "::serde::Value::Array(::std::vec::Vec::from([{}]))",
        items.join(", ")
    )
}

fn gen_serialize(item: &Item) -> String {
    let (impl_g, ty_g) = generics_for(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| {
                    (
                        f.name.clone(),
                        format!("::serde::Serialize::to_value(&self.{})", f.name),
                    )
                })
                .collect();
            obj_entries(&pairs)
        }
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            arr_entries(&items)
        }
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        Shape::Tuple(1) => {
                            let inner = "::serde::Serialize::to_value(__f0)".to_string();
                            format!(
                                "{name}::{vname}(__f0) => {},",
                                obj_entries(&[(vname.clone(), inner)])
                            )
                        }
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => {},",
                                binds.join(", "),
                                obj_entries(&[(vname.clone(), arr_entries(&items))])
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pairs: Vec<(String, String)> = fields
                                .iter()
                                .map(|f| {
                                    (
                                        f.name.clone(),
                                        format!("::serde::Serialize::to_value({})", f.name),
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => {},",
                                binds.join(", "),
                                obj_entries(&[(vname.clone(), obj_entries(&pairs))])
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{impl_g} ::serde::Serialize for {name}{ty_g} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_ctor(path: &str, fields: &[Field], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let helper = if f.default {
                "field_or_default"
            } else {
                "field"
            };
            format!("{}: ::serde::de::{helper}({src}, \"{}\")?", f.name, f.name)
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_g, ty_g) = generics_for(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Named(fields)) => {
            format!(
                "let __fields = ::serde::de::as_object(__v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({})",
                named_ctor(name, fields, "__fields")
            )
        }
        Kind::Struct(Shape::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::de::from_value(__v)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = ::serde::de::as_array(__v, {n}, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::Struct(Shape::Unit) => format!(
            "match __v {{\n\
             ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
             _ => ::std::result::Result::Err(::serde::Error::custom(\
             \"invalid type: expected null for unit struct {name}\")),\n\
             }}"
        ),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                        }
                        Shape::Tuple(1) => format!(
                            "\"{vname}\" => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::de::from_value(__inner)?)),"
                        ),
                        Shape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::de::from_value(&__items[{i}])?"))
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                 let __items = ::serde::de::as_array(\
                                 __inner, {n}, \"{name}::{vname}\")?;\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                        Shape::Named(fields) => format!(
                            "\"{vname}\" => {{\n\
                             let __vfields = ::serde::de::as_object(\
                             __inner, \"{name}::{vname}\")?;\n\
                             ::std::result::Result::Ok({})\n\
                             }}",
                            named_ctor(&format!("{name}::{vname}"), fields, "__vfields")
                        ),
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                 {}\n\
                 _ => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(__tag, \"{name}\")),\n\
                 }},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {}\n\
                 _ => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(__tag, \"{name}\")),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"invalid type: expected externally tagged enum {name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl{impl_g} ::serde::Deserialize for {name}{ty_g} {{\n\
         fn from_value(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

//! Offline shim of `crossbeam`: the `channel::unbounded` MPMC channel this
//! workspace uses, built on `Mutex<VecDeque>` + `Condvar`.
//!
//! Vendored because the build container has no crates.io access (see
//! `vendor/README.md`). Semantics match the real crate for this subset:
//! both `Sender` and `Receiver` are cloneable, `send` fails once every
//! receiver is gone, and `recv` fails once the queue is drained and every
//! sender is gone.

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message back, like the real crate.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty but senders remain.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.chan.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(msg);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect instead of sleeping forever. The notify must
                // happen while holding the queue lock — otherwise a
                // receiver that has read `senders == 1` but not yet parked
                // in `wait` misses the wakeup and sleeps forever (it was
                // holding the lock during its check, so acquiring the lock
                // here means every such receiver has since parked).
                let _q = self.chan.queue.lock().unwrap_or_else(|p| p.into_inner());
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, blocking until one arrives or every sender
        /// has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Dequeues a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Blocking iterator over received messages; ends on disconnect.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            Iter { rx: self }
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn mpmc_roundtrip_and_disconnect() {
        let (tx, rx) = channel::unbounded::<u32>();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx2.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
        drop(rx);
        drop(rx2);
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }

    #[test]
    fn blocking_recv_across_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }
}

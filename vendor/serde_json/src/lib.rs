//! Offline shim of `serde_json`: JSON text rendering and parsing over the
//! `serde` shim's [`Value`] tree.
//!
//! Vendored because the build container has no crates.io access (see
//! `vendor/README.md`). Output conventions follow the real crate where it
//! matters for interop: integral floats print with a trailing `.0`,
//! non-finite floats serialize as `null`, strings escape control
//! characters as `\u00XX`, and parsing accepts the full JSON grammar
//! including `\uXXXX` escapes with surrogate pairs.

#![forbid(unsafe_code)]

// Re-export for `json!` expansion (`$crate::serde::…`).
pub use serde;

pub use serde::{Error, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Serializes to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserializes from JSON bytes.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::custom(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-ish syntax.
///
/// Shim restriction: each value position must be a single token tree — a
/// literal, a nested `{…}`/`[…]`, or a parenthesized expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(::std::vec::Vec::from([ $( $crate::json!($item) ),* ]))
    };
    ({ $($key:literal : $value:tt),* $(,)? }) => {
        $crate::Value::Object(::std::vec::Vec::from([
            $( (::std::string::String::from($key), $crate::json!($value)) ),*
        ]))
    };
    ($other:expr) => { $crate::serde::Serialize::to_value(&$other) };
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // The real crate serializes NaN/infinity as null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a fractional part so the number reads back as a float,
        // matching the real crate's `2.0` (not `2`).
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.depth += 1;
        if self.depth > 128 {
            return Err(Error::custom("JSON nested too deeply"));
        }
        self.skip_ws();
        let v = match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of JSON input")),
        }?;
        self.depth -= 1;
        Ok(v)
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let code = u16::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.str_slice(start, self.pos)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.str_slice(start, self.pos)?);
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a \uXXXX low half.
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi as u32)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                    return self.string_tail(out);
                }
                Some(b) if b < 0x20 => return Err(Error::custom("control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Continues string parsing after the first escape; `string` fast-paths
    /// escape-free strings as a single slice.
    fn string_tail(&mut self, mut out: String) -> Result<String> {
        let mut start = self.pos;
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.str_slice(start, self.pos)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.str_slice(start, self.pos)?);
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi as u32)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                    start = self.pos;
                    continue;
                }
                Some(b) if b < 0x20 => return Err(Error::custom("control character in string")),
                Some(_) => {
                    self.pos += 1;
                    continue;
                }
            }
        }
    }

    fn str_slice(&self, start: usize, end: usize) -> Result<&'a str> {
        std::str::from_utf8(&self.bytes[start..end])
            .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = self.str_slice(start, self.pos)?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.25f64).unwrap(), "2.25");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let x: f64 = from_str("2.5").unwrap();
        assert_eq!(x, 2.5);
        let y: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(y, u64::MAX);
        let z: i32 = from_str("-12").unwrap();
        assert_eq!(z, -12);
    }

    #[test]
    fn parse_structures() {
        let v = parse(r#"{"a": [1, 2.5, "xA😀"], "b": null}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Array(vec![
                Value::Int(1),
                Value::Float(2.5),
                Value::Str("xA\u{1F600}".to_string()),
            ]))
        );
        assert_eq!(v.get("b"), Some(&Value::Null));
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "term": {"Topic": "InternetOutage"},
            "n": 3,
            "xs": [1, 2, 3],
            "none": null,
            "flag": true,
        });
        let text = to_string(&v).unwrap();
        assert_eq!(
            text,
            r#"{"term":{"Topic":"InternetOutage"},"n":3,"xs":[1,2,3],"none":null,"flag":true}"#
        );
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn escaped_then_plain_segments() {
        let s: String = from_str(r#""a\nbc\td""#).unwrap();
        assert_eq!(s, "a\nbc\td");
    }
}

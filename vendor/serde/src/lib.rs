//! Offline shim of `serde`: a small value-tree data model with
//! `Serialize`/`Deserialize` traits and derive macros.
//!
//! Vendored because the build container has no crates.io access (see
//! `vendor/README.md`). Instead of the real crate's visitor architecture,
//! types convert to and from a single [`Value`] tree and `serde_json`
//! renders that tree as JSON text. The wire format matches real serde's
//! external representation for everything this workspace serializes:
//! structs are objects, newtype structs are transparent, unit enum
//! variants are strings, data-carrying variants are externally tagged
//! one-entry objects, and missing `Option` fields deserialize to `None`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

// Derive macros, re-exported under the same names as the traits just like
// the real crate's `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

/// A parsed or to-be-serialized JSON-like value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => de::get(fields, key),
            _ => None,
        }
    }

    /// The value as `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error: a message, as in `serde_json`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with an arbitrary message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    /// A required field was absent.
    pub fn missing_field(name: &str) -> Error {
        Error::custom(format!("missing field `{name}`"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> Error {
        Error::custom(format!("unknown variant `{tag}` for {ty}"))
    }

    /// A value had the wrong JSON type.
    pub fn invalid_type(expected: &str, got: &Value) -> Error {
        let got = match got {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "floating point number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error::custom(format!("invalid type: {got}, expected {expected}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts to the value tree.
    fn to_value(&self) -> Value;
}

/// A type constructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Converts from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent, or `None` to make
    /// absence an error. Overridden by `Option` so missing optional
    /// fields become `None`, matching real serde.
    fn from_missing() -> Option<Self> {
        None
    }
}

pub mod ser {
    //! Serialization-side re-exports matching the upstream module layout.
    pub use crate::{Error, Serialize};
}

pub mod de {
    //! Deserialization-side helpers, used by derive-generated code.
    use crate::Value;
    pub use crate::{Deserialize, Error};

    /// `Deserialize` for types without borrowed data. In this shim every
    /// `Deserialize` qualifies, as in `serde::de::DeserializeOwned` for
    /// `'static` types.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}

    /// Converts a value, with inference from the call site.
    pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
        T::from_value(v)
    }

    /// Borrows the fields of an object value.
    pub fn as_object<'a>(v: &'a Value, what: &str) -> Result<&'a [(String, Value)], Error> {
        match v {
            Value::Object(fields) => Ok(fields),
            _ => Err(Error::custom(format!(
                "invalid type: expected {what} as an object"
            ))),
        }
    }

    /// Borrows the elements of an array value, checking the exact length.
    pub fn as_array<'a>(v: &'a Value, len: usize, what: &str) -> Result<&'a [Value], Error> {
        match v {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(Error::custom(format!(
                "invalid length {} for {what}, expected {len}",
                items.len()
            ))),
            _ => Err(Error::custom(format!(
                "invalid type: expected {what} as an array"
            ))),
        }
    }

    /// First value for a key in insertion-ordered object fields.
    pub fn get<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
        fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Extracts and converts a struct field; absent fields fall back to
    /// [`Deserialize::from_missing`] (so `Option` becomes `None`).
    pub fn field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, Error> {
        match get(fields, name) {
            Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
            None => T::from_missing().ok_or_else(|| Error::missing_field(name)),
        }
    }

    /// Like [`field`], but an absent field yields `T::default()` — the
    /// behaviour of `#[serde(default)]`.
    pub fn field_or_default<T: Deserialize + Default>(
        fields: &[(String, Value)],
        name: &str,
    ) -> Result<T, Error> {
        match get(fields, name) {
            Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
            None => Ok(T::default()),
        }
    }
}

// ---------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::invalid_type("a boolean", v)),
        }
    }
}

macro_rules! serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let wide: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| Error::invalid_type("a signed integer", v))?,
                    // Accept integral floats; JSON writers for this tree
                    // never produce them for ints, but be permissive.
                    Value::Float(f) if f.fract() == 0.0 && f.is_finite() => f as i64,
                    _ => return Err(Error::invalid_type("an integer", v)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

serde_signed!(i8, i16, i32, i64, isize);

macro_rules! serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let wide: u64 = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) => u64::try_from(i)
                        .map_err(|_| Error::invalid_type("an unsigned integer", v))?,
                    Value::Float(f) if f.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&f) => {
                        f as u64
                    }
                    _ => return Err(Error::invalid_type("an unsigned integer", v)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    // serde_json deserializes `null` into NaN-capable
                    // floats only via `Option`; reject here.
                    _ => Err(Error::invalid_type("a number", v)),
                }
            }
        }
    )*};
}

serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::invalid_type("a string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// The real crate borrows `&str` from the input buffer; this shim's
    /// [`Value`] tree owns its strings, so deserializing to `&'static str`
    /// leaks the string instead. Acceptable at the workspace's test scale,
    /// and observationally equivalent otherwise.
    fn from_value(v: &Value) -> Result<&'static str, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::invalid_type("a string", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        match v {
            Value::Str(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(Error::custom("expected a single-character string")),
                }
            }
            _ => Err(Error::invalid_type("a string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing() -> Option<Option<T>> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::invalid_type("an array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! serde_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                let items = de::as_array(v, LEN, "a tuple")?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

serde_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output; HashMap iteration order is not
        // stable and the repo asserts on serialized text in tests.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<HashMap<String, V>, Error> {
        let fields = de::as_object(v, "a map")?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<String, V>, Error> {
        let fields = de::as_object(v, "a map")?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_behaviour() {
        let fields = vec![("present".to_string(), Value::Int(3))];
        let present: Option<u32> = de::field(&fields, "present").unwrap();
        assert_eq!(present, Some(3));
        let absent: Option<u32> = de::field(&fields, "absent").unwrap();
        assert_eq!(absent, None);
        let err: Result<u32, Error> = de::field(&fields, "absent");
        assert!(err.is_err());
        let defaulted: u32 = de::field_or_default(&fields, "absent").unwrap();
        assert_eq!(defaulted, 0);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(i64::from_value(&Value::UInt(7)).unwrap(), 7);
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert_eq!(f64::from_value(&Value::Int(-2)).unwrap(), -2.0);
    }

    #[test]
    fn tuples_and_vecs() {
        let v = (1u32, "x".to_string()).to_value();
        let back: (u32, String) = de::from_value(&v).unwrap();
        assert_eq!(back, (1, "x".to_string()));
        let arr = vec![1u8, 2, 3].to_value();
        let back: Vec<u8> = de::from_value(&arr).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}

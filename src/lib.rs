//! # SIFT — sifting through user-affecting Internet outages
//!
//! This crate is the facade of the SIFT workspace, a reproduction of
//! *"Is my Internet down?": Sifting through User-Affecting Outages with
//! Google Trends* (IMC 2022). It re-exports the public API of every
//! subsystem so applications can depend on a single crate:
//!
//! * [`core`] — the SIFT pipeline: time-series reconstruction, spike
//!   detection, impact/area/context analysis.
//! * [`trends`] — the search-trends aggregation-service simulator that
//!   stands in for Google Trends.
//! * [`net`] — the HTTP/1.1 substrate (server, client, rate limiting) the
//!   service is crawled over.
//! * [`fetcher`] — the collection module mapping workload onto fetcher
//!   units behind distinct source IPs.
//! * [`cluster`] — the sharded crawl: a coordinator partitioning regions
//!   across workers by consistent hashing, with lease/heartbeat/reroute
//!   fault tolerance and per-worker journal merging.
//! * [`probe`] — the active-probing baseline (ANT/Trinocular-style).
//! * [`obs`] — zero-dependency metrics, span timing and structured
//!   event logging, exposed live at `GET /metrics`.
//! * [`journal`] — crash-safe durability: write-ahead journal, atomic
//!   checkpoints, deterministic crash injection for resumable crawls.
//! * [`serve`] — SIFT-as-a-service: a crash-recoverable online detector
//!   daemon with bounded-staleness reads and graceful degradation.
//! * [`geo`], [`simtime`], [`nlp`] — geography, civil time and semantic
//!   clustering substrates.
//!
//! See `examples/quickstart.rs` for the Fig. 2 workflow end-to-end and
//! `DESIGN.md` for the full system inventory.

#![forbid(unsafe_code)]

pub use sift_cluster as cluster;
pub use sift_core as core;
pub use sift_fetcher as fetcher;
pub use sift_geo as geo;
pub use sift_journal as journal;
pub use sift_net as net;
pub use sift_nlp as nlp;
pub use sift_obs as obs;
pub use sift_probe as probe;
pub use sift_serve as serve;
pub use sift_simtime as simtime;
pub use sift_trends as trends;

//! Area analysis of a nationwide CDN failure: the Akamai DNS
//! misconfiguration of 22 July 2021, the most extensive outage of the
//! paper's Table 2 (34 states spiking simultaneously).
//!
//! Also demonstrates the §4.2 lag analysis on the Facebook outage: every
//! region spikes, but the further-west regions lag the east coast.
//!
//! Run with: `cargo run --release --example nationwide_cdn_outage`

use sift::core::{area, run_study, StudyParams};
use sift::geo::State;
use sift::simtime::{format_day, format_spike_time, Hour, HourRange};
use sift::trends::{Scenario, ScenarioParams, TrendsService};

fn main() {
    let scenario = Scenario::generate(ScenarioParams {
        background_scale: 0.25,
        ..ScenarioParams::default()
    });
    let service = TrendsService::with_defaults(scenario);

    // --- The Akamai event: crawl two weeks around it, all 51 regions.
    let range = HourRange::new(
        Hour::from_ymdh(2021, 7, 12, 0),
        Hour::from_ymdh(2021, 8, 2, 0),
    );
    let params = StudyParams {
        range,
        daily_rising: false, // keep the request volume small for a demo
        ..StudyParams::default()
    };
    println!(
        "crawling 51 regions, {} – {} ...",
        format_day(range.start),
        format_day(range.end)
    );
    let result = run_study(&service, &params).expect("study runs");
    println!(
        "{} spikes across {} clusters ({} frames requested)",
        result.spikes.len(),
        result.clusters.len(),
        result.stats.frames_requested
    );

    let widest = area::top_by_extent(&result.clusters, 3);
    println!("\nmost extensive outages in the window:");
    for c in &widest {
        println!(
            "  {}  {} states  (anchor {} in {})",
            format_spike_time(c.anchor().start),
            c.state_count(),
            format_spike_time(c.anchor().peak),
            c.anchor().state,
        );
    }

    let akamai = result
        .clusters
        .iter()
        .max_by_key(|c| c.state_count())
        .expect("clusters exist");
    let states: Vec<&str> = akamai.states.iter().map(|s| s.abbrev()).collect();
    println!(
        "\nwidest cluster spans {} states: {}",
        akamai.state_count(),
        states.join(" ")
    );

    // --- The Facebook lag analysis.
    let range = HourRange::new(
        Hour::from_ymdh(2021, 9, 27, 0),
        Hour::from_ymdh(2021, 10, 11, 0),
    );
    let params = StudyParams {
        range,
        daily_rising: false,
        ..StudyParams::default()
    };
    println!(
        "\ncrawling the Facebook outage window ({} – {}) ...",
        format_day(range.start),
        format_day(range.end)
    );
    let result = run_study(&service, &params).expect("study runs");
    let fb = result
        .clusters
        .iter()
        .filter(|c| c.window.contains(Hour::from_ymdh(2021, 10, 4, 16)))
        .max_by_key(|c| c.state_count())
        .expect("facebook cluster detected");
    println!(
        "facebook outage: spikes in {} states; peak lags behind the first region:",
        fb.state_count()
    );
    let lags = fb.peak_lags();
    let synchronised = lags.iter().filter(|(_, lag)| *lag == 0).count();
    let lagged = lags.iter().filter(|(_, lag)| *lag > 0).count();
    println!("  {synchronised} regions synchronous, {lagged} lagging (paper: 29 vs 22)");
    let mut west: Vec<&(State, i64)> = lags
        .iter()
        .filter(|(s, _)| matches!(s, State::CA | State::WA | State::OR | State::HI | State::AK))
        .collect();
    west.sort_by_key(|(s, _)| s.index());
    for (s, lag) in west {
        println!("  {s}: +{lag} h");
    }
}

//! The collection module over real sockets: a rate-limited trends service
//! behind `sift-net`'s HTTP server, crawled by four fetcher units with
//! distinct identities — the paper's answer to the service's IP-based
//! rate limiting (§4, Implementation).
//!
//! This example is the *single-process* fleet: every unit lives in this
//! process and shares one queue. The multi-process promotion of the same
//! idea — a coordinator leasing region shards to workers over a job
//! protocol, with heartbeat failover and bit-identical assembly — is the
//! `sift-cluster` crate (see DESIGN.md, *Cluster model*, and the
//! "Sharded crawl" section of the README).
//!
//! Run with: `cargo run --release --example distributed_crawl`

use sift::core::{plan_frames, run_study, PlanParams, StudyParams};
use sift::fetcher::{
    queue::WorkItem, CollectionRun, HttpTrendsClient, ResponseStore, RoundRobin, TrendsClient,
};
use sift::geo::State;
use sift::net::{RateLimiterConfig, Server};
use sift::simtime::{Hour, HourRange};
use sift::trends::{FrameRequest, Scenario, ScenarioParams, SearchTerm, TrendsService};
use std::sync::Arc;

fn main() {
    // The service side: a rate limiter tight enough that a single client
    // identity cannot sustain the crawl alone.
    let scenario = Scenario::generate(ScenarioParams {
        background_scale: 0.1,
        ..ScenarioParams::default()
    });
    let service = Arc::new(TrendsService::with_defaults(scenario));
    let server = Server::new(sift::fetcher::trends_router(Arc::clone(&service)))
        .with_rate_limiter(RateLimiterConfig {
            capacity: 20.0,
            refill_per_sec: 40.0,
            ..RateLimiterConfig::default()
        })
        .with_workers(8)
        .bind("127.0.0.1:0")
        .expect("bind server");
    println!("trends service listening on {}", server.addr());

    // The client side: four fetcher units, each with its own declared
    // source identity and thus its own rate-limit bucket.
    let units: Vec<Arc<dyn TrendsClient>> = (1..=4)
        .map(|i| {
            Arc::new(HttpTrendsClient::new(server.addr(), format!("127.0.0.{i}")))
                as Arc<dyn TrendsClient>
        })
        .collect();

    // --- Low-level path: map a raw workload across the units.
    let range = HourRange::new(
        Hour::from_ymdh(2020, 3, 1, 0),
        Hour::from_ymdh(2020, 4, 30, 0),
    );
    let plan = plan_frames(range, PlanParams::default());
    let workload: Vec<WorkItem> = [State::CA, State::TX, State::NY]
        .iter()
        .flat_map(|state| {
            plan.frames.iter().map(move |f| {
                WorkItem::Frame(FrameRequest {
                    term: SearchTerm::parse("topic:Internet outage"),
                    state: *state,
                    start: f.start,
                    len: u32::try_from(f.len()).unwrap_or(u32::MAX),
                    tag: 0,
                })
            })
        })
        .collect();
    println!(
        "\nqueueing {} frame requests across 4 units ...",
        workload.len()
    );
    let run = CollectionRun::new(units.clone());
    let mut store = ResponseStore::new();
    let report = run.execute(workload, &mut store);
    println!(
        "collected {} frames ({} failed); store holds {} frames",
        report.completed,
        report.failed,
        store.frame_count()
    );
    for (identity, served) in &report.per_unit {
        println!("  unit {identity}: {served} responses");
    }

    // --- High-level path: the full SIFT study over the same units via
    // the round-robin combinator.
    let client = RoundRobin::new(units);
    let params = StudyParams {
        range,
        regions: vec![State::CA, State::TX, State::NY],
        daily_rising: false,
        threads: 3,
        ..StudyParams::default()
    };
    println!("\nrunning the SIFT study over HTTP ...");
    let result = run_study(&client, &params).expect("study over http");
    println!(
        "{} spikes detected; service served {} frames total",
        result.spikes.len(),
        service.stats().frames_served
    );

    server.shutdown();
    println!("server shut down cleanly");
}

//! A full sharded study under a seeded nemesis schedule: the coordinator
//! is killed mid-run and recovered from its journal, a worker is
//! partitioned from it and healed — and the converged result is diffed
//! against the clean single-process baseline inside the example itself.
//!
//! Everything printed to **stdout** is a pure function of `--seed`: the
//! schedule (derived from the seed), the final spikes (which must equal
//! the deterministic baseline), and the process-level audit counts the
//! schedule fixes in advance. Timing-dependent observations — how many
//! requests the partition actually caught, lease retries, reroutes — go
//! to **stderr**. `scripts/check.sh` byte-diffs stdout across two
//! same-seed runs.
//!
//! Run with: `cargo run --release --example nemesis_crawl -- --seed 42`
//! (add `--quick` for the reduced-scale variant the gate uses).

use sift::cluster::{ClusterConfig, NemesisCluster, WorkerConfig, COORDINATOR};
use sift::core::{run_study, StudyParams, StudyResult};
use sift::fetcher::{trends_router, HttpTrendsClient};
use sift::geo::State;
use sift::net::{FaultKind, FaultPlan, NemesisPlan, Server, ServerHandle};
use sift::simtime::{Hour, HourRange};
use sift::trends::events::{Cause, OutageEvent, PowerTrigger};
use sift::trends::terms::Provider;
use sift::trends::{Scenario, TrendsService};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    seed: u64,
    quick: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        seed: 42,
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                out.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--quick" => out.quick = true,
            other => panic!("unknown argument {other}; try --seed N / --quick"),
        }
    }
    out
}

/// The deterministic world: two target events on TX/CA plus an anchor
/// chain that keeps the frame calibration stable everywhere. Responses
/// are a pure function of request coordinates, so re-crawls after a
/// crash fetch identical bytes.
fn world(regions: &[State], horizon: Hour) -> Scenario {
    let mut events = vec![
        OutageEvent {
            id: 0,
            name: "power".into(),
            cause: Cause::Power(PowerTrigger::Storm),
            start: Hour(horizon.0 * 3 / 8),
            duration_h: 8,
            states: vec![(State::TX, 0.3), (State::CA, 0.2)],
            severity: 9_000.0,
            lags_h: vec![0, 0],
        },
        OutageEvent {
            id: 1,
            name: "isp".into(),
            cause: Cause::IspNetwork(Provider::Spectrum),
            start: Hour(horizon.0 * 3 / 4),
            duration_h: 5,
            states: vec![(State::CA, 0.2)],
            severity: 8_000.0,
            lags_h: vec![0],
        },
    ];
    for (i, start) in (40..horizon.0).step_by(70).enumerate() {
        for (j, state) in [State::TX, State::CA].into_iter().enumerate() {
            events.push(OutageEvent {
                id: 100 + u32::try_from(i * 2 + j).unwrap_or(u32::MAX),
                name: format!("anchor-{i}-{state}"),
                cause: Cause::IspNetwork(Provider::Frontier),
                start: Hour(start + 11 * i64::try_from(j).unwrap_or(0)),
                duration_h: 2,
                states: vec![(state, 0.02)],
                severity: 8_000.0,
                lags_h: vec![0],
            });
        }
    }
    let mut scenario = Scenario::single_region(State::TX, vec![]);
    scenario.params.regions = regions.to_vec();
    scenario.events = events;
    scenario.events.sort_by_key(|e| (e.start, e.id));
    scenario
}

fn serve_trends(regions: &[State], horizon: Hour, stall: Option<Duration>) -> ServerHandle {
    let mut server = Server::new(trends_router(Arc::new(TrendsService::with_defaults(
        world(regions, horizon),
    ))))
    .with_workers(8);
    if let Some(stall) = stall {
        // A deterministic per-request stall floors the crawl duration so
        // the schedule's fixed offsets land mid-run.
        server = server.with_fault_plan(
            FaultPlan::new(0)
                .route("/api", &[(FaultKind::Stall, 1.0)])
                .with_stall(stall),
        );
    }
    server.bind("127.0.0.1:0").expect("bind trends service")
}

fn same_result(a: &StudyResult, b: &StudyResult) -> bool {
    a.spikes.len() == b.spikes.len()
        && a.spikes
            .iter()
            .zip(b.spikes.iter())
            .all(|(x, y)| x.spike == y.spike && x.annotations == y.annotations)
        && a.timelines == b.timelines
        && a.heavy_hitters == b.heavy_hitters
        && a.stats.frames_requested == b.stats.frames_requested
}

fn main() {
    let args = parse_args();
    // The per-request stall floors the crawl duration above the nemesis
    // horizon, so every scheduled operation lands mid-run: the quick
    // profile crawls fewer frames and compensates with a longer stall.
    let (regions, horizon, range_h, nemesis_horizon_ms, n_workers, stall_ms) = if args.quick {
        (
            vec![State::TX, State::CA],
            Hour(500),
            500i64,
            2_500u64,
            2usize,
            25u64,
        )
    } else {
        (
            vec![State::TX, State::CA, State::NY, State::FL],
            Hour(800),
            800i64,
            4_000u64,
            3usize,
            8u64,
        )
    };
    let params = StudyParams {
        range: HourRange::new(Hour(0), Hour(range_h)),
        regions: regions.clone(),
        threads: 2,
        ..StudyParams::default()
    };

    println!(
        "nemesis crawl, seed {} ({})",
        args.seed,
        if args.quick { "quick" } else { "full" }
    );

    // --- The clean baseline, single-process over HTTP.
    let clean = serve_trends(&regions, horizon, None);
    let client = HttpTrendsClient::new(clean.addr(), "127.0.0.20");
    let reference = run_study(&client, &params).expect("baseline study");
    clean.shutdown();

    // --- The seeded schedule: a pure function of the seed, printed
    // before the run so a diff pins schedule drift, not just outcomes.
    let worker_ids: Vec<String> = (0..n_workers).map(|i| format!("worker-{i}")).collect();
    let plan = NemesisPlan::random(args.seed, COORDINATOR, &worker_ids, nemesis_horizon_ms);
    println!("\nschedule over {nemesis_horizon_ms} ms:");
    for step in &plan.steps {
        println!("  t+{:>5} ms  {}", step.at_ms, step.op);
    }

    // --- The sharded run under that schedule.
    let trends = serve_trends(&regions, horizon, Some(Duration::from_millis(stall_ms)));
    let dir = std::env::temp_dir().join(format!(
        "sift-nemesis-crawl-{}-{}",
        args.seed,
        std::process::id()
    ));
    // A fresh directory every run: this example demonstrates recovery
    // *within* a run, not resumption across runs.
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    let config = ClusterConfig {
        heartbeat_interval: Duration::from_millis(75),
        miss_threshold: 4,
        poll_ms: 10,
        attempt_budget: 10,
        vnodes: 40,
        checkpoint_every: 8,
    };
    let worker_config = WorkerConfig {
        coord_down_grace: Some(Duration::from_secs(20)),
        ..WorkerConfig::default()
    };
    let cluster = NemesisCluster::start(
        params,
        config,
        trends.addr(),
        dir.clone(),
        &worker_ids,
        &worker_config,
    )
    .expect("boot nemesis cluster");
    let report = cluster
        .run(plan, Duration::from_secs(300))
        .expect("nemesis run converges");
    trends.shutdown();
    // Scratch cleanup is best-effort; the OS temp dir reaps leftovers.
    let _ = std::fs::remove_dir_all(&dir);

    // --- The deterministic verdict.
    println!("\nconverged spikes:");
    for a in &report.result.spikes {
        println!(
            "  spike {} peak h{} magnitude {:.2}",
            a.spike.state, a.spike.peak.0, a.spike.magnitude
        );
    }
    println!(
        "coordinator kills {} restarts {} recoveries {}",
        report.coordinator_kills, report.coordinator_restarts, report.status.recoveries
    );
    println!(
        "shards done {}/{} failed {}",
        report.status.done, report.status.total, report.status.failed
    );
    println!(
        "matches clean baseline: {}",
        same_result(&report.result, &reference)
    );

    // --- Timing-dependent observations: real, useful, and deliberately
    // kept off the byte-diffed stream.
    eprintln!(
        "link faults: {} dropped, {} delayed; reroutes {}; plan exhausted {}",
        report.link_dropped, report.link_delayed, report.status.rerouted, report.plan_exhausted
    );
    if let Some(pre) = &report.pre_kill_status {
        eprintln!(
            "pre-kill snapshot: {}/{} done, epoch {}",
            pre.done, pre.total, pre.epoch
        );
    }
    eprintln!(
        "workers killed by schedule: {:?}; lease retries {}",
        report.workers_killed,
        sift::obs::counter("sift_cluster_worker_lease_retry_total", &[]).get()
    );
}

//! A resumable crawl end-to-end: the same seeded study is run three ways
//! — uninterrupted, killed at an injected durability boundary, and then
//! resumed from the journals the crash left behind — and the example
//! diffs the resumed result against the uninterrupted one field by
//! field. Every fetch is a pure function of the scenario seed and the
//! request coordinates, and the single-threaded schedule makes the crash
//! land at the same fetch every time, so two executions with the same
//! `--seed` and `--crash-at` print byte-identical reports —
//! `scripts/check.sh` diffs exactly that.
//!
//! Run with:
//! `cargo run --release --example resumable_crawl -- --seed 7 --crash-at checkpoint_temp_written`
//! (`--crash-at` takes a site label or index: mid_journal_record /
//! after_journal_record / checkpoint_temp_written / after_checkpoint_rename)

use sift::core::{run_study_durable, StudyDurability, StudyParams, StudyResult};
use sift::fetcher::{trends_router, HttpTrendsClient};
use sift::geo::State;
use sift::journal::testutil::scratch_dir;
use sift::journal::{CrashInjector, CrashPlan, CrashSite};
use sift::net::Server;
use sift::simtime::{Hour, HourRange};
use sift::trends::events::{Cause, OutageEvent, PowerTrigger};
use sift::trends::terms::Provider;
use sift::trends::{Scenario, TrendsService};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

struct Args {
    seed: u64,
    crash_at: CrashSite,
}

fn parse_args() -> Args {
    let mut out = Args {
        seed: 7,
        crash_at: CrashSite::CheckpointTempWritten,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                out.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--crash-at" => {
                let v = args.next().expect("--crash-at takes a site label or index");
                out.crash_at = CrashSite::ALL
                    .into_iter()
                    .enumerate()
                    .find(|(i, s)| s.label() == v || i.to_string() == v)
                    .map(|(_, s)| s)
                    .expect("unknown crash site");
            }
            other => panic!("unknown flag {other}"),
        }
    }
    out
}

/// The seeded world: the seed shifts event timing and weight so different
/// seeds genuinely crawl different data, while the same seed replays the
/// same world in every process.
fn world(seed: u64) -> Scenario {
    let jitter = i64::try_from(seed % 37).unwrap_or(0);
    let mut events = vec![
        OutageEvent {
            id: 0,
            name: "power".into(),
            cause: Cause::Power(PowerTrigger::Storm),
            start: Hour(280 + jitter),
            duration_h: 8,
            states: vec![(State::TX, 0.3), (State::CA, 0.2)],
            severity: 9_000.0,
            lags_h: vec![0, 0],
        },
        OutageEvent {
            id: 1,
            name: "isp".into(),
            cause: Cause::IspNetwork(Provider::Spectrum),
            start: Hour(590 + jitter),
            duration_h: 5,
            states: vec![(State::CA, 0.2)],
            severity: 8_000.0,
            lags_h: vec![0],
        },
    ];
    for (i, start) in (40..800).step_by(70).enumerate() {
        for (j, state) in [State::TX, State::CA].into_iter().enumerate() {
            events.push(OutageEvent {
                id: 100 + u32::try_from(i * 2 + j).unwrap_or(u32::MAX),
                name: format!("anchor-{i}-{state}"),
                cause: Cause::IspNetwork(Provider::Frontier),
                start: Hour(start + 11 * i64::try_from(j).unwrap_or(0)),
                duration_h: 2,
                states: vec![(state, 0.02)],
                severity: 8_000.0,
                lags_h: vec![0],
            });
        }
    }
    let mut scenario = Scenario::single_region(State::TX, vec![]);
    scenario.params.regions = vec![State::TX, State::CA];
    scenario.events = events;
    scenario.events.sort_by_key(|e| (e.start, e.id));
    scenario
}

fn study_params() -> StudyParams {
    StudyParams {
        range: HourRange::new(Hour(0), Hour(800)),
        regions: vec![State::TX, State::CA],
        // One worker: the crash occurrence then lands at the same fetch
        // in every execution, keeping the printed report byte-identical.
        threads: 1,
        ..StudyParams::default()
    }
}

fn print_report(tag: &str, result: &StudyResult) {
    println!("\n{tag}:");
    for a in &result.spikes {
        println!(
            "  spike {} peak h{} magnitude {:.2}",
            a.spike.state, a.spike.peak.0, a.spike.magnitude
        );
    }
    println!(
        "  frames requested {}, replayed {}, clusters {}",
        result.stats.frames_requested,
        result.stats.frames_replayed,
        result.clusters.len()
    );
}

fn same_result(a: &StudyResult, b: &StudyResult) -> bool {
    a.spikes.len() == b.spikes.len()
        && a.spikes
            .iter()
            .zip(b.spikes.iter())
            .all(|(x, y)| x.spike == y.spike && x.annotations == y.annotations)
        && a.timelines == b.timelines
        && a.clusters.len() == b.clusters.len()
        && a.heavy_hitters == b.heavy_hitters
}

fn main() {
    let args = parse_args();
    println!(
        "resumable crawl, seed {} crashing at {}",
        args.seed,
        args.crash_at.label()
    );

    let service = Arc::new(TrendsService::with_defaults(world(args.seed)));
    let server = Server::new(trends_router(Arc::clone(&service)))
        .with_workers(4)
        .bind("127.0.0.1:0")
        .expect("bind server");
    let client = HttpTrendsClient::new(server.addr(), "127.0.0.61");

    // --- Reference life: the same study, never interrupted.
    let clean_dir = scratch_dir(&format!("resumable_crawl_clean_{}", args.seed));
    let reference = run_study_durable(&client, &study_params(), &StudyDurability::new(&clean_dir))
        .expect("uninterrupted study");
    print_report("uninterrupted run", &reference);

    // --- First life: die at the requested durability boundary. The
    // occurrence is seed-derived, so different seeds die at different
    // fetches; the default panic hook's note on stderr is the expected
    // sign of the injected death.
    let crash_dir = scratch_dir(&format!("resumable_crawl_{}", args.seed));
    let occurrence = 1 + args.seed % 3;
    let inj = Arc::new(CrashInjector::new(
        CrashPlan::nowhere().at(args.crash_at, occurrence),
    ));
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        let durability = StudyDurability::new(&crash_dir).with_crash(Arc::clone(&inj));
        let _ = run_study_durable(&client, &study_params(), &durability);
    }))
    .is_err();
    assert!(
        crashed && inj.tripped(),
        "the injected crash must fire before the study completes"
    );
    println!(
        "\ncrashed at {} (occurrence {occurrence})",
        args.crash_at.label()
    );

    // --- Second life: reopen the same directory with no injector and let
    // recovery replay the journaled work.
    let resumed = run_study_durable(&client, &study_params(), &StudyDurability::new(&crash_dir))
        .expect("resumed study");
    print_report("resumed run", &resumed);
    let mut resumed_from: Vec<(State, u32)> = resumed.stats.resumed_from_round.clone();
    resumed_from.sort_by_key(|(state, _)| *state);
    for (state, round) in &resumed_from {
        println!("  {state} resumed from round {round}");
    }

    // --- The invariant this subsystem exists for.
    println!("\njournal recovery:");
    println!(
        "  records replayed: {}",
        sift::obs::counter("sift_journal_records_replayed_total", &[]).get()
    );
    println!(
        "  torn tails truncated: {}",
        sift::obs::counter("sift_journal_torn_tail_truncated_total", &[]).get()
    );
    if same_result(&resumed, &reference) {
        println!("  resumed result identical to uninterrupted run: yes");
    } else {
        println!("  resumed result DIVERGED from uninterrupted run");
        server.shutdown();
        std::process::exit(1);
    }

    server.shutdown();
}

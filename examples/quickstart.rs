//! Quickstart: the paper's Fig. 2 workflow, end to end.
//!
//! A user asks SIFT about California in the summer of 2020. SIFT plans
//! overlapping weekly frames, crawls the (simulated) trends service with
//! re-fetch averaging, reconstructs a calibrated time series, detects
//! spikes and annotates them with rising search terms. The run surfaces
//! the walkthrough spike of Fig. 2: the San Jose power outage of
//! 17 July 2020 that took Spectrum and Metro PCS down with it.
//!
//! Run with: `cargo run --release --example quickstart`

use sift::core::{report, run_study, StudyParams};
use sift::geo::State;
use sift::simtime::{format_day, format_spike_time, Hour, HourRange};
use sift::trends::{Scenario, ScenarioParams, TrendsService};

fn main() {
    // 1 — Input: time range, area, search term (Fig. 2, step 1).
    let range = HourRange::new(
        Hour::from_ymdh(2020, 6, 1, 0),
        Hour::from_ymdh(2020, 8, 31, 0),
    );
    let area = State::CA;

    // The world: the paper's named events plus a thinned background, so
    // the example runs in a couple of seconds.
    let scenario = Scenario::generate(ScenarioParams {
        background_scale: 0.3,
        ..ScenarioParams::default()
    });
    let service = TrendsService::with_defaults(scenario);

    // 2..7 — plan frames, crawl with re-fetch averaging, stitch, detect,
    // annotate.
    let params = StudyParams {
        range,
        regions: vec![area],
        threads: 1,
        ..StudyParams::default()
    };
    let result = run_study(&service, &params).expect("study runs");

    // 8 — Output: the report.
    println!(
        "SIFT study: {area} ({} – {})",
        format_day(range.start),
        format_day(range.end)
    );
    println!("  {}", sift_summary(&result));
    let timeline = result.timeline(area).expect("timeline exists");
    let compact = report::downsample_max(&timeline.values, 78);
    println!("  interest: {}", report::sparkline(&compact));

    // Rank this window's spikes by magnitude, like the figure's "2nd out
    // of 3" annotation.
    let mut ranked: Vec<_> = result.spikes.iter().collect();
    ranked.sort_by(|a, b| {
        b.spike
            .magnitude
            .partial_cmp(&a.spike.magnitude)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    println!("\ntop spikes by magnitude:");
    for (rank, annotated) in ranked.iter().take(5).enumerate() {
        let s = &annotated.spike;
        let labels: Vec<&str> = annotated
            .annotations
            .iter()
            .map(|a| a.label.as_str())
            .collect();
        println!(
            "  #{:<2} {}  peak {}  duration {:>2} h  magnitude {:>5.1}  [{}]",
            rank + 1,
            format_spike_time(s.start),
            format_spike_time(s.peak),
            s.duration_h(),
            s.magnitude,
            labels.join(", ")
        );
    }

    // The Fig. 2 walkthrough spike: 17 Jul 2020, starting 15:00, with
    // power + provider annotations.
    let walkthrough = result
        .spikes
        .iter()
        .find(|a| a.spike.window().contains(Hour::from_ymdh(2020, 7, 17, 18)))
        .expect("the San Jose outage spike is detected");
    println!("\nFig. 2 walkthrough spike:");
    println!("  start time: {}", walkthrough.spike.start);
    println!("  peak time:  {}", walkthrough.spike.peak);
    println!("  duration:   {} hours", walkthrough.spike.duration_h());
    println!("  power-annotated: {}", walkthrough.power_annotated());
    for a in &walkthrough.annotations {
        println!(
            "  annotation: {:<30} weight {:>8.0} heavy-hitter {}",
            a.label, a.weight, a.heavy_hitter
        );
    }
}

fn sift_summary(result: &sift::core::StudyResult) -> String {
    format!(
        "{} spikes detected, {} frames + {} rising requests issued",
        result.spikes.len(),
        result.stats.frames_requested,
        result.stats.rising_requested
    )
}

//! A seeded chaos run end-to-end: the trends service behind deterministic
//! fault injection (resets, error bursts, truncated bodies), crawled by
//! retrying clients and the requeueing collection run. Every fault
//! decision is a pure function of (seed, request, arrival count), so two
//! executions with the same `--seed` print byte-identical reports —
//! `scripts/check.sh` diffs exactly that.
//!
//! Run with: `cargo run --release --example chaos_crawl -- --seed 7`

use sift::core::{plan_frames, run_study, PlanParams, StudyParams};
use sift::fetcher::{
    trends_router, CollectionRun, HttpTrendsClient, ResponseStore, TrendsClient, WorkItem,
};
use sift::geo::State;
use sift::net::{FaultKind, FaultPlan, RetryPolicy, Server};
use sift::simtime::{Hour, HourRange};
use sift::trends::events::{Cause, OutageEvent, PowerTrigger};
use sift::trends::terms::Provider;
use sift::trends::{FrameRequest, Scenario, SearchTerm, TrendsService};
use std::sync::Arc;
use std::time::Duration;

fn seed_from_args() -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--seed" {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--seed takes an integer");
        }
    }
    7
}

fn world() -> Scenario {
    let mut events = vec![
        OutageEvent {
            id: 0,
            name: "power".into(),
            cause: Cause::Power(PowerTrigger::Storm),
            start: Hour(300),
            duration_h: 8,
            states: vec![(State::TX, 0.3)],
            severity: 9_000.0,
            lags_h: vec![0],
        },
        OutageEvent {
            id: 1,
            name: "isp".into(),
            cause: Cause::IspNetwork(Provider::Spectrum),
            start: Hour(700),
            duration_h: 5,
            states: vec![(State::TX, 0.2)],
            severity: 8_000.0,
            lags_h: vec![0],
        },
    ];
    for (i, start) in (40..900).step_by(70).enumerate() {
        events.push(OutageEvent {
            id: 100 + u32::try_from(i).unwrap_or(u32::MAX),
            name: format!("anchor-{i}"),
            cause: Cause::IspNetwork(Provider::Frontier),
            start: Hour(start),
            duration_h: 2,
            states: vec![(State::TX, 0.02)],
            severity: 8_000.0,
            lags_h: vec![0],
        });
    }
    let mut scenario = Scenario::single_region(State::TX, vec![]);
    scenario.events = events;
    scenario.events.sort_by_key(|e| (e.start, e.id));
    scenario
}

fn main() {
    let seed = seed_from_args();
    println!("chaos crawl, fault seed {seed}");

    // 5% connection resets + 5% internal errors + 2% truncated bodies on
    // every API route. No rate limiter: limiter 429s depend on wall-clock
    // timing and would break the byte-identical replay this example
    // demonstrates.
    let service = Arc::new(TrendsService::with_defaults(world()));
    let server = Server::new(trends_router(Arc::clone(&service)))
        .with_fault_plan(FaultPlan::new(seed).route(
            "/api",
            &[
                (FaultKind::Reset, 0.05),
                (FaultKind::InternalError, 0.05),
                (FaultKind::Truncate, 0.02),
            ],
        ))
        .with_workers(4)
        .bind("127.0.0.1:0")
        .expect("bind server");

    // --- The full study through a retrying client: faults are absorbed
    // below the pipeline, which sees a clean service.
    let range = HourRange::new(Hour(0), Hour(900));
    let unit = HttpTrendsClient::new(server.addr(), "127.0.0.41").with_retry(RetryPolicy {
        max_attempts: 12,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(40),
        jitter: true,
    });
    let params = StudyParams {
        range,
        regions: vec![State::TX],
        threads: 1,
        ..StudyParams::default()
    };
    let result = run_study(&unit, &params).expect("chaos study completes");

    println!("\nstudy under chaos:");
    for a in &result.spikes {
        println!(
            "  spike {} peak h{} magnitude {:.2}",
            a.spike.state, a.spike.peak.0, a.spike.magnitude
        );
    }
    for (state, coverage) in &result.stats.coverage_by_state {
        println!("  coverage {state}: {coverage:.3}");
    }
    println!("  frames degraded: {}", result.stats.frames_degraded);

    // --- The raw collection run with client retries OFF: the same faults
    // now surface as transport failures and the queue's requeue machinery
    // recovers them instead.
    let units: Vec<Arc<dyn TrendsClient>> = (1..=3)
        .map(|i| {
            Arc::new(
                HttpTrendsClient::new(server.addr(), format!("127.0.0.5{i}")).with_retry(
                    RetryPolicy {
                        max_attempts: 1,
                        base_backoff: Duration::from_millis(1),
                        max_backoff: Duration::from_millis(1),
                        jitter: true,
                    },
                ),
            ) as Arc<dyn TrendsClient>
        })
        .collect();
    let plan = plan_frames(range, PlanParams::default());
    let items: Vec<WorkItem> = plan
        .frames
        .iter()
        .map(|f| {
            WorkItem::Frame(FrameRequest {
                term: SearchTerm::parse("topic:Internet outage"),
                state: State::TX,
                start: f.start,
                len: u32::try_from(f.len()).unwrap_or(u32::MAX),
                tag: 99,
            })
        })
        .collect();
    let total = items.len();
    let run = CollectionRun::new(units).with_attempt_budget(12);
    let mut store = ResponseStore::new();
    let report = run.execute(items, &mut store);
    println!("\ncollection run without client retries:");
    println!(
        "  completed {}/{total}, requeued {}, permanently failed {}",
        report.completed, report.requeued, report.failed
    );

    // --- What the injector actually did, straight from the registry the
    // server exposes at GET /metrics.
    println!("\ninjected faults by kind:");
    for kind in FaultKind::ALL {
        let n =
            sift::obs::counter("sift_net_faults_injected_total", &[("kind", kind.label())]).get();
        println!("  {}: {n}", kind.label());
    }
    println!("\nclient retries by cause:");
    for status in ["io", "500", "503", "429"] {
        let n = sift::obs::counter("sift_client_retries_total", &[("status", status)]).get();
        println!("  {status}: {n}");
    }

    server.shutdown();
}

//! Live telemetry: crawl a rate-limited trends service over HTTP, then
//! scrape the server's own `GET /metrics` endpoint — request latencies by
//! route, per-identity 429 counts, crawl throughput and study-stage span
//! timings, all in Prometheus text format. The run's trace tree (client
//! and server spans joined across the HTTP boundary by `X-Sift-Trace`)
//! is exported as Chrome trace-event JSON — load it at
//! <https://ui.perfetto.dev> — and summarized as a critical-path report.
//!
//! Run with: `cargo run --release --example observability`
//!
//! Set `SIFT_OBS_HOLD_SECS=60` to keep the server up after the crawl so an
//! external scraper can pull the same exposition:
//!
//! ```bash
//! SIFT_OBS_HOLD_SECS=60 cargo run --release --example observability &
//! curl http://<printed addr>/metrics
//! ```

use sift::core::{run_study, StudyParams};
use sift::fetcher::{trends_router, HttpTrendsClient, RoundRobin, TrendsClient};
use sift::geo::State;
use sift::net::{HttpClient, RateLimiterConfig, Request, Server};
use sift::simtime::{Hour, HourRange};
use sift::trends::{Scenario, ScenarioParams, TrendsService};
use std::sync::Arc;

fn main() {
    let scenario = Scenario::generate(ScenarioParams {
        background_scale: 0.1,
        ..ScenarioParams::default()
    });
    let service = Arc::new(TrendsService::with_defaults(scenario));
    let server = Server::new(trends_router(Arc::clone(&service)))
        .with_rate_limiter(RateLimiterConfig {
            capacity: 20.0,
            refill_per_sec: 40.0,
            ..RateLimiterConfig::default()
        })
        .with_workers(8)
        .bind("127.0.0.1:0")
        .expect("bind server");
    println!("trends service listening on http://{}", server.addr());

    // Two fetcher units behind distinct identities crawl one spring month.
    let units: Vec<Arc<dyn TrendsClient>> = (1..=2)
        .map(|i| {
            Arc::new(HttpTrendsClient::new(server.addr(), format!("127.0.0.{i}")))
                as Arc<dyn TrendsClient>
        })
        .collect();
    let client = RoundRobin::new(units);
    let params = StudyParams {
        range: HourRange::new(
            Hour::from_ymdh(2020, 3, 1, 0),
            Hour::from_ymdh(2020, 4, 30, 0),
        ),
        regions: vec![State::CA, State::TX],
        daily_rising: false,
        threads: 2,
        ..StudyParams::default()
    };
    println!("running the SIFT study over HTTP ...");
    // A root span here makes the whole crawl one trace: the study's
    // pipeline spans, every HTTP attempt the queue issues, and the
    // server-side serve spans (joined via the X-Sift-Trace header) all
    // land in a single tree that completes when the last one closes.
    let run_span = sift::obs::span_root("observability");
    let trace_id = run_span.context().trace_id;
    let result = run_study(&client, &params).expect("study over http");
    drop(run_span);
    println!(
        "{} spikes; {} frames requested\n\nper-stage telemetry:\n{}",
        result.spikes.len(),
        result.stats.frames_requested,
        result.stats.telemetry
    );

    // Export the finished trace for Perfetto and walk its critical path.
    let trace = sift::obs::trace::wait_completed(trace_id, std::time::Duration::from_secs(10))
        .expect("run trace completes");
    let trace_path = std::path::Path::new("target").join("observability-trace.json");
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write(&trace_path, sift::obs::chrome_trace_json(&trace)).expect("write trace export");
    println!(
        "exported {} spans ({} client request attempts, {} server serves) -> {}",
        trace.spans.len(),
        trace.spans.iter().filter(|s| s.name == "request").count(),
        trace.spans.iter().filter(|s| s.name == "serve").count(),
        trace_path.display()
    );
    let cp = sift::obs::critical_path(&trace).expect("trace has a root");
    print!("{cp}");

    // Scrape our own server the way any Prometheus collector would.
    let scrape = HttpClient::new(server.addr());
    let resp = scrape
        .send(&Request::get("/metrics"))
        .expect("scrape /metrics");
    let text = String::from_utf8_lossy(&resp.body);
    println!(
        "scraped /metrics: {} series lines; a sample:",
        text.lines().count()
    );
    for line in text.lines().filter(|l| {
        l.starts_with("sift_http_request_seconds_count")
            || l.starts_with("sift_trends_frames_served_total")
            || l.starts_with("sift_ratelimit_rejected_total")
            || l.starts_with("sift_span_seconds_count")
    }) {
        println!("  {line}");
    }

    let hold = std::env::var("SIFT_OBS_HOLD_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    if hold > 0 {
        println!(
            "\nholding the server for {hold}s — scrape http://{}/metrics",
            server.addr()
        );
        std::thread::sleep(std::time::Duration::from_secs(hold));
    }
    server.shutdown();
    println!("server shut down cleanly");
}

//! The paper's Fig. 1: the `<Internet outage>` popularity index in Texas
//! during the winter of 2021, with the Verizon east-coast outage
//! (26 Jan) and the winter-storm power outage (15 Feb) standing out.
//!
//! Run with: `cargo run --release --example texas_winter_storm`

use sift::core::{report, run_study, StudyParams};
use sift::geo::State;
use sift::simtime::{format_day, format_spike_time, Hour, HourRange};
use sift::trends::{Scenario, ScenarioParams, TrendsService};

fn main() {
    // Fig. 1's x-axis: 19 Jan – 21 Feb 2021 (we crawl a wider window so
    // the cut is calibrated against its surroundings, as SIFT does).
    let crawl = HourRange::new(
        Hour::from_ymdh(2021, 1, 4, 0),
        Hour::from_ymdh(2021, 3, 8, 0),
    );
    let cut = HourRange::new(
        Hour::from_ymdh(2021, 1, 19, 0),
        Hour::from_ymdh(2021, 2, 21, 0),
    );

    let scenario = Scenario::generate(ScenarioParams {
        background_scale: 0.5,
        ..ScenarioParams::default()
    });
    let service = TrendsService::with_defaults(scenario);

    let params = StudyParams {
        range: crawl,
        regions: vec![State::TX],
        threads: 1,
        ..StudyParams::default()
    };
    let result = run_study(&service, &params).expect("study runs");
    let timeline = result.timeline(State::TX).expect("timeline exists");

    println!(
        "<Internet outage> popularity index, Texas, {} – {}",
        format_day(cut.start),
        format_day(cut.end)
    );

    // Render the cut week by week.
    let mut week_start = cut.start;
    while week_start < cut.end {
        let week = HourRange::new(week_start, (week_start + 168).min(cut.end));
        let values: Vec<f64> = week.iter().filter_map(|h| timeline.value_at(h)).collect();
        let compact = report::downsample_max(&values, 56);
        println!(
            "  {}  {}",
            format_day(week.start),
            report::sparkline(&compact)
        );
        week_start = week.end;
    }

    println!("\nspikes in the figure window (the circled ones are news-verified):");
    let mut spikes: Vec<_> = result
        .spikes
        .iter()
        .filter(|a| a.spike.window().overlaps(&cut))
        .collect();
    spikes.sort_by(|a, b| {
        b.spike
            .magnitude
            .partial_cmp(&a.spike.magnitude)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for a in spikes.iter().take(8) {
        println!(
            "  {}  magnitude {:>5.1}  duration {:>2} h  [{}]",
            format_spike_time(a.spike.start),
            a.spike.magnitude,
            a.spike.duration_h(),
            a.annotations
                .iter()
                .map(|x| x.label.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // The two news stories of Fig. 1.
    let storm = spikes
        .iter()
        .find(|a| a.spike.window().contains(Hour::from_ymdh(2021, 2, 15, 20)))
        .expect("winter storm spike detected");
    println!(
        "\nwinter storm: detected {} h of user interest (paper: 45 h), power-annotated: {}",
        storm.spike.duration_h(),
        storm.power_annotated()
    );
    let verizon = spikes
        .iter()
        .find(|a| a.spike.window().contains(Hour::from_ymdh(2021, 1, 26, 18)));
    match verizon {
        Some(v) => println!(
            "verizon outage: detected {} h, annotations [{}]",
            v.spike.duration_h(),
            v.annotations
                .iter()
                .map(|x| x.label.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ),
        None => println!("verizon outage: not detected in this run"),
    }
}

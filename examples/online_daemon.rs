//! The online detector daemon end-to-end: a seeded world is served by
//! the daemon as the simulated clock advances — spikes seal and stream
//! out over HTTP long-polls — then a second daemon is killed mid-ingest
//! at a durability boundary and restarted, and the example diffs its
//! recovered spike set against the uninterrupted one. Everything printed
//! to stdout is a pure function of the scenario seed (staleness and
//! timing, which are host-dependent, go to stderr), so two executions
//! with the same `--seed` print byte-identical reports —
//! `scripts/check.sh` diffs exactly that.
//!
//! Run with:
//! `cargo run --release --example online_daemon -- --seed 7`

use sift::geo::State;
use sift::journal::testutil::scratch_dir;
use sift::journal::{CrashInjector, CrashPlan, CrashSite};
use sift::net::{HttpClient, Request};
use sift::serve::{Daemon, ServeConfig, SpikesReply};
use sift::simtime::{Hour, HourRange, SimClock};
use sift::trends::events::{Cause, OutageEvent, PowerTrigger};
use sift::trends::terms::Provider;
use sift::trends::{Scenario, SearchTerm, TrendsClient, TrendsService};
use std::sync::Arc;
use std::time::Duration;

fn parse_seed() -> u64 {
    let mut seed = 7;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            other => panic!("unknown flag {other}"),
        }
    }
    seed
}

/// The seeded world: the seed shifts event timing so different seeds
/// genuinely serve different data, while the same seed replays the same
/// world in every process.
fn world(seed: u64) -> Scenario {
    let jitter = i64::try_from(seed % 37).unwrap_or(0);
    let mut events = vec![
        OutageEvent {
            id: 0,
            name: "power".into(),
            cause: Cause::Power(PowerTrigger::Storm),
            start: Hour(280 + jitter),
            duration_h: 8,
            states: vec![(State::TX, 0.3), (State::CA, 0.2)],
            severity: 9_000.0,
            lags_h: vec![0, 0],
        },
        OutageEvent {
            id: 1,
            name: "isp".into(),
            cause: Cause::IspNetwork(Provider::Spectrum),
            start: Hour(590 + jitter),
            duration_h: 5,
            states: vec![(State::CA, 0.2)],
            severity: 8_000.0,
            lags_h: vec![0],
        },
    ];
    for (i, start) in (40..800).step_by(70).enumerate() {
        for (j, state) in [State::TX, State::CA].into_iter().enumerate() {
            events.push(OutageEvent {
                id: 100 + u32::try_from(i * 2 + j).unwrap_or(u32::MAX),
                name: format!("anchor-{i}-{state}"),
                cause: Cause::IspNetwork(Provider::Frontier),
                start: Hour(start + 11 * i64::try_from(j).unwrap_or(0)),
                duration_h: 2,
                states: vec![(state, 0.02)],
                severity: 8_000.0,
                lags_h: vec![0],
            });
        }
    }
    let mut scenario = Scenario::single_region(State::TX, vec![]);
    scenario.params.regions = vec![State::TX, State::CA];
    scenario.events = events;
    scenario.events.sort_by_key(|e| (e.start, e.id));
    scenario
}

fn serve_config() -> ServeConfig {
    let mut cfg = ServeConfig::new(
        SearchTerm::parse("topic:Internet outage"),
        vec![State::TX, State::CA],
        HourRange::new(Hour(0), Hour(800)),
    );
    cfg.checkpoint_every = 3;
    cfg
}

fn read_spikes(daemon: &Daemon, region: &str) -> SpikesReply {
    let resp = HttpClient::new(daemon.addr())
        .with_timeout(Duration::from_secs(60))
        .send(&Request::get(format!("/spikes?region={region}")))
        .expect("read spikes");
    if let Some(ms) = resp.headers.get("x-sift-staleness-ms") {
        eprintln!("  [{region}] staleness {ms}ms");
    }
    let text = std::str::from_utf8(&resp.body).expect("utf8 body");
    serde_json::from_str(text).expect("spikes reply")
}

fn print_spikes(tag: &str, reply: &SpikesReply) {
    println!(
        "\n{tag} ({} spikes, watermark h{}):",
        reply.spikes.len(),
        reply.watermark
    );
    for s in &reply.spikes {
        println!(
            "  spike {} h{}..h{} peak h{} magnitude {:.2}",
            s.state, s.start.0, s.end.0, s.peak.0, s.magnitude
        );
    }
}

fn main() {
    let seed = parse_seed();
    println!("online daemon, seed {seed}");
    let upstream = Arc::new(TrendsService::with_defaults(world(seed)));

    // --- Life one: a daemon follows the clock through the range,
    // streaming newly sealed spikes to a long-poll subscriber.
    let clock = Arc::new(SimClock::new(Hour(400)));
    let dir = scratch_dir(&format!("online_daemon_clean_{seed}"));
    let daemon = Daemon::start(
        serve_config(),
        Arc::clone(&upstream) as Arc<dyn TrendsClient>,
        Arc::clone(&clock),
        &dir,
    )
    .expect("start daemon");
    assert!(daemon.wait_caught_up(Duration::from_secs(30)));
    let halfway = read_spikes(&daemon, "TX");
    print_spikes("TX at simulated hour 400", &halfway);

    // Subscribe past the current cursor, then advance the clock: the
    // parked long-poll wakes as soon as the next spike seals.
    let addr = daemon.addr();
    let cursor = halfway.cursor;
    let subscriber = std::thread::spawn(move || {
        let resp = HttpClient::new(addr)
            .with_timeout(Duration::from_secs(60))
            .send(&Request::get(format!(
                "/spikes/subscribe?region=TX&cursor={cursor}"
            )))
            .expect("subscribe");
        let text = std::str::from_utf8(&resp.body).expect("utf8 body");
        serde_json::from_str::<SpikesReply>(text).expect("subscribe reply")
    });
    clock.set(Hour(800));
    assert!(daemon.wait_caught_up(Duration::from_secs(30)));
    // How *many* spikes had sealed by wake time is a race between the
    // ingest thread and the long-poll; only the fact of waking past the
    // cursor is deterministic, so that is all the report states.
    let woke = subscriber.join().expect("subscriber thread");
    println!(
        "\nsubscriber long-poll woke past cursor {}: {}",
        halfway.cursor,
        if woke.cursor > halfway.cursor {
            "yes"
        } else {
            "no"
        }
    );

    let reference_tx = read_spikes(&daemon, "TX");
    let reference_ca = read_spikes(&daemon, "CA");
    print_spikes("TX at simulated hour 800", &reference_tx);
    print_spikes("CA at simulated hour 800", &reference_ca);
    daemon.shutdown();

    // --- Life two: the same world, but the ingest thread is killed at a
    // seed-derived durability boundary; the front keeps serving.
    let crash_dir = scratch_dir(&format!("online_daemon_crash_{seed}"));
    let occurrence = 2 + seed % 5;
    let inj = Arc::new(CrashInjector::new(
        CrashPlan::nowhere().at(CrashSite::AfterJournalRecord, occurrence),
    ));
    let clock = Arc::new(SimClock::new(Hour(800)));
    let crashed = Daemon::start_with_crash(
        serve_config(),
        Arc::clone(&upstream) as Arc<dyn TrendsClient>,
        Arc::clone(&clock),
        &crash_dir,
        Some(Arc::clone(&inj)),
    )
    .expect("start crashing daemon");
    while !crashed.ingest_dead() {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(inj.tripped());
    let during = read_spikes(&crashed, "TX");
    println!(
        "\ningest killed after journal record {occurrence}; front still serves {} spike(s)",
        during.spikes.len()
    );
    crashed.shutdown();

    // --- Life three: restart on the orphaned checkpoint + WAL and let
    // recovery replay the tail through the same apply path.
    let resumed = Daemon::start(
        serve_config(),
        upstream as Arc<dyn TrendsClient>,
        clock,
        &crash_dir,
    )
    .expect("restart daemon");
    assert!(resumed.wait_caught_up(Duration::from_secs(30)));
    let resumed_tx = read_spikes(&resumed, "TX");
    let resumed_ca = read_spikes(&resumed, "CA");
    print_spikes("TX after crash + recovery", &resumed_tx);
    resumed.shutdown();

    println!("\ncrash recovery:");
    println!(
        "  frames replayed from WAL: {}",
        sift::obs::counter("sift_serve_frames_replayed_total", &[("region", "TX")]).get()
            + sift::obs::counter("sift_serve_frames_replayed_total", &[("region", "CA")]).get()
    );
    if resumed_tx.spikes == reference_tx.spikes && resumed_ca.spikes == reference_ca.spikes {
        println!("  recovered spike set identical to uninterrupted run: yes");
    } else {
        println!("  recovered spike set DIVERGED from uninterrupted run");
        std::process::exit(1);
    }
}

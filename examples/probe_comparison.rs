//! SIFT vs. active probing: the §4 cross-validation.
//!
//! The same ground truth drives both detectors. SIFT sees what users
//! feel — including the T-Mobile, Akamai and Youtube-style outages that
//! stay perfectly pingable — while the probing baseline only sees events
//! that break reachability (ISP and power outages).
//!
//! Run with: `cargo run --release --example probe_comparison`

use sift::core::{run_study, StudyParams};
use sift::geo::{AddressPlan, GeoDb, State};
use sift::probe::{address::PopulationMix, cross_validate, AddressPopulation, ProbeConfig, Prober};
use sift::simtime::{Hour, HourRange};
use sift::trends::terms::Provider;
use sift::trends::{Cause, OutageEvent, PowerTrigger, Scenario, TrendsService};

fn main() {
    // A compact world with one event of each visibility class, plus
    // anchor outages that keep the trends frames calibrated.
    let mk = |id: u32, name: &str, cause: Cause, day: u8, dur: u32, reach: f64| OutageEvent {
        id,
        name: name.to_owned(),
        cause,
        start: Hour::from_ymdh(2020, 3, day, 16),
        duration_h: dur,
        states: vec![(State::TX, reach)],
        severity: 9_000.0,
        lags_h: vec![0],
    };
    let mut events = vec![
        mk(
            0,
            "power outage (storm)",
            Cause::Power(PowerTrigger::Storm),
            3,
            8,
            0.3,
        ),
        mk(
            1,
            "ISP outage",
            Cause::IspNetwork(Provider::Comcast),
            8,
            6,
            0.25,
        ),
        mk(
            2,
            "mobile carrier outage",
            Cause::MobileCarrier(Provider::TMobile),
            13,
            7,
            0.3,
        ),
        mk(
            3,
            "CDN/DNS outage",
            Cause::CdnOrCloud(Provider::Akamai),
            18,
            5,
            0.35,
        ),
        mk(
            4,
            "application outage",
            Cause::Application(Provider::Youtube),
            23,
            5,
            0.3,
        ),
    ];
    for (i, day) in (1..28).step_by(2).enumerate() {
        // Tiny reach: enough to anchor the trends frames, too small to
        // register as a probe-level surge near the headline events.
        events.push(mk(
            100 + u32::try_from(i).unwrap_or(u32::MAX),
            "anchor",
            Cause::IspNetwork(Provider::Frontier),
            day,
            2,
            0.004,
        ));
    }
    let scenario = Scenario::single_region(State::TX, events);

    // --- SIFT's view.
    let service = TrendsService::with_defaults(scenario.clone());
    let params = StudyParams {
        range: HourRange::new(
            Hour::from_ymdh(2020, 2, 24, 0),
            Hour::from_ymdh(2020, 4, 6, 0),
        ),
        regions: vec![State::TX],
        daily_rising: false,
        threads: 1,
        ..StudyParams::default()
    };
    let study = run_study(&service, &params).expect("study runs");
    println!("SIFT detected {} spikes", study.spikes.len());

    // --- The probing baseline's view over the same world.
    let plan = AddressPlan::proportional(4_000);
    let population = AddressPopulation::new(&plan, PopulationMix::default(), 11);
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(12);
    let geodb = GeoDb::from_plan(&plan, 0.03, &mut rng);
    let prober = Prober::new(ProbeConfig::default(), &population, &geodb);
    let dataset = prober.run(&scenario, params.range);
    println!("probing inferred {} block outages", dataset.len());

    // --- Cross-validate ground truth against both.
    let report = cross_validate(&scenario, &study.bare_spikes(), &dataset, 5);
    println!(
        "\n{:<28} {:<14} {:>6} {:>7}",
        "event", "cause", "SIFT", "probes"
    );
    for e in &report.events {
        println!(
            "{:<28} {:<14} {:>6} {:>7}{}",
            e.name,
            e.cause,
            if e.sift_detected { "yes" } else { "no" },
            if e.probe_detected { "yes" } else { "no" },
            if !e.probe_visible_in_principle {
                "   (invisible to pings)"
            } else {
                ""
            }
        );
    }
    println!(
        "\nsummary: both {}, SIFT-only {}, probes-only {}, neither {}",
        report.both, report.sift_only, report.probe_only, report.neither
    );
    println!(
        "the SIFT-only rows are the paper's point: user-affecting outages that \
         never stop answering pings (§4.1–4.2)"
    );
}

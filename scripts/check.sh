#!/usr/bin/env bash
# Full local gate: release build, every test in the workspace, and a
# warning-free clippy pass. The build environment has no crates.io access
# (external deps resolve to the vendored shims), hence --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline --workspace
cargo clippy --workspace --offline -- -D warnings
echo "all checks passed"

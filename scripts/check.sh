#!/usr/bin/env bash
# Full local gate: release build, every test in the workspace, the
# sift-lint static-analysis pass, a warning-free clippy pass over all
# targets, and rustfmt. The build environment has no crates.io access
# (external deps resolve to the vendored shims), hence --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline --workspace
cargo run -p sift-lint --release --offline -- --json
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo fmt --check
echo "all checks passed"

#!/usr/bin/env bash
# Full local gate: release build, every test in the workspace, the
# sift-lint static-analysis pass, a warning-free clippy pass over all
# targets, and rustfmt. The build environment has no crates.io access
# (external deps resolve to the vendored shims), hence --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline --workspace

# Static-analysis gate, exercised the way CI hits it: a cold cached run
# (populates target/sift-lint-cache.json), a warm run that must reuse it
# and agree byte-for-byte, and the stale-suppression audit so inline
# allows cannot outlive the findings they excuse.
rm -f target/sift-lint-cache.json
cargo run -p sift-lint --release --offline -- --json --cache --timing \
  > target/lint-cold.json
cargo run -p sift-lint --release --offline -- --json --cache --timing \
  > target/lint-warm.json
diff target/lint-cold.json target/lint-warm.json \
  || { echo "cached lint run diverged from the cold run" >&2; exit 1; }
cargo run -p sift-lint --release --offline -- --audit-allows

cargo clippy --workspace --all-targets --offline -- -D warnings
cargo fmt --check

# Chaos determinism gate: two runs of the seeded fault-injection example
# must produce byte-identical reports (fault decisions are a pure
# function of seed + request + arrival, never of timing).
cargo build --release --offline --example chaos_crawl
./target/release/examples/chaos_crawl --seed 7 > target/chaos-a.txt
./target/release/examples/chaos_crawl --seed 7 > target/chaos-b.txt
diff target/chaos-a.txt target/chaos-b.txt \
  || { echo "chaos replay diverged between same-seed runs" >&2; exit 1; }

# Overload gate: the acceptance test pins a server, sheds a 4x burst,
# opens and re-closes the breaker, and replays the whole choreography to
# an identical report. Runs as part of the workspace pass above too; the
# explicit invocation keeps the gate loud if the test file is ever
# dropped from the workspace manifest.
cargo test -q --offline --test overload_http

# Crash-consistency gate: a seeded crawl killed at each durability
# boundary (in-process panic and out-of-process abort) must resume to
# the identical result, re-fetching at most the one in-flight response.
cargo test -q --offline --test resume_http

# Sharded-crawl gate: a coordinator plus in-process workers over real
# sockets must assemble a StudyResult bit-identical to single-process
# run_study — including when a worker is killed mid-run, its heartbeats
# go silent, and its shards reroute to the survivors.
cargo test -q --offline --test cluster_http

# Perf-trajectory gate: a reduced-scale bench smoke re-runs the study
# and derives end-to-end + per-stage timings from its trace tree. The
# emitted profile must validate as `sift-bench/1` and stay inside the
# committed baseline's tolerance band (>15% end-to-end regression, or a
# stage beyond its wider band, fails the build). The baseline is the
# newest committed BENCH_<date>.json, regenerated with the same flags.
cargo build --release --offline -p sift-bench --bins
./target/release/experiments --quick --only none --threads 1 \
  --bench-out target/bench-smoke.json > /dev/null 2> target/bench-smoke.log
baseline=$(ls BENCH_*.json | sort | tail -1)
./target/release/bench_gate target/bench-smoke.json "$baseline" \
  || { echo "bench gate failed against ${baseline}" >&2; exit 1; }

# Resume determinism gate: two same-seed runs of the crash-and-resume
# example must print byte-identical reports (the injected crash lands at
# the same fetch, recovery replays the same journal, the resumed result
# diffs clean against the uninterrupted run inside the example itself).
cargo build --release --offline --example resumable_crawl
./target/release/examples/resumable_crawl --seed 7 --crash-at mid_journal_record \
  > target/resume-a.txt 2> /dev/null
./target/release/examples/resumable_crawl --seed 7 --crash-at mid_journal_record \
  > target/resume-b.txt 2> /dev/null
diff target/resume-a.txt target/resume-b.txt \
  || { echo "resumed replay diverged between same-seed runs" >&2; exit 1; }

# Nemesis gate: the acceptance test kills and recovers the coordinator
# mid-run and partitions a worker, converging to the clean baseline; then
# two same-seed runs of the quick nemesis example must print
# byte-identical reports (stdout is a pure function of the seed — the
# schedule, the converged spikes, and the kill/restart/recovery audit;
# timing-dependent observations go to stderr, which is discarded).
cargo test -q --offline --test nemesis_http
cargo build --release --offline --example nemesis_crawl
./target/release/examples/nemesis_crawl --seed 42 --quick \
  > target/nemesis-a.txt 2> /dev/null
./target/release/examples/nemesis_crawl --seed 42 --quick \
  > target/nemesis-b.txt 2> /dev/null
diff target/nemesis-a.txt target/nemesis-b.txt \
  || { echo "nemesis replay diverged between same-seed runs" >&2; exit 1; }

# Serving gate: the daemon acceptance test crashes ingest at every
# durability boundary (in-process panic and out-of-process abort) and
# must recover to the identical spike set while the front keeps serving;
# then two same-seed runs of the online-daemon example must print
# byte-identical reports (spike tables are a pure function of the seed;
# host-timing observations like staleness go to stderr, discarded here).
cargo test -q --offline --test serve_http
cargo build --release --offline --example online_daemon
./target/release/examples/online_daemon --seed 7 \
  > target/serve-a.txt 2> /dev/null
./target/release/examples/online_daemon --seed 7 \
  > target/serve-b.txt 2> /dev/null
diff target/serve-a.txt target/serve-b.txt \
  || { echo "online daemon diverged between same-seed runs" >&2; exit 1; }

echo "all checks passed"

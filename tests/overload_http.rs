//! Overload acceptance: the full overload-control stack over real
//! sockets.
//!
//! A trends server with tight admission limits is pinned by held and
//! queued connections, then hit with a 4× burst: every burst request must
//! be *shed* (instant `503 + Retry-After`, written before the request is
//! even parsed) rather than timed out. A collection run against the
//! overloaded server drives the shared circuit breaker open after exactly
//! `failure_threshold` failures, after which the queue sheds its
//! lowest-priority tail — surfaced in [`RunReport::shed_items`], distinct
//! from `failed_items`. Once the overload clears and the cooldown passes,
//! a half-open probe re-closes the breaker, and a post-burst study over
//! the same server matches the unloaded in-process study exactly. The
//! whole choreography is deterministic: two runs produce identical
//! reports and breaker transition logs.

use sift::core::{run_study, StudyParams};
use sift::fetcher::{
    trends_router, CollectionRun, HttpTrendsClient, ResponseStore, RunReport, ShedCause,
    TrendsClient, WorkItem,
};
use sift::geo::State;
use sift::net::{
    AdmissionConfig, BreakerConfig, BreakerState, CircuitBreaker, HttpClient, Method, Request,
    Response, RetryPolicy, Server, StatusCode,
};
use sift::simtime::{Hour, HourRange};
use sift::trends::terms::Provider;
use sift::trends::{Cause, FrameRequest, OutageEvent, Scenario, SearchTerm, TrendsService};
use std::io::Read;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The run choreography below reads global gauges (accept-queue depth,
/// in-flight); concurrent integration tests in this binary would race
/// them, so everything serialises here.
static RUN_LOCK: Mutex<()> = Mutex::new(());

/// A manually-opened gate parking the `/hold` handler.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        let mut open = self.open.lock().unwrap_or_else(|e| e.into_inner());
        *open = true;
        self.cv.notify_all();
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().unwrap_or_else(|e| e.into_inner());
        while !*open {
            let (guard, timeout) = self
                .cv
                .wait_timeout(open, Duration::from_secs(30))
                .unwrap_or_else(|e| e.into_inner());
            open = guard;
            assert!(!timeout.timed_out(), "gate never opened");
        }
    }
}

/// Opens the gate when dropped so a failing assertion cannot leave the
/// server's workers parked forever (the handle drop joins them).
struct OpenOnDrop(Arc<Gate>);

impl Drop for OpenOnDrop {
    fn drop(&mut self) {
        self.0.open();
    }
}

fn world() -> Scenario {
    let mut events = vec![OutageEvent {
        id: 0,
        name: "isp".into(),
        cause: Cause::IspNetwork(Provider::Spectrum),
        start: Hour(300),
        duration_h: 6,
        states: vec![(State::CA, 0.25)],
        severity: 9_000.0,
        lags_h: vec![0],
    }];
    for (i, start) in (40..760).step_by(60).enumerate() {
        events.push(OutageEvent {
            id: 100 + i as u32,
            name: format!("anchor-{i}"),
            cause: Cause::IspNetwork(Provider::Frontier),
            start: Hour(start),
            duration_h: 2,
            states: vec![(State::CA, 0.02)],
            severity: 8_000.0,
            lags_h: vec![0],
        });
    }
    let mut scenario = Scenario::single_region(State::CA, vec![]);
    scenario.events = events;
    scenario.events.sort_by_key(|e| (e.start, e.id));
    scenario
}

fn frame_items() -> Vec<(WorkItem, i32)> {
    (0..6)
        .map(|i| {
            (
                WorkItem::Frame(FrameRequest {
                    term: SearchTerm::parse("topic:Internet outage"),
                    state: State::CA,
                    start: Hour(i64::from(i) * 168),
                    len: 168,
                    tag: 0,
                }),
                // Descending priority in submission order: the shed tail
                // is the low-priority end.
                5 - i,
            )
        })
        .collect()
}

fn poll_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// One full overload → shed → recover choreography. Returns the
/// collection report and the breaker's transition log for the replay
/// comparison.
fn overload_run(service: &Arc<TrendsService>) -> (RunReport, Vec<String>) {
    let gate = Gate::new();
    let hold_gate = Arc::clone(&gate);
    let router = trends_router(Arc::clone(service)).route(Method::Get, "/hold", move |_| {
        hold_gate.wait_open();
        Response::text(StatusCode(200), "held")
    });
    let server = Server::new(router)
        .with_workers(2)
        .with_admission(AdmissionConfig {
            max_inflight: 2,
            max_queue: 2,
            retry_after_secs: 2,
        })
        .bind("127.0.0.1:0")
        .expect("bind");
    let _open_guard = OpenOnDrop(Arc::clone(&gate));
    let addr = server.addr();

    // Pin both workers on held requests…
    let holders: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let c = HttpClient::new(addr);
                c.send(&Request::get("/hold")).expect("held request")
            })
        })
        .collect();
    poll_until("both workers held", || server.inflight() == 2);

    // …and fill the accept queue with two parked connections.
    let parkers: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(addr).expect("parker connects"))
        .collect();
    let queue_depth = sift::obs::gauge("sift_net_accept_queue_depth", &[]);
    poll_until("accept queue full", || queue_depth.get() == 2);

    // 4× burst against an in-flight capacity of 2: every connection is
    // shed at accept — an instant canned 503 with a Retry-After hint,
    // written before any request bytes are read, not a timeout.
    for i in 0..8 {
        let started = Instant::now();
        let mut conn = TcpStream::connect(addr).expect("burst connects");
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        let mut wire = String::new();
        conn.read_to_string(&mut wire).expect("read shed response");
        assert!(
            wire.starts_with("HTTP/1.1 503"),
            "burst {i} expected a shed 503, got: {wire:?}"
        );
        assert!(wire.contains("retry-after: 2"), "burst {i}: {wire:?}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "burst {i} waited {:?}: shed must not be a timeout",
            started.elapsed()
        );
    }

    // A collection run against the overloaded server, sharing one breaker
    // between the unit's HTTP client (which records outcomes) and the
    // queue (which sheds on open). Three failures open it; the run then
    // sheds everything still queued, lowest priority last to be reported
    // first.
    let breaker = Arc::new(CircuitBreaker::new(
        "trends",
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(60),
            success_threshold: 1,
        },
    ));
    let unit = Arc::new(
        HttpTrendsClient::new(addr, "127.0.0.77")
            .with_retry(RetryPolicy {
                max_attempts: 1,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(1),
                jitter: true,
            })
            .with_breaker(Arc::clone(&breaker)),
    );
    let run = CollectionRun::new(vec![Arc::clone(&unit) as Arc<dyn TrendsClient>])
        .with_attempt_budget(2)
        .with_breaker(Arc::clone(&breaker));
    let mut store = ResponseStore::new();
    let report = run.execute_prioritized(frame_items(), &mut store);

    assert_eq!(report.completed, 0, "{report:?}");
    assert_eq!(report.failed, 0, "overload must shed, not fail: {report:?}");
    assert_eq!(report.requeued, 2, "{report:?}");
    assert_eq!(report.shed, 6, "{report:?}");
    assert_eq!(report.shed_items.len(), 6);
    assert!(report.failed_items.is_empty());
    // Lowest priority first in the shed report.
    let shed_priorities: Vec<i32> = report.shed_items.iter().map(|s| s.priority).collect();
    assert_eq!(shed_priorities, vec![0, 1, 2, 3, 4, 5]);
    assert!(report
        .shed_items
        .iter()
        .any(|s| s.reason == ShedCause::BreakerOpen));
    assert_eq!(store.frame_count(), 0);
    assert_eq!(breaker.state(), BreakerState::Open);
    assert_eq!(breaker.transition_log(), vec!["closed->open".to_owned()]);
    assert!(!unit.healthy(), "open breaker must surface in healthy()");

    // Clear the overload: open the gate, let the holders finish, release
    // the parked connections.
    gate.open();
    for h in holders {
        let resp = h.join().expect("holder thread");
        assert_eq!(resp.status, StatusCode(200));
    }
    drop(parkers);
    poll_until("server drained", || server.inflight() == 0);

    // The shed storm is visible in the exposition.
    let metrics = HttpClient::new(addr)
        .send(&Request::get("/metrics"))
        .expect("metrics");
    let text = String::from_utf8(metrics.body.to_vec()).expect("utf8 metrics");
    assert!(
        text.contains("sift_net_admission_shed_total{reason=\"queue_full\"}"),
        "metrics must expose the shed counter:\n{text}"
    );
    assert!(text.contains("sift_net_inflight"), "{text}");
    assert!(text.contains("sift_client_breaker_state"), "{text}");

    // Recovery: after the cooldown a single half-open probe re-closes the
    // breaker (success_threshold = 1).
    breaker.fast_forward(Duration::from_secs(61));
    let probe = unit
        .fetch_frame(&FrameRequest {
            term: SearchTerm::parse("topic:Internet outage"),
            state: State::CA,
            start: Hour(0),
            len: 168,
            tag: 0,
        })
        .expect("half-open probe succeeds against the unloaded server");
    assert_eq!(probe.values.len(), 168);
    assert_eq!(breaker.state(), BreakerState::Closed);
    assert!(unit.healthy());
    let log = breaker.transition_log();
    assert_eq!(
        log,
        vec![
            "closed->open".to_owned(),
            "open->half_open".to_owned(),
            "half_open->closed".to_owned(),
        ]
    );

    server.shutdown();
    (report, log)
}

#[test]
fn overload_burst_sheds_deterministically_then_recovers() {
    let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let service = Arc::new(TrendsService::with_defaults(world()));

    // The same choreography twice: overload control is deterministic, so
    // the reports and breaker transition logs must be identical.
    let (report_a, log_a) = overload_run(&service);
    let (report_b, log_b) = overload_run(&service);
    assert_eq!(
        report_a, report_b,
        "replay must produce an identical report"
    );
    assert_eq!(log_a, log_b, "replay must produce identical transitions");
}

#[test]
fn post_burst_study_matches_the_unloaded_one() {
    let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let service = Arc::new(TrendsService::with_defaults(world()));

    // First an overload round against this very service…
    let (_report, _log) = overload_run(&service);

    // …then a fresh study over HTTP against the same (now unloaded)
    // service: the burst must leave no trace in the results.
    let server = Server::new(trends_router(Arc::clone(&service)))
        .with_workers(2)
        .bind("127.0.0.1:0")
        .expect("bind");
    let unit = HttpTrendsClient::new(server.addr(), "127.0.0.8").with_retry(RetryPolicy {
        max_attempts: 5,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        jitter: true,
    });
    let params = StudyParams {
        range: HourRange::new(Hour(0), Hour(760)),
        regions: vec![State::CA],
        threads: 1,
        daily_rising: false,
        ..StudyParams::default()
    };
    let over_http = run_study(&unit, &params).expect("post-burst study");
    let direct = run_study(service.as_ref(), &params).expect("in-process study");

    assert_eq!(over_http.bare_spikes(), direct.bare_spikes());
    assert_eq!(over_http.clusters.len(), direct.clusters.len());
    assert_eq!(over_http.heavy_hitters, direct.heavy_hitters);
    assert_eq!(over_http.stats.halted_regions, 0);
    server.shutdown();
}

//! Serving acceptance: the online detector daemon over real sockets.
//!
//! Four properties are exercised end-to-end:
//!
//! 1. **Crash recovery, in-process** — the ingest thread is killed by an
//!    injected panic at each durability boundary (mid-record, after a
//!    record, between a checkpoint's temp write and rename, and between
//!    rename and WAL truncation); the HTTP front keeps serving last-good
//!    data, and a daemon restarted on the same directory catches up to
//!    the *identical* spike set an uninterrupted daemon produces,
//!    re-fetching at most the single torn frame.
//! 2. **Crash recovery, out-of-process** — this test binary is spawned
//!    as a child that `abort()`s mid-ingest (no unwinding, no flushing —
//!    the closest stand-in for `kill -9`); the parent resumes from the
//!    orphaned files to the identical spike set.
//! 3. **Overload** — three long-poll subscribers park (holding worker
//!    threads but no admission slots, so a fresh read still succeeds
//!    with `max_inflight = 1`); with the accept queue then pinned, a 4×
//!    burst is shed instantly with `503 + Retry-After`, and when the
//!    clock advances every parked subscriber still receives its spikes.
//! 4. **Graceful degradation** — an unhealthy or failing upstream turns
//!    reads degraded, labelled by reason in the `X-Sift-Degraded` header
//!    and counted in `sift_serve_degraded_reads_total{reason=…}`, while
//!    the reads themselves keep answering `200`.

use sift::geo::State;
use sift::journal::testutil::scratch_dir;
use sift::journal::{CrashInjector, CrashMode, CrashPlan, CrashSite};
use sift::net::{AdmissionConfig, HttpClient, Request, Response, StatusCode};
use sift::serve::{Daemon, RegionsReply, ServeConfig, SpikesReply};
use sift::simtime::{Hour, HourRange, SimClock};
use sift::trends::terms::Provider;
use sift::trends::{
    Cause, FetchError, FrameRequest, FrameResponse, OutageEvent, PowerTrigger, RisingRequest,
    RisingResponse, Scenario, SearchTerm, TrendsClient, TrendsService,
};
use std::io::Read;
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Several tests below read global gauges (parked waiters, accept-queue
/// depth); concurrent tests in this binary would race them.
static RUN_LOCK: Mutex<()> = Mutex::new(());

/// The seeded world every daemon ingests: two target events plus anchor
/// outages every 70 hours, so spikes keep sealing as the clock advances.
/// Responses are a pure function of request coordinates and the scenario
/// seed, so independent service instances (even in different processes)
/// serve identical bytes.
fn world() -> Scenario {
    let mut events = vec![
        OutageEvent {
            id: 0,
            name: "power".into(),
            cause: Cause::Power(PowerTrigger::Storm),
            start: Hour(300),
            duration_h: 8,
            states: vec![(State::TX, 0.3), (State::CA, 0.2)],
            severity: 9_000.0,
            lags_h: vec![0, 0],
        },
        OutageEvent {
            id: 1,
            name: "isp".into(),
            cause: Cause::IspNetwork(Provider::Spectrum),
            start: Hour(600),
            duration_h: 5,
            states: vec![(State::CA, 0.2)],
            severity: 8_000.0,
            lags_h: vec![0],
        },
    ];
    for (i, start) in (40..800).step_by(70).enumerate() {
        for (j, state) in [State::TX, State::CA].into_iter().enumerate() {
            events.push(OutageEvent {
                id: 100 + (i * 2 + j) as u32,
                name: format!("anchor-{i}-{state}"),
                cause: Cause::IspNetwork(Provider::Frontier),
                start: Hour(start + 11 * j as i64),
                duration_h: 2,
                states: vec![(state, 0.02)],
                severity: 8_000.0,
                lags_h: vec![0],
            });
        }
    }
    let mut scenario = Scenario::single_region(State::TX, vec![]);
    scenario.params.regions = vec![State::TX, State::CA];
    scenario.events = events;
    scenario.events.sort_by_key(|e| (e.start, e.id));
    scenario
}

/// An in-process upstream: the deterministic trends service behind a
/// [`TrendsClient`] with test-controlled health, failure injection and a
/// fetch counter (for the zero-refetch accounting).
struct Upstream {
    service: Arc<TrendsService>,
    healthy: AtomicBool,
    failing: AtomicBool,
    fetches: AtomicU64,
}

impl Upstream {
    fn new() -> Arc<Upstream> {
        Arc::new(Upstream {
            service: Arc::new(TrendsService::with_defaults(world())),
            healthy: AtomicBool::new(true),
            failing: AtomicBool::new(false),
            fetches: AtomicU64::new(0),
        })
    }
}

impl TrendsClient for Upstream {
    fn fetch_frame(&self, req: &FrameRequest) -> Result<FrameResponse, FetchError> {
        if self.failing.load(Ordering::SeqCst) {
            return Err(FetchError::Transport("injected upstream outage".into()));
        }
        self.fetches.fetch_add(1, Ordering::SeqCst);
        self.service.fetch_frame(req).map_err(FetchError::Service)
    }

    fn fetch_rising(&self, req: &RisingRequest) -> Result<RisingResponse, FetchError> {
        self.service.fetch_rising(req).map_err(FetchError::Service)
    }

    fn identity(&self) -> &str {
        "serve-test"
    }

    fn healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }
}

const RANGE_END: i64 = 800;

fn serve_config() -> ServeConfig {
    let mut cfg = ServeConfig::new(
        SearchTerm::parse("topic:Internet outage"),
        vec![State::TX, State::CA],
        HourRange::new(Hour(0), Hour(RANGE_END)),
    );
    cfg.checkpoint_every = 3;
    cfg
}

fn get(addr: std::net::SocketAddr, path: &str) -> Response {
    HttpClient::new(addr)
        .with_timeout(Duration::from_secs(60))
        .send(&Request::get(path))
        .expect("http request")
}

fn body_json<T: serde::de::DeserializeOwned>(resp: &Response) -> T {
    let text = std::str::from_utf8(&resp.body).expect("utf8 body");
    serde_json::from_str(text).expect("json body")
}

fn staleness_ms(resp: &Response) -> u128 {
    resp.headers
        .get("x-sift-staleness-ms")
        .expect("every serve response carries X-Sift-Staleness-Ms")
        .parse()
        .expect("staleness header is a number")
}

fn poll_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Runs an uninterrupted daemon over the full range and returns its
/// per-region spike replies plus the number of upstream fetches it cost.
fn baseline(upstream: &Arc<Upstream>, tag: &str) -> (SpikesReply, SpikesReply, u64) {
    let before = upstream.fetches.load(Ordering::SeqCst);
    let clock = Arc::new(SimClock::new(Hour(RANGE_END)));
    let dir = scratch_dir(&format!("serve_http_baseline_{tag}"));
    let daemon = Daemon::start(
        serve_config(),
        Arc::clone(upstream) as Arc<dyn TrendsClient>,
        clock,
        &dir,
    )
    .expect("start baseline daemon");
    assert!(
        daemon.wait_caught_up(Duration::from_secs(30)),
        "baseline daemon must catch up"
    );
    let tx = body_json::<SpikesReply>(&get(daemon.addr(), "/spikes?region=TX"));
    let ca = body_json::<SpikesReply>(&get(daemon.addr(), "/spikes?region=CA"));
    daemon.shutdown();
    assert!(
        !tx.spikes.is_empty() && !ca.spikes.is_empty(),
        "the seeded world must produce sealed spikes (TX {}, CA {})",
        tx.spikes.len(),
        ca.spikes.len()
    );
    (tx, ca, upstream.fetches.load(Ordering::SeqCst) - before)
}

fn assert_same_spikes(resumed: &SpikesReply, reference: &SpikesReply, what: &str) {
    assert_eq!(
        resumed.spikes, reference.spikes,
        "{what}: resumed spike set diverged for {}",
        reference.region
    );
    assert_eq!(
        resumed.watermark, reference.watermark,
        "{what}: watermark diverged"
    );
}

#[test]
fn daemon_killed_at_each_crash_point_resumes_to_identical_spikes() {
    let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let upstream = Upstream::new();
    let (ref_tx, ref_ca, fetches_uninterrupted) = baseline(&upstream, "inproc");

    let crash_points = [
        (CrashSite::MidJournalRecord, 4, "mid-journal-record"),
        (CrashSite::AfterJournalRecord, 7, "after-journal-record"),
        (
            CrashSite::CheckpointTempWritten,
            2,
            "checkpoint temp-vs-rename",
        ),
        (
            CrashSite::AfterCheckpointRename,
            2,
            "checkpoint rename-vs-truncate",
        ),
    ];

    for (site, occurrence, what) in crash_points {
        let before = upstream.fetches.load(Ordering::SeqCst);
        let dir = scratch_dir(&format!("serve_http_{}", site.label()));
        let clock = Arc::new(SimClock::new(Hour(RANGE_END)));
        let inj = Arc::new(CrashInjector::new(
            CrashPlan::nowhere().at(site, occurrence),
        ));

        let crashed = Daemon::start_with_crash(
            serve_config(),
            Arc::clone(&upstream) as Arc<dyn TrendsClient>,
            Arc::clone(&clock),
            &dir,
            Some(Arc::clone(&inj)),
        )
        .expect("start crashing daemon");
        poll_until(&format!("{what}: ingest death"), || crashed.ingest_dead());
        assert!(inj.tripped(), "{what}: injected crash must fire");

        // The front survives its ingest thread: reads still answer 200
        // from last-good state.
        let during = get(crashed.addr(), "/spikes?region=TX");
        assert_eq!(during.status, StatusCode::OK, "{what}: read during outage");
        let _ = staleness_ms(&during);
        crashed.shutdown();

        // Restart on the same directory: checkpoint + WAL-tail replay
        // must reach the identical spike set.
        let resumed = Daemon::start(
            serve_config(),
            Arc::clone(&upstream) as Arc<dyn TrendsClient>,
            clock,
            &dir,
        )
        .expect("restart daemon");
        assert!(
            resumed.wait_caught_up(Duration::from_secs(30)),
            "{what}: resumed daemon must catch up"
        );
        let tx = body_json::<SpikesReply>(&get(resumed.addr(), "/spikes?region=TX"));
        let ca = body_json::<SpikesReply>(&get(resumed.addr(), "/spikes?region=CA"));
        assert_same_spikes(&tx, &ref_tx, what);
        assert_same_spikes(&ca, &ref_ca, what);

        // Zero-refetch accounting: across both lives the upstream served
        // the uninterrupted workload plus at most the one frame whose
        // record was torn mid-append.
        let fetched = upstream.fetches.load(Ordering::SeqCst) - before;
        assert!(
            fetched >= fetches_uninterrupted && fetched <= fetches_uninterrupted + 1,
            "{what}: {fetched} fetches vs uninterrupted {fetches_uninterrupted} — \
             journaled frames must replay, not refetch"
        );
        resumed.shutdown();
    }
}

#[test]
fn spikes_endpoint_filters_validates_and_reports_status() {
    let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let upstream = Upstream::new();
    let clock = Arc::new(SimClock::new(Hour(RANGE_END)));
    let dir = scratch_dir("serve_http_endpoints");
    let daemon = Daemon::start(
        serve_config(),
        Arc::clone(&upstream) as Arc<dyn TrendsClient>,
        clock,
        &dir,
    )
    .expect("start daemon");
    assert!(daemon.wait_caught_up(Duration::from_secs(30)));
    let addr = daemon.addr();

    let all = body_json::<SpikesReply>(&get(addr, "/spikes?region=TX"));
    let mid = all.spikes[all.spikes.len() / 2].end.0;
    let since = body_json::<SpikesReply>(&get(addr, &format!("/spikes?region=TX&since={mid}")));
    assert!(since.spikes.len() < all.spikes.len());
    assert!(since.spikes.iter().all(|s| s.end.0 > mid));
    assert_eq!(since.cursor, all.cursor, "since filters, cursor does not");

    assert_eq!(
        get(addr, "/spikes").status,
        StatusCode::BAD_REQUEST,
        "missing region"
    );
    assert_eq!(
        get(addr, "/spikes?region=ZZ").status,
        StatusCode::BAD_REQUEST,
        "unknown region"
    );
    assert_eq!(
        get(addr, "/spikes?region=NY").status,
        StatusCode::NOT_FOUND,
        "valid but unserved region"
    );

    let status = body_json::<RegionsReply>(&get(addr, "/regions"));
    assert_eq!(status.now, RANGE_END);
    assert_eq!(status.regions.len(), 2);
    for r in &status.regions {
        assert_eq!(r.frames_ingested, r.frames_planned, "{r:?} not caught up");
        assert!(r.degraded.is_none(), "{r:?} unexpectedly degraded");
        assert!(r.sealed_spikes > 0, "{r:?} sealed nothing");
    }
    daemon.shutdown();
}

const CHILD_ENV: &str = "SIFT_SERVE_CHILD_DIR";

/// The child's half of the out-of-process harness: ingest against its
/// own in-process upstream and die by `abort()` at a journal boundary.
/// Never returns unless the injector failed to fire — then it exits 0,
/// which the parent treats as a harness failure.
fn child_ingest_and_abort(dir: &Path) {
    let upstream = Upstream::new();
    let clock = Arc::new(SimClock::new(Hour(RANGE_END)));
    let inj = Arc::new(CrashInjector::new(
        CrashPlan::nowhere()
            .at(CrashSite::AfterJournalRecord, 9)
            .with_mode(CrashMode::Abort),
    ));
    let daemon = Daemon::start_with_crash(
        serve_config(),
        upstream as Arc<dyn TrendsClient>,
        clock,
        dir,
        Some(inj),
    )
    .expect("child daemon");
    // The abort (whole-process death, no unwinding) fires from the
    // ingest thread long before this times out.
    let _ = daemon.wait_caught_up(Duration::from_secs(30));
    std::process::exit(0);
}

#[test]
fn process_aborted_mid_ingest_resumes_to_identical_spikes() {
    if let Ok(dir) = std::env::var(CHILD_ENV) {
        child_ingest_and_abort(Path::new(&dir));
        unreachable!("child must abort");
    }

    let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let upstream = Upstream::new();
    let (ref_tx, ref_ca, _) = baseline(&upstream, "abort");
    let dir = scratch_dir("serve_http_child");

    let exe = std::env::current_exe().expect("test binary path");
    let status = std::process::Command::new(exe)
        .arg("process_aborted_mid_ingest_resumes_to_identical_spikes")
        .arg("--exact")
        .arg("--test-threads=1")
        .env(CHILD_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn child test process");
    assert!(
        !status.success(),
        "child must die at the injected abort, not complete"
    );

    // The orphaned checkpoint + WAL survive the kill; a daemon resumed
    // on them reproduces the uninterrupted spike set exactly.
    let clock = Arc::new(SimClock::new(Hour(RANGE_END)));
    let resumed = Daemon::start(
        serve_config(),
        Arc::clone(&upstream) as Arc<dyn TrendsClient>,
        clock,
        &dir,
    )
    .expect("resume from the killed child's files");
    assert!(resumed.wait_caught_up(Duration::from_secs(30)));
    let tx = body_json::<SpikesReply>(&get(resumed.addr(), "/spikes?region=TX"));
    let ca = body_json::<SpikesReply>(&get(resumed.addr(), "/spikes?region=CA"));
    assert_same_spikes(&tx, &ref_tx, "out-of-process abort");
    assert_same_spikes(&ca, &ref_ca, "out-of-process abort");
    resumed.shutdown();
}

#[test]
fn burst_sheds_while_parked_subscribers_survive() {
    let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let upstream = Upstream::new();
    // One admission slot, three workers, a two-deep accept queue: the
    // tightest front that still shows parked waiters freeing their slot.
    let mut cfg = serve_config();
    cfg.workers = 3;
    cfg.admission = AdmissionConfig {
        max_inflight: 1,
        max_queue: 2,
        retry_after_secs: 1,
    };
    cfg.long_poll_max = Duration::from_secs(30);

    let clock = Arc::new(SimClock::new(Hour(500)));
    let dir = scratch_dir("serve_http_burst");
    let daemon = Daemon::start(
        cfg,
        Arc::clone(&upstream) as Arc<dyn TrendsClient>,
        Arc::clone(&clock),
        &dir,
    )
    .expect("start daemon");
    assert!(daemon.wait_caught_up(Duration::from_secs(30)));
    let addr = daemon.addr();
    let cursor = body_json::<SpikesReply>(&get(addr, "/spikes?region=TX")).cursor;

    let parked_gauge = sift::obs::gauge("sift_net_parked_waiters", &[]);
    let subscribe = move |cursor: u64| {
        std::thread::spawn(move || {
            get(
                addr,
                &format!("/spikes/subscribe?region=TX&cursor={cursor}"),
            )
        })
    };

    // Two subscribers park. They hold worker threads but *no* admission
    // slots — so with max_inflight = 1 a fresh read still answers 200.
    let sub_a = subscribe(cursor);
    let sub_b = subscribe(cursor);
    poll_until("two waiters parked", || parked_gauge.get() >= 2);
    let fresh = get(addr, "/spikes?region=TX");
    assert_eq!(
        fresh.status,
        StatusCode::OK,
        "parked subscribers must not starve fresh reads"
    );

    // A third subscriber pins the last worker; two idle connections fill
    // the accept queue.
    let sub_c = subscribe(cursor);
    poll_until("three waiters parked", || parked_gauge.get() >= 3);
    let _parkers: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(addr).expect("parker connects"))
        .collect();
    let queue_depth = sift::obs::gauge("sift_net_accept_queue_depth", &[]);
    poll_until("accept queue full", || queue_depth.get() == 2);

    // 4× burst against capacity: every connection sheds instantly with a
    // canned 503 + Retry-After, written before the request is parsed.
    for i in 0..8 {
        let started = Instant::now();
        let mut conn = TcpStream::connect(addr).expect("burst connects");
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        let mut wire = String::new();
        conn.read_to_string(&mut wire).expect("read shed response");
        assert!(
            wire.starts_with("HTTP/1.1 503"),
            "burst {i} expected a shed 503, got: {wire:?}"
        );
        assert!(wire.contains("retry-after: 1"), "burst {i}: {wire:?}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "burst {i} waited {:?}: shed must not be a timeout",
            started.elapsed()
        );
    }

    // The overload was graceful: advancing the clock seals new spikes
    // and every parked subscriber receives them.
    clock.set(Hour(RANGE_END));
    for (name, sub) in [("a", sub_a), ("b", sub_b), ("c", sub_c)] {
        let resp = sub.join().expect("subscriber thread");
        assert_eq!(resp.status, StatusCode::OK, "subscriber {name}");
        let reply = body_json::<SpikesReply>(&resp);
        assert!(
            reply.cursor > cursor,
            "subscriber {name} must see newly sealed spikes ({} vs {cursor})",
            reply.cursor
        );
        let _ = staleness_ms(&resp);
    }

    let metrics = get(addr, "/metrics");
    let text = std::str::from_utf8(&metrics.body).expect("utf8 metrics");
    assert!(
        text.contains("sift_net_admission_shed_total"),
        "metrics must expose the shed counter:\n{text}"
    );
    assert!(text.contains("sift_net_parked_waiters"), "{text}");
    daemon.shutdown();
}

#[test]
fn degraded_reads_serve_last_good_data_with_reason_labels() {
    let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let upstream = Upstream::new();
    let clock = Arc::new(SimClock::new(Hour(RANGE_END)));

    // An upstream that fails every fetch from the start: the watermark
    // never advances, so reads degrade as MissingFrames — but still 200.
    upstream.failing.store(true, Ordering::SeqCst);
    let dir = scratch_dir("serve_http_degraded");
    let daemon = Daemon::start(
        serve_config(),
        Arc::clone(&upstream) as Arc<dyn TrendsClient>,
        Arc::clone(&clock),
        &dir,
    )
    .expect("start daemon");
    let addr = daemon.addr();

    let resp = get(addr, "/spikes?region=TX");
    assert_eq!(resp.status, StatusCode::OK, "degraded reads still answer");
    assert_eq!(resp.headers.get("x-sift-degraded"), Some("missing_frames"));
    assert_eq!(
        body_json::<SpikesReply>(&resp).degraded.as_deref(),
        Some("missing_frames")
    );

    // An open breaker outranks missing frames in the degrade lattice.
    upstream.healthy.store(false, Ordering::SeqCst);
    let resp = get(addr, "/spikes?region=TX");
    assert_eq!(resp.headers.get("x-sift-degraded"), Some("breaker_open"));

    // Both degraded reads were counted under their reason label.
    let metrics = get(addr, "/metrics");
    let text = std::str::from_utf8(&metrics.body).expect("utf8 metrics");
    assert!(
        text.contains("sift_serve_degraded_reads_total{reason=\"missing_frames\"}"),
        "{text}"
    );
    assert!(
        text.contains("sift_serve_degraded_reads_total{reason=\"breaker_open\"}"),
        "{text}"
    );

    // Recovery: heal the upstream and the degradation clears.
    upstream.healthy.store(true, Ordering::SeqCst);
    upstream.failing.store(false, Ordering::SeqCst);
    assert!(daemon.wait_caught_up(Duration::from_secs(30)));
    let resp = get(addr, "/spikes?region=TX");
    assert_eq!(resp.headers.get("x-sift-degraded"), None);
    assert!(!body_json::<SpikesReply>(&resp).spikes.is_empty());
    daemon.shutdown();

    // A daemon that cannot checkpoint (zero backlog budget, checkpoints
    // effectively disabled) degrades as WalBacklog.
    let mut cfg = serve_config();
    cfg.checkpoint_every = 1_000;
    cfg.max_wal_backlog = 0;
    let dir = scratch_dir("serve_http_wal_backlog");
    let daemon = Daemon::start(
        cfg,
        Arc::clone(&upstream) as Arc<dyn TrendsClient>,
        clock,
        &dir,
    )
    .expect("start daemon");
    assert!(daemon.wait_caught_up(Duration::from_secs(30)));
    let resp = get(daemon.addr(), "/spikes?region=TX");
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(resp.headers.get("x-sift-degraded"), Some("wal_backlog"));
    daemon.shutdown();
}

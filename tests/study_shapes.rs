//! Integration: headline distribution shapes on a thinned version of the
//! full two-year world. These are the coarse "who wins, which way does it
//! lean" checks; exact paper-vs-measured numbers live in EXPERIMENTS.md.

use sift::core::{impact, run_study, StudyParams};
use sift::geo::State;
use sift::simtime::Hour;
use sift::trends::{Scenario, ScenarioParams, TrendsService};

fn thinned_study() -> sift::core::StudyResult {
    let scenario = Scenario::generate(ScenarioParams {
        background_scale: 0.15,
        ..ScenarioParams::default()
    });
    let service = TrendsService::with_defaults(scenario);
    let params = StudyParams {
        regions: vec![
            State::TX,
            State::CA,
            State::NY,
            State::FL,
            State::OH,
            State::WY,
        ],
        threads: 6,
        daily_rising: false,
        ..StudyParams::default()
    };
    run_study(&service, &params).expect("study")
}

#[test]
fn headline_shapes_hold() {
    let result = thinned_study();
    let spikes = result.bare_spikes();
    assert!(spikes.len() > 500, "enough spikes to be meaningful");

    // Durations: the vast majority of spikes are short.
    let long_share = impact::share_at_least(&spikes, 3);
    assert!(
        (0.02..0.30).contains(&long_share),
        "share of >=3h spikes out of band: {long_share}"
    );

    // Weekend dip (Fig. 4).
    let (weekday, weekend) = impact::weekend_dip(&spikes);
    assert!(
        weekend < weekday,
        "weekends must see fewer outages: {weekend} vs {weekday}"
    );

    // Big states host more spikes than small ones (Fig. 3 left).
    let count = |s: State| spikes.iter().filter(|x| x.state == s).count();
    assert!(count(State::CA) > 5 * count(State::WY));

    // The winter storm is Texas's longest spike and power-annotated
    // (Table 1 / Fig. 1).
    let storm_hour = Hour::from_ymdh(2021, 2, 15, 20);
    let tx_longest = result
        .spikes
        .iter()
        .filter(|a| a.spike.state == State::TX)
        .max_by_key(|a| a.spike.duration_h())
        .expect("TX spikes exist");
    assert!(
        tx_longest.spike.window().contains(storm_hour),
        "TX's longest spike must be the winter storm: {:?}",
        tx_longest.spike
    );
    assert!(tx_longest.power_annotated());
    assert!(tx_longest.spike.duration_h() >= 30);

    // Power outage is a global heavy hitter (§4.3: ninth most popular
    // suggestion overall; dominant among long spikes).
    assert!(
        result
            .heavy_hitters
            .iter()
            .any(|(t, _)| t.contains("power outage")),
        "heavy hitters: {:?}",
        result.heavy_hitters
    );
}

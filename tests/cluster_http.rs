//! Sharded-crawl acceptance: a coordinator plus N worker threads talking
//! over real sockets must produce a `StudyResult` bit-identical to the
//! single-process `run_study` on the same parameters — including when one
//! worker is killed mid-run, its heartbeats go silent, and its shards are
//! rerouted to the survivors. The per-worker response journals must also
//! merge into one conflict-free store.

use sift::cluster::{
    cluster_router, spawn_worker, ClusterConfig, Coordinator, StatusReply, WorkerConfig,
    WorkerHandle,
};
use sift::core::{run_study, StudyParams, StudyResult};
use sift::fetcher::{merge_journal_dirs, trends_router, HttpTrendsClient};
use sift::geo::State;
use sift::journal::testutil::scratch_dir;
use sift::net::{HttpClient, Server, ServerHandle};
use sift::simtime::{Hour, HourRange};
use sift::trends::terms::Provider;
use sift::trends::{Cause, OutageEvent, PowerTrigger, Scenario, TrendsService};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The seeded world every run replays. Responses are a pure function of
/// request coordinates and the scenario seed, so the baseline process and
/// every worker see identical bytes. Target events sit on two regions;
/// anchor outages keep the frame chain calibrated everywhere.
fn world(regions: &[State]) -> Scenario {
    let mut events = vec![
        OutageEvent {
            id: 0,
            name: "power".into(),
            cause: Cause::Power(PowerTrigger::Storm),
            start: Hour(300),
            duration_h: 8,
            states: vec![(State::TX, 0.3), (State::CA, 0.2)],
            severity: 9_000.0,
            lags_h: vec![0, 0],
        },
        OutageEvent {
            id: 1,
            name: "isp".into(),
            cause: Cause::IspNetwork(Provider::Spectrum),
            start: Hour(600),
            duration_h: 5,
            states: vec![(State::CA, 0.2)],
            severity: 8_000.0,
            lags_h: vec![0],
        },
    ];
    for (i, start) in (40..800).step_by(70).enumerate() {
        for (j, state) in [State::TX, State::CA].into_iter().enumerate() {
            events.push(OutageEvent {
                id: 100 + (i * 2 + j) as u32,
                name: format!("anchor-{i}-{state}"),
                cause: Cause::IspNetwork(Provider::Frontier),
                start: Hour(start + 11 * j as i64),
                duration_h: 2,
                states: vec![(state, 0.02)],
                severity: 8_000.0,
                lags_h: vec![0],
            });
        }
    }
    let mut scenario = Scenario::single_region(State::TX, vec![]);
    scenario.params.regions = regions.to_vec();
    scenario.events = events;
    scenario.events.sort_by_key(|e| (e.start, e.id));
    scenario
}

fn study_params(regions: &[State]) -> StudyParams {
    StudyParams {
        range: HourRange::new(Hour(0), Hour(800)),
        regions: regions.to_vec(),
        threads: 2,
        ..StudyParams::default()
    }
}

fn serve_trends(regions: &[State]) -> ServerHandle {
    Server::new(trends_router(Arc::new(TrendsService::with_defaults(
        world(regions),
    ))))
    .with_workers(8)
    .bind("127.0.0.1:0")
    .expect("bind trends service")
}

fn assert_same_result(sharded: &StudyResult, baseline: &StudyResult, what: &str) {
    assert_eq!(
        sharded.spikes.len(),
        baseline.spikes.len(),
        "{what}: spike count diverged"
    );
    for (a, b) in sharded.spikes.iter().zip(baseline.spikes.iter()) {
        assert_eq!(a.spike, b.spike, "{what}: spike diverged");
        assert_eq!(a.annotations, b.annotations, "{what}: annotations diverged");
    }
    assert_eq!(
        sharded.timelines, baseline.timelines,
        "{what}: timelines diverged"
    );
    assert_eq!(
        sharded.clusters.len(),
        baseline.clusters.len(),
        "{what}: clusters diverged"
    );
    assert_eq!(
        sharded.heavy_hitters, baseline.heavy_hitters,
        "{what}: heavy hitters diverged"
    );
    assert_eq!(
        sharded.stats.frames_requested, baseline.stats.frames_requested,
        "{what}: frame accounting diverged"
    );
    assert_eq!(
        sharded.stats.rising_requested, baseline.stats.rising_requested,
        "{what}: rising accounting diverged"
    );
}

/// The single-process reference run, over HTTP like the workers.
fn baseline(regions: &[State]) -> StudyResult {
    let server = serve_trends(regions);
    let client = HttpTrendsClient::new(server.addr(), "127.0.0.20");
    let result = run_study(&client, &study_params(regions)).expect("baseline study");
    server.shutdown();
    result
}

struct Cluster {
    coord: Arc<Coordinator>,
    coord_server: ServerHandle,
    trends_server: ServerHandle,
    workers: Vec<WorkerHandle>,
    journal_root: PathBuf,
}

fn start_cluster(regions: &[State], n_workers: usize, tag: &str) -> Cluster {
    let params = study_params(regions);
    let coord = Arc::new(Coordinator::new(
        params.clone(),
        ClusterConfig {
            heartbeat_interval: Duration::from_millis(75),
            miss_threshold: 4,
            poll_ms: 10,
            attempt_budget: 3,
            vnodes: 40,
            checkpoint_every: 8,
        },
    ));
    let coord_server = Server::new(cluster_router(&coord))
        .with_workers(8)
        .bind("127.0.0.1:0")
        .expect("bind coordinator");
    let trends_server = serve_trends(regions);
    let journal_root = scratch_dir(&format!("cluster_http_{tag}"));
    let workers = (0..n_workers)
        .map(|i| {
            spawn_worker(
                format!("worker-{i}"),
                coord_server.addr(),
                trends_server.addr(),
                params.clone(),
                WorkerConfig {
                    heartbeat_every: Some(Duration::from_millis(50)),
                    durability_root: Some(journal_root.clone()),
                    ..WorkerConfig::default()
                },
            )
        })
        .collect();
    Cluster {
        coord,
        coord_server,
        trends_server,
        workers,
        journal_root,
    }
}

impl Cluster {
    fn shutdown(self) -> Vec<sift::cluster::WorkerSummary> {
        let summaries = self.workers.into_iter().map(WorkerHandle::join).collect();
        self.coord_server.shutdown();
        self.trends_server.shutdown();
        summaries
    }
}

#[test]
fn sharded_crawl_matches_single_process_run_study() {
    let regions = [State::TX, State::CA];
    let reference = baseline(&regions);

    let cluster = start_cluster(&regions, 2, "smoke");
    let result = cluster
        .coord
        .wait_result(Duration::from_secs(120))
        .expect("sharded study");
    let status = cluster.coord.status();
    let summaries = cluster.shutdown();

    assert_same_result(&result, &reference, "2-worker smoke");
    assert_eq!(status.done, regions.len());
    assert_eq!(status.failed, 0);
    let done: usize = summaries.iter().map(|s| s.shards_done).sum();
    assert_eq!(done, regions.len(), "every shard was uploaded by a worker");
}

#[test]
fn killing_a_worker_mid_run_still_converges_to_the_identical_result() {
    let regions = [State::TX, State::CA, State::NY, State::FL];
    let reference = baseline(&regions);

    let cluster = start_cluster(&regions, 3, "kill");
    let status_client = HttpClient::new(cluster.coord_server.addr());

    // Wait (over the wire, like any external driver would) until some
    // worker holds a lease; that one is the victim. Killing it mid-crawl
    // stops its heartbeats cold: no result upload, no journal sync. The
    // victim is picked dynamically because the ring decides which workers
    // own shards — a fixed pick might never lease anything.
    let hunt_deadline = Instant::now() + Duration::from_secs(30);
    let victim = loop {
        let status: StatusReply = status_client
            .get_json("/cluster/status")
            .expect("status poll");
        if let Some((worker, _)) = status.leases.first() {
            break worker.clone();
        }
        assert!(
            status.done < status.total,
            "run finished before any worker held a lease"
        );
        assert!(
            Instant::now() < hunt_deadline,
            "no worker ever acquired a lease: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    let victim_idx = cluster
        .workers
        .iter()
        .position(|w| w.id() == victim)
        .expect("victim is one of ours");
    cluster.workers[victim_idx].kill();

    let result = cluster
        .coord
        .wait_result(Duration::from_secs(120))
        .expect("sharded study despite worker death");
    let status: StatusReply = status_client
        .get_json("/cluster/status")
        .expect("final status");
    let journal_root = cluster.journal_root.clone();
    let summaries = cluster.shutdown();

    assert_same_result(&result, &reference, "worker-kill");
    assert!(
        summaries[victim_idx].killed,
        "the victim must report a killed exit"
    );
    assert!(
        status.rerouted >= 1,
        "the victim's leased shard must have been rerouted: {status:?}"
    );
    assert_eq!(
        status.dead,
        vec![victim],
        "the victim must be detected dead via missed heartbeats"
    );
    assert_eq!(status.done, regions.len());
    assert_eq!(status.failed, 0);

    // The survivors' journals (plus whatever the victim managed to write
    // before dying) must merge into one conflict-free response store: the
    // service is deterministic, so overlapping fetches are identical.
    let dirs: Vec<PathBuf> = (0..3)
        .map(|i| journal_root.join(format!("worker-{i}")))
        .collect();
    let existing: Vec<PathBuf> = dirs.into_iter().filter(|d| d.exists()).collect();
    assert!(existing.len() >= 2, "worker journals missing: {existing:?}");
    let (merged, report) = merge_journal_dirs(&existing).expect("merge worker journals");
    assert_eq!(
        report.conflicts, 0,
        "deterministic workers must never conflict: {report:?}"
    );
    assert!(
        merged.frame_count() > 0,
        "the merged store must hold the crawl's frames"
    );
}

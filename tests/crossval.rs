//! Integration: SIFT vs the probing baseline over one shared ground
//! truth — the §4 visibility contrast, asserted.

use rand::SeedableRng;
use sift::core::{run_study, StudyParams};
use sift::geo::{AddressPlan, GeoDb, State};
use sift::probe::address::PopulationMix;
use sift::probe::{cross_validate, AddressPopulation, ProbeConfig, Prober};
use sift::simtime::{Hour, HourRange};
use sift::trends::terms::Provider;
use sift::trends::{Cause, OutageEvent, PowerTrigger, Scenario, TrendsService};

fn mk(id: u32, name: &str, cause: Cause, start: i64, dur: u32) -> OutageEvent {
    OutageEvent {
        id,
        name: name.into(),
        cause,
        start: Hour(start),
        duration_h: dur,
        states: vec![(State::TX, 0.3)],
        severity: 9_000.0,
        lags_h: vec![0],
    }
}

#[test]
fn visibility_contrast_matches_the_paper() {
    let mut events = vec![
        mk(0, "power", Cause::Power(PowerTrigger::Storm), 100, 8),
        mk(1, "isp", Cause::IspNetwork(Provider::Comcast), 260, 6),
        mk(2, "mobile", Cause::MobileCarrier(Provider::TMobile), 420, 7),
        mk(3, "cdn", Cause::CdnOrCloud(Provider::Akamai), 580, 5),
        mk(4, "app", Cause::Application(Provider::Youtube), 740, 5),
    ];
    for (i, start) in (30..900).step_by(60).enumerate() {
        let mut anchor = mk(
            100 + i as u32,
            "anchor",
            Cause::IspNetwork(Provider::Frontier),
            start,
            2,
        );
        anchor.states = vec![(State::TX, 0.02)];
        events.push(anchor);
    }
    let scenario = Scenario::single_region(State::TX, events);

    // SIFT's view.
    let service = TrendsService::with_defaults(scenario.clone());
    let params = StudyParams {
        range: HourRange::new(Hour(0), Hour(1000)),
        regions: vec![State::TX],
        threads: 1,
        daily_rising: false,
        ..StudyParams::default()
    };
    let study = run_study(&service, &params).expect("study");

    // The probing baseline's view.
    let plan = AddressPlan::proportional(4_000);
    let population = AddressPopulation::new(&plan, PopulationMix::default(), 21);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(22);
    let geodb = GeoDb::from_plan(&plan, 0.03, &mut rng);
    let prober = Prober::new(ProbeConfig::default(), &population, &geodb);
    let dataset = prober.run(&scenario, params.range);

    let report = cross_validate(&scenario, &study.bare_spikes(), &dataset, 5);
    let verdict = |name: &str| {
        report
            .events
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("{name} scored"))
    };

    // SIFT sees everything that affected users.
    for name in ["power", "isp", "mobile", "cdn", "app"] {
        assert!(verdict(name).sift_detected, "SIFT must detect {name}");
    }
    // Probing sees only what stops answering pings.
    assert!(verdict("power").probe_detected);
    assert!(verdict("isp").probe_detected);
    assert!(!verdict("mobile").probe_detected, "mobile escapes probing");
    assert!(!verdict("cdn").probe_detected, "CDN/DNS escapes probing");
    assert!(
        !verdict("app").probe_detected,
        "applications escape probing"
    );
}

#[test]
fn synthesized_and_exact_datasets_agree_on_visibility() {
    let events = vec![
        mk(0, "power", Cause::Power(PowerTrigger::Storm), 100, 8),
        mk(1, "cdn", Cause::CdnOrCloud(Provider::Fastly), 300, 6),
    ];
    let scenario = Scenario::single_region(State::TX, events);
    let plan = AddressPlan::proportional(3_000);
    let population = AddressPopulation::new(&plan, PopulationMix::default(), 31);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(32);
    let geodb = GeoDb::from_plan(&plan, 0.0, &mut rng);
    let prober = Prober::new(ProbeConfig::default(), &population, &geodb);
    let window = HourRange::new(Hour(0), Hour(400));

    let exact = prober.run(&scenario, window);
    let fast = prober.synthesize(&scenario, window);

    // Same story from both engines: the power outage is present, the CDN
    // outage is absent.
    for ds in [&exact, &fast] {
        let power_window = HourRange::new(Hour(100), Hour(110));
        assert!(ds.match_count(&power_window, &[State::TX]) > 0);
        let cdn_window = HourRange::new(Hour(300), Hour(308));
        assert_eq!(
            ds.records
                .iter()
                .filter(|r| cdn_window.contains(r.start_hour()))
                .count(),
            0
        );
    }
}

//! Integration: the collection module end to end — plan, parallel
//! multi-unit crawl, unified store, persistence.

use sift::core::{plan_frames, stitch, PlanParams};
use sift::fetcher::queue::WorkItem;
use sift::fetcher::{CollectionRun, InProcessClient, ResponseStore, TrendsClient};
use sift::geo::State;
use sift::simtime::{Hour, HourRange};
use sift::trends::terms::Provider;
use sift::trends::{
    Cause, FrameRequest, OutageEvent, RisingRequest, Scenario, SearchTerm, TrendsService,
};
use std::sync::Arc;

fn service() -> Arc<TrendsService> {
    let events = (0..12)
        .map(|i| OutageEvent {
            id: i,
            name: format!("e{i}"),
            cause: Cause::IspNetwork(Provider::Comcast),
            start: Hour(50 + i64::from(i) * 80),
            duration_h: 3,
            states: vec![(State::NY, 0.03)],
            severity: 8_000.0,
            lags_h: vec![0],
        })
        .collect();
    Arc::new(TrendsService::with_defaults(Scenario::single_region(
        State::NY,
        events,
    )))
}

#[test]
fn collected_store_feeds_the_pipeline() {
    let service = service();
    let units: Vec<Arc<dyn TrendsClient>> = (0..4)
        .map(|i| {
            Arc::new(InProcessClient::with_identity(
                Arc::clone(&service),
                format!("unit-{i}"),
            )) as Arc<dyn TrendsClient>
        })
        .collect();

    let range = HourRange::new(Hour(0), Hour(1000));
    let plan = plan_frames(range, PlanParams::default());
    let term = SearchTerm::parse("topic:Internet outage");

    let mut items: Vec<WorkItem> = plan
        .frames
        .iter()
        .map(|f| {
            WorkItem::Frame(FrameRequest {
                term: term.clone(),
                state: State::NY,
                start: f.start,
                len: f.len() as u32,
                tag: 0,
            })
        })
        .collect();
    items.push(WorkItem::Rising(RisingRequest {
        term: term.clone(),
        state: State::NY,
        start: plan.frames[0].start,
        len: plan.frames[0].len() as u32,
        tag: 0,
    }));

    let mut store = ResponseStore::new();
    let report = CollectionRun::new(units).execute(items, &mut store);
    assert_eq!(report.failed, 0);
    assert_eq!(store.frame_count(), plan.frames.len());
    assert_eq!(store.rising_count(), 1);

    // The store's sorted frames stitch into a full-range timeline.
    let frames = store.frames_for(State::NY, 0);
    let timeline = stitch(&frames).expect("stitch from store");
    assert_eq!(timeline.range(), range);

    // Persistence round-trips the whole store.
    let json = store.to_json().expect("serialize");
    let restored = ResponseStore::from_json(&json).expect("deserialize");
    assert_eq!(restored.frame_count(), store.frame_count());
    let frames2 = restored.frames_for(State::NY, 0);
    let timeline2 = stitch(&frames2).expect("stitch restored");
    assert_eq!(timeline, timeline2);
}

#[test]
fn multi_unit_crawl_is_order_independent() {
    let service = service();
    let mk_units = |n: usize| -> Vec<Arc<dyn TrendsClient>> {
        (0..n)
            .map(|i| {
                Arc::new(InProcessClient::with_identity(
                    Arc::clone(&service),
                    format!("u{i}"),
                )) as Arc<dyn TrendsClient>
            })
            .collect()
    };
    let range = HourRange::new(Hour(0), Hour(700));
    let plan = plan_frames(range, PlanParams::default());
    let term = SearchTerm::parse("topic:Internet outage");
    let items = |tag: u64| -> Vec<WorkItem> {
        plan.frames
            .iter()
            .map(|f| {
                WorkItem::Frame(FrameRequest {
                    term: term.clone(),
                    state: State::NY,
                    start: f.start,
                    len: f.len() as u32,
                    tag,
                })
            })
            .collect()
    };

    let mut store_1 = ResponseStore::new();
    CollectionRun::new(mk_units(1)).execute(items(3), &mut store_1);
    let mut store_8 = ResponseStore::new();
    CollectionRun::new(mk_units(8)).execute(items(3), &mut store_8);

    let a = store_1.frames_for(State::NY, 3);
    let b = store_8.frames_for(State::NY, 3);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x, y, "sample determined by coordinates+tag, not unit");
    }
}

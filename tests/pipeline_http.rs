//! End-to-end integration: the full SIFT study over real HTTP sockets,
//! behind per-identity rate limiting, must agree exactly with the
//! in-process path (responses are determined by request coordinates and
//! sample tags, not by transport or unit scheduling).

use sift::core::{run_study, StudyParams};
use sift::fetcher::{trends_router, HttpTrendsClient, RoundRobin, TrendsClient};
use sift::geo::State;
use sift::net::{RateLimiterConfig, RetryPolicy, Server};
use sift::simtime::{Hour, HourRange};
use sift::trends::terms::Provider;
use sift::trends::{Cause, OutageEvent, PowerTrigger, Scenario, TrendsService};
use std::sync::Arc;
use std::time::Duration;

fn world() -> Scenario {
    let mut events = vec![
        OutageEvent {
            id: 0,
            name: "power".into(),
            cause: Cause::Power(PowerTrigger::Storm),
            start: Hour(300),
            duration_h: 8,
            states: vec![(State::TX, 0.3), (State::CA, 0.2)],
            severity: 9_000.0,
            lags_h: vec![0, 0],
        },
        OutageEvent {
            id: 1,
            name: "isp".into(),
            cause: Cause::IspNetwork(Provider::Spectrum),
            start: Hour(700),
            duration_h: 5,
            states: vec![(State::CA, 0.2)],
            severity: 8_000.0,
            lags_h: vec![0],
        },
    ];
    for (i, start) in (40..1000).step_by(70).enumerate() {
        for (j, state) in [State::TX, State::CA].into_iter().enumerate() {
            events.push(OutageEvent {
                id: 100 + (i * 2 + j) as u32,
                name: format!("anchor-{i}-{state}"),
                cause: Cause::IspNetwork(Provider::Frontier),
                start: Hour(start + 11 * j as i64),
                duration_h: 2,
                states: vec![(state, 0.02)],
                severity: 8_000.0,
                lags_h: vec![0],
            });
        }
    }
    let mut scenario = Scenario::single_region(State::TX, vec![]);
    scenario.params.regions = vec![State::TX, State::CA];
    scenario.events = events;
    scenario.events.sort_by_key(|e| (e.start, e.id));
    scenario
}

#[test]
fn http_study_matches_in_process_study() {
    let scenario = world();
    let service = Arc::new(TrendsService::with_defaults(scenario));

    let server = Server::new(trends_router(Arc::clone(&service)))
        .with_rate_limiter(RateLimiterConfig {
            capacity: 60.0,
            refill_per_sec: 400.0,
            ..RateLimiterConfig::default()
        })
        .with_workers(6)
        .bind("127.0.0.1:0")
        .expect("bind");

    let units: Vec<Arc<dyn TrendsClient>> = (1..=3)
        .map(|i| {
            Arc::new(
                HttpTrendsClient::new(server.addr(), format!("127.0.0.{i}")).with_retry(
                    RetryPolicy {
                        max_attempts: 20,
                        base_backoff: Duration::from_millis(5),
                        max_backoff: Duration::from_millis(200),
                        jitter: true,
                    },
                ),
            ) as Arc<dyn TrendsClient>
        })
        .collect();
    let http_client = RoundRobin::new(units);

    let params = StudyParams {
        range: HourRange::new(Hour(0), Hour(1000)),
        regions: vec![State::TX, State::CA],
        threads: 2,
        ..StudyParams::default()
    };

    let over_http = run_study(&http_client, &params).expect("study over http");
    let direct = run_study(service.as_ref(), &params).expect("study in process");

    assert_eq!(over_http.spikes.len(), direct.spikes.len());
    for (a, b) in over_http.spikes.iter().zip(direct.spikes.iter()) {
        assert_eq!(a.spike, b.spike);
        assert_eq!(a.annotations, b.annotations);
    }
    assert_eq!(over_http.clusters.len(), direct.clusters.len());
    assert_eq!(over_http.heavy_hitters, direct.heavy_hitters);

    // Both injected events were found and annotated sensibly.
    let power = over_http
        .spikes
        .iter()
        .find(|a| a.spike.state == State::TX && a.spike.window().contains(Hour(303)))
        .expect("power spike detected over http");
    assert!(power.power_annotated());

    server.shutdown();
}

#[test]
fn rate_limited_single_identity_still_completes() {
    // One unit behind a tight limiter: the crawl must finish (slowly)
    // thanks to Retry-After handling, and the results stay correct. The
    // bucket is small enough that back-to-back in-process requests are
    // guaranteed to overrun it (the client would need >20ms between
    // requests to stay under the refill rate).
    let scenario = world();
    let service = Arc::new(TrendsService::with_defaults(scenario));
    let server = Server::new(trends_router(Arc::clone(&service)))
        .with_rate_limiter(RateLimiterConfig {
            capacity: 2.0,
            refill_per_sec: 50.0,
            ..RateLimiterConfig::default()
        })
        .bind("127.0.0.1:0")
        .expect("bind");

    let unit = HttpTrendsClient::new(server.addr(), "127.0.0.9").with_retry(RetryPolicy {
        max_attempts: 50,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        jitter: true,
    });
    let params = StudyParams {
        range: HourRange::new(Hour(0), Hour(400)),
        regions: vec![State::TX],
        threads: 1,
        daily_rising: false,
        ..StudyParams::default()
    };
    let result = run_study(&unit, &params).expect("rate-limited study completes");
    assert!(result.stats.frames_requested > 0);

    // The tight limiter must actually have fired, and every rejection is
    // accounted per identity in the global registry (the identity is unique
    // to this test, so concurrent tests cannot disturb the counter).
    let rejected = sift::obs::counter(
        "sift_ratelimit_rejected_total",
        &[("identity", "127.0.0.9")],
    )
    .get();
    assert!(
        rejected > 0,
        "expected the 25-token limiter to reject at least once"
    );
    server.shutdown();
}

//! Nemesis acceptance: a sharded study run under a seeded chaos schedule
//! — the coordinator killed and restarted mid-run, a worker partitioned
//! from it and healed — must converge to a `StudyResult` spike-for-spike
//! identical to the clean baseline, re-crawling at most the shards that
//! were in flight when the coordinator died.
//!
//! The schedule is `NemesisPlan::random(seed, …)`: a pure function of
//! the seed, so a failure replays exactly.

use sift::cluster::{
    ClusterConfig, NemesisCluster, NemesisReport, StatusReply, WorkerConfig, COORDINATOR,
};
use sift::core::{run_study, StudyParams, StudyResult};
use sift::fetcher::{trends_router, HttpTrendsClient};
use sift::geo::State;
use sift::journal::testutil::scratch_dir;
use sift::net::{FaultKind, FaultPlan, NemesisPlan, Server, ServerHandle};
use sift::simtime::{Hour, HourRange};
use sift::trends::terms::Provider;
use sift::trends::{Cause, OutageEvent, PowerTrigger, Scenario, TrendsService};
use std::sync::Arc;
use std::time::Duration;

/// The same seeded world the cluster acceptance test replays: responses
/// are a pure function of request coordinates, so the baseline process
/// and every worker (including re-crawls after a crash) see identical
/// bytes.
fn world(regions: &[State]) -> Scenario {
    let mut events = vec![
        OutageEvent {
            id: 0,
            name: "power".into(),
            cause: Cause::Power(PowerTrigger::Storm),
            start: Hour(300),
            duration_h: 8,
            states: vec![(State::TX, 0.3), (State::CA, 0.2)],
            severity: 9_000.0,
            lags_h: vec![0, 0],
        },
        OutageEvent {
            id: 1,
            name: "isp".into(),
            cause: Cause::IspNetwork(Provider::Spectrum),
            start: Hour(600),
            duration_h: 5,
            states: vec![(State::CA, 0.2)],
            severity: 8_000.0,
            lags_h: vec![0],
        },
    ];
    for (i, start) in (40..800).step_by(70).enumerate() {
        for (j, state) in [State::TX, State::CA].into_iter().enumerate() {
            events.push(OutageEvent {
                id: 100 + (i * 2 + j) as u32,
                name: format!("anchor-{i}-{state}"),
                cause: Cause::IspNetwork(Provider::Frontier),
                start: Hour(start + 11 * j as i64),
                duration_h: 2,
                states: vec![(state, 0.02)],
                severity: 8_000.0,
                lags_h: vec![0],
            });
        }
    }
    let mut scenario = Scenario::single_region(State::TX, vec![]);
    scenario.params.regions = regions.to_vec();
    scenario.events = events;
    scenario.events.sort_by_key(|e| (e.start, e.id));
    scenario
}

fn study_params(regions: &[State]) -> StudyParams {
    StudyParams {
        range: HourRange::new(Hour(0), Hour(800)),
        regions: regions.to_vec(),
        threads: 2,
        ..StudyParams::default()
    }
}

/// The trends service, optionally slowed down: a deterministic stall on
/// every `/api` request floors the crawl duration so fixed-offset
/// nemesis operations land mid-run instead of after convergence. A
/// stall changes timing only — response bytes stay a pure function of
/// the request — so the stalled run must still equal the clean baseline.
fn serve_trends(regions: &[State], stall: Option<Duration>) -> ServerHandle {
    let mut server = Server::new(trends_router(Arc::new(TrendsService::with_defaults(
        world(regions),
    ))))
    .with_workers(8);
    if let Some(stall) = stall {
        server = server.with_fault_plan(
            FaultPlan::new(0)
                .route("/api", &[(FaultKind::Stall, 1.0)])
                .with_stall(stall),
        );
    }
    server.bind("127.0.0.1:0").expect("bind trends service")
}

fn assert_same_result(sharded: &StudyResult, baseline: &StudyResult, what: &str) {
    assert_eq!(
        sharded.spikes.len(),
        baseline.spikes.len(),
        "{what}: spike count diverged"
    );
    for (a, b) in sharded.spikes.iter().zip(baseline.spikes.iter()) {
        assert_eq!(a.spike, b.spike, "{what}: spike diverged");
        assert_eq!(a.annotations, b.annotations, "{what}: annotations diverged");
    }
    assert_eq!(
        sharded.timelines, baseline.timelines,
        "{what}: timelines diverged"
    );
    assert_eq!(
        sharded.heavy_hitters, baseline.heavy_hitters,
        "{what}: heavy hitters diverged"
    );
    assert_eq!(
        sharded.stats.frames_requested, baseline.stats.frames_requested,
        "{what}: frame accounting diverged"
    );
}

/// The clean single-process reference, over HTTP like the workers.
fn baseline(regions: &[State]) -> StudyResult {
    let server = serve_trends(regions, None);
    let client = HttpTrendsClient::new(server.addr(), "127.0.0.20");
    let result = run_study(&client, &study_params(regions)).expect("baseline study");
    server.shutdown();
    result
}

/// One full nemesis run: boot the cluster, drive the seeded schedule,
/// return the report for audits.
fn run_under_nemesis(seed: u64, regions: &[State], tag: &str) -> NemesisReportPair {
    let params = study_params(regions);
    let trends = serve_trends(regions, Some(Duration::from_millis(8)));
    let dir = scratch_dir(&format!("nemesis_http_{tag}"));
    let worker_ids: Vec<String> = (0..3).map(|i| format!("worker-{i}")).collect();
    let config = ClusterConfig {
        heartbeat_interval: Duration::from_millis(75),
        miss_threshold: 4,
        poll_ms: 10,
        // Nemesis burns attempts freely (every expiry of a partitioned
        // holder counts); the budget bounds pathology, not chaos.
        attempt_budget: 10,
        vnodes: 40,
        checkpoint_every: 8,
    };
    let worker_config = WorkerConfig {
        // Sized to span the schedule's kill→restart gap with margin.
        coord_down_grace: Some(Duration::from_secs(20)),
        ..WorkerConfig::default()
    };
    let cluster = NemesisCluster::start(
        params,
        config,
        trends.addr(),
        dir,
        &worker_ids,
        &worker_config,
    )
    .expect("boot nemesis cluster");
    let plan = NemesisPlan::random(seed, COORDINATOR, &worker_ids, 4_000);
    let report = cluster
        .run(plan.clone(), Duration::from_secs(180))
        .expect("nemesis run converges");
    trends.shutdown();
    NemesisReportPair { plan, report }
}

struct NemesisReportPair {
    plan: NemesisPlan,
    report: NemesisReport,
}

fn grants_for(status: &StatusReply, state: State) -> u32 {
    status
        .shard_attempts
        .iter()
        .find(|(s, _)| *s == state)
        .map(|(_, g)| *g)
        .unwrap_or(0)
}

#[test]
fn seeded_nemesis_schedule_converges_to_the_clean_baseline() {
    let regions = [State::TX, State::CA, State::NY, State::FL];
    let reference = baseline(&regions);
    let NemesisReportPair { plan, report } = run_under_nemesis(42, &regions, "seed42");

    // The schedule really did both halves of the chaos contract.
    assert_eq!(report.coordinator_kills, 1, "plan kills the coordinator");
    assert_eq!(report.coordinator_restarts, 1, "plan restarts it");
    assert!(
        plan.steps
            .iter()
            .any(|s| s.op.to_string().starts_with("partition")),
        "plan partitions a worker: {plan:?}"
    );

    // Spike-for-spike equality with the uninterrupted run.
    assert_same_result(&report.result, &reference, "nemesis seed 42");
    assert_eq!(report.status.done, regions.len());
    assert_eq!(report.status.failed, 0);

    // The restart is visible in the audit trail: exactly one recovery,
    // and the fencing epoch cleared everything the first incarnation
    // granted.
    assert_eq!(report.status.recoveries, 1, "{:?}", report.status);
    let pre_kill = report
        .pre_kill_status
        .as_ref()
        .expect("kill captured a pre-crash snapshot");
    assert!(
        report.status.epoch > pre_kill.epoch,
        "fence must move past the first incarnation: {} <= {}",
        report.status.epoch,
        pre_kill.epoch
    );

    // Re-crawl bound: a shard accepted before the kill must never be
    // granted again — only in-flight shards may burn extra grants.
    for state in &pre_kill.done_states {
        assert_eq!(
            grants_for(&report.status, *state),
            grants_for(pre_kill, *state),
            "done shard {state} was re-granted after the coordinator restart"
        );
    }
    // And the accepted set only ever grows across the crash.
    for state in &pre_kill.done_states {
        assert!(
            report.status.done_states.contains(state),
            "accepted shard {state} was lost by the restart"
        );
    }
}

#[test]
fn asymmetric_partition_zombie_uploads_are_fenced_but_the_run_converges() {
    use sift::net::NemesisOp;
    let regions = [State::TX, State::CA];
    let reference = baseline(&regions);

    let params = study_params(&regions);
    let trends = serve_trends(&regions, Some(Duration::from_millis(8)));
    let dir = scratch_dir("nemesis_http_asym");
    let worker_ids: Vec<String> = (0..2).map(|i| format!("worker-{i}")).collect();
    let config = ClusterConfig {
        heartbeat_interval: Duration::from_millis(75),
        miss_threshold: 4,
        poll_ms: 10,
        attempt_budget: 10,
        vnodes: 40,
        checkpoint_every: 8,
    };
    let cluster = NemesisCluster::start(
        params,
        config,
        trends.addr(),
        dir,
        &worker_ids,
        &WorkerConfig::default(),
    )
    .expect("boot nemesis cluster");

    // A hand-built schedule: requests from worker-0 are delivered but
    // its replies vanish (the zombie-lease shape), healed a second
    // later. No coordinator kill here — this isolates epoch fencing.
    let plan = NemesisPlan::new(0)
        .step(
            400,
            NemesisOp::PartitionAsym {
                from: "worker-0".into(),
                to: COORDINATOR.into(),
            },
        )
        .step(
            1_400,
            NemesisOp::Heal {
                a: "worker-0".into(),
                b: COORDINATOR.into(),
            },
        );
    let report = cluster
        .run(plan, Duration::from_secs(180))
        .expect("asym partition run converges");
    trends.shutdown();

    assert_same_result(&report.result, &reference, "asym partition");
    assert_eq!(report.status.done, regions.len());
    assert_eq!(report.status.failed, 0);
    assert_eq!(report.coordinator_kills, 0);
}

//! Chaos integration: the full study over live HTTP with seeded fault
//! injection must end with zero permanently-failed frames, the same
//! spike set as the fault-free run, fault/recovery counters visible in
//! `GET /metrics` — and replay bit-identically under the same seed.
//!
//! The chaos servers deliberately run *without* a rate limiter: limiter
//! 429s depend on wall-clock timing, while fault decisions are a pure
//! function of (seed, request, arrival count), which is what makes two
//! same-seed executions comparable.

use sift::core::{run_study, StudyParams, StudyResult};
use sift::fetcher::{
    plan_frames, trends_router, CollectionRun, HttpTrendsClient, PlanParams, ResponseStore,
    TrendsClient, WorkItem,
};
use sift::geo::State;
use sift::net::{FaultKind, FaultPlan, HttpClient, Request, RetryPolicy, Server, ServerHandle};
use sift::simtime::{Hour, HourRange};
use sift::trends::terms::Provider;
use sift::trends::{
    Cause, FrameRequest, OutageEvent, PowerTrigger, Scenario, SearchTerm, TrendsService,
};
use std::sync::Arc;
use std::time::Duration;

fn world() -> Scenario {
    let mut events = vec![
        OutageEvent {
            id: 0,
            name: "power".into(),
            cause: Cause::Power(PowerTrigger::Storm),
            start: Hour(300),
            duration_h: 8,
            states: vec![(State::TX, 0.3)],
            severity: 9_000.0,
            lags_h: vec![0],
        },
        OutageEvent {
            id: 1,
            name: "isp".into(),
            cause: Cause::IspNetwork(Provider::Spectrum),
            start: Hour(700),
            duration_h: 5,
            states: vec![(State::TX, 0.2)],
            severity: 8_000.0,
            lags_h: vec![0],
        },
    ];
    for (i, start) in (40..900).step_by(70).enumerate() {
        events.push(OutageEvent {
            id: 100 + i as u32,
            name: format!("anchor-{i}"),
            cause: Cause::IspNetwork(Provider::Frontier),
            start: Hour(start),
            duration_h: 2,
            states: vec![(State::TX, 0.02)],
            severity: 8_000.0,
            lags_h: vec![0],
        });
    }
    let mut scenario = Scenario::single_region(State::TX, vec![]);
    scenario.events = events;
    scenario.events.sort_by_key(|e| (e.start, e.id));
    scenario
}

/// The acceptance mix: 5% resets, 5% internal errors, 2% truncations on
/// every API route.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).route(
        "/api",
        &[
            (FaultKind::Reset, 0.05),
            (FaultKind::InternalError, 0.05),
            (FaultKind::Truncate, 0.02),
        ],
    )
}

fn chaos_server(service: &Arc<TrendsService>, seed: u64) -> ServerHandle {
    Server::new(trends_router(Arc::clone(service)))
        .with_fault_plan(chaos_plan(seed))
        .with_workers(4)
        .bind("127.0.0.1:0")
        .expect("bind")
}

fn params() -> StudyParams {
    StudyParams {
        range: HourRange::new(Hour(0), Hour(900)),
        regions: vec![State::TX],
        threads: 1,
        ..StudyParams::default()
    }
}

fn study_over(server: &ServerHandle, identity: &str) -> StudyResult {
    let unit = HttpTrendsClient::new(server.addr(), identity).with_retry(RetryPolicy {
        max_attempts: 12,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(40),
        jitter: true,
    });
    run_study(&unit, &params()).expect("chaos study completes")
}

fn assert_same_spikes(a: &StudyResult, b: &StudyResult) {
    assert_eq!(a.spikes.len(), b.spikes.len());
    for (x, y) in a.spikes.iter().zip(b.spikes.iter()) {
        assert_eq!(x.spike, y.spike);
        assert_eq!(x.annotations, y.annotations);
    }
}

#[test]
fn chaos_study_matches_fault_free_and_replays_bit_identically() {
    let service = Arc::new(TrendsService::with_defaults(world()));

    // Fault-free reference: transport does not affect responses (see
    // pipeline_http.rs), so the in-process run is the baseline spike set.
    let baseline = run_study(service.as_ref(), &params()).expect("baseline study");

    let server = chaos_server(&service, 3);
    let chaos = study_over(&server, "127.0.0.21");

    // Same spike set as the fault-free run, with full frame coverage:
    // every injected fault was absorbed by a retry, none leaked into a
    // degraded or missing frame.
    assert_same_spikes(&chaos, &baseline);
    assert_eq!(chaos.stats.frames_degraded, 0);
    assert!(chaos
        .stats
        .coverage_by_state
        .iter()
        .all(|(_, c)| (c - 1.0).abs() < 1e-12));

    // The injected faults and the client's recoveries are both visible in
    // the live exposition.
    let metrics_client = HttpClient::new(server.addr());
    let resp = metrics_client
        .send_with_retry(&Request::get("/metrics"))
        .expect("metrics");
    let text = String::from_utf8(resp.body.to_vec()).expect("utf8 metrics");
    assert!(
        text.contains("sift_net_faults_injected_total{"),
        "missing fault counter in:\n{text}"
    );
    assert!(
        text.contains("sift_client_retries_total{status=\"io\"}"),
        "missing io-retry counter in:\n{text}"
    );
    server.shutdown();

    // Replay: a fresh server with the same seed and the same traffic
    // produces the exact same study — fault decisions are a function of
    // (seed, request, arrival), not of timing.
    let replay_server = chaos_server(&service, 3);
    let replay = study_over(&replay_server, "127.0.0.21");
    assert_same_spikes(&replay, &chaos);
    assert_eq!(replay.stats.frames_requested, chaos.stats.frames_requested);
    assert_eq!(replay.stats.rising_requested, chaos.stats.rising_requested);
    replay_server.shutdown();
}

#[test]
fn chaos_study_yields_one_connected_trace_per_region() {
    let service = Arc::new(TrendsService::with_defaults(world()));
    let server = chaos_server(&service, 3);

    // Root the run explicitly: everything the study does — pipeline
    // stages, every HTTP attempt, every server-side serve — must join
    // this one trace even while faults force retries and replays.
    let root = sift::obs::span_root("chaos-study");
    let trace_id = root.context().trace_id;
    let _chaos = study_over(&server, "127.0.0.22");
    drop(root);

    let trace = sift::obs::trace::wait_completed(trace_id, Duration::from_secs(30))
        .expect("chaos trace completes");
    server.shutdown();

    // One connected tree: a single root and no severed parentage — a
    // retry or fault replay must never surface as an orphan root.
    let roots: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.parent_id.is_none())
        .collect();
    assert_eq!(roots.len(), 1, "exactly one root span: {roots:?}");
    assert_eq!(roots[0].name, "chaos-study");
    assert!(
        trace.orphans().is_empty(),
        "no orphaned spans: {:?}",
        trace.orphans()
    );
    assert_eq!(
        trace.spans.iter().filter(|s| s.name == "region").count(),
        params().regions.len(),
        "one region span per studied region"
    );

    // The seeded fault mix forces client retries; each one must appear
    // as an attempt-numbered "request" child span inside the same trace.
    let request_spans: Vec<_> = trace.spans.iter().filter(|s| s.name == "request").collect();
    assert!(!request_spans.is_empty());
    assert!(request_spans.iter().all(|s| s.arg("attempt").is_some()));
    assert!(
        request_spans
            .iter()
            .any(|s| s.arg("attempt").is_some_and(|a| a >= 2)),
        "seeded faults must force at least one numbered retry attempt"
    );

    // Server-side spans joined the same tree across the HTTP boundary,
    // each parented on the exact client attempt that carried its header.
    let request_ids: std::collections::HashSet<u64> =
        request_spans.iter().map(|s| s.span_id).collect();
    let serve_spans: Vec<_> = trace.spans.iter().filter(|s| s.name == "serve").collect();
    assert!(!serve_spans.is_empty(), "server spans must join the trace");
    assert!(
        serve_spans
            .iter()
            .all(|s| s.parent_id.is_some_and(|p| request_ids.contains(&p))),
        "every serve span hangs off a client request attempt"
    );
}

#[test]
fn collection_run_over_chaos_http_recovers_every_frame() {
    let service = Arc::new(TrendsService::with_defaults(world()));
    let server = chaos_server(&service, 3);

    // Units with NO client-side retries: every injected fault surfaces as
    // a transport failure and must be absorbed by the queue's requeue
    // machinery instead.
    let units: Vec<Arc<dyn TrendsClient>> = (1..=3)
        .map(|i| {
            Arc::new(
                HttpTrendsClient::new(server.addr(), format!("127.0.0.3{i}")).with_retry(
                    RetryPolicy {
                        max_attempts: 1,
                        base_backoff: Duration::from_millis(1),
                        max_backoff: Duration::from_millis(1),
                        jitter: true,
                    },
                ),
            ) as Arc<dyn TrendsClient>
        })
        .collect();

    let plan = plan_frames(HourRange::new(Hour(0), Hour(900)), PlanParams::default());
    let items: Vec<WorkItem> = plan
        .frames
        .iter()
        .map(|f| {
            WorkItem::Frame(FrameRequest {
                term: SearchTerm::parse("topic:Internet outage"),
                state: State::TX,
                start: f.start,
                len: f.len() as u32,
                tag: 0,
            })
        })
        .collect();
    let n = items.len();
    let planned: Vec<Hour> = plan.frames.iter().map(|f| f.start).collect();

    let run = CollectionRun::new(units).with_attempt_budget(12);
    let mut store = ResponseStore::new();
    let report = run.execute(items, &mut store);

    assert_eq!(report.completed, n, "{report:?}");
    assert_eq!(report.failed, 0, "{report:?}");
    assert!(report.failed_items.is_empty(), "{report:?}");
    assert_eq!(store.frame_count(), n);
    assert!(
        store.missing_frames(State::TX, 0, &planned).is_empty(),
        "all planned frames recovered"
    );
    server.shutdown();
}

//! Live telemetry end-to-end: a study crawled over real HTTP sockets must
//! leave a consistent trail in `GET /metrics` — the service-side frame
//! counter and the per-route request-latency histogram both agree with the
//! client-side `StudyStats`.
//!
//! This file is its own test process, so the global registry holds exactly
//! the series this study produces.

use sift::core::{run_study, StudyParams};
use sift::fetcher::{trends_router, HttpTrendsClient};
use sift::geo::State;
use sift::net::{HttpClient, RateLimiterConfig, Request, Server};
use sift::simtime::{Hour, HourRange};
use sift::trends::terms::Provider;
use sift::trends::{Cause, OutageEvent, Scenario, TrendsService};
use std::sync::Arc;

/// The value of the first sample whose series line starts with `prefix`
/// (metric name plus any leading label block), or `None` if absent.
fn sample_value(exposition: &str, prefix: &str) -> Option<f64> {
    exposition
        .lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn metrics_endpoint_agrees_with_study_stats() {
    let mut scenario = Scenario::single_region(State::TX, vec![]);
    scenario.events = vec![OutageEvent {
        id: 0,
        name: "isp".into(),
        cause: Cause::IspNetwork(Provider::Spectrum),
        start: Hour(200),
        duration_h: 6,
        states: vec![(State::TX, 0.25)],
        severity: 9_000.0,
        lags_h: vec![0],
    }];
    let service = Arc::new(TrendsService::with_defaults(scenario));
    let server = Server::new(trends_router(Arc::clone(&service)))
        .bind("127.0.0.1:0")
        .expect("bind");

    let unit = HttpTrendsClient::new(server.addr(), "127.0.0.21");
    let params = StudyParams {
        range: HourRange::new(Hour(0), Hour(400)),
        regions: vec![State::TX],
        threads: 1,
        daily_rising: false,
        ..StudyParams::default()
    };
    let result = run_study(&unit, &params).expect("study over http");
    let frames = result.stats.frames_requested as f64;
    assert!(frames > 0.0);

    let resp = HttpClient::new(server.addr())
        .send(&Request::get("/metrics"))
        .expect("fetch /metrics");
    assert_eq!(resp.status.0, 200);
    assert_eq!(
        resp.headers.get("content-type"),
        Some(sift::net::METRICS_CONTENT_TYPE)
    );
    let text = String::from_utf8(resp.body.to_vec()).expect("utf-8 exposition");

    // Every frame the study requested was served by this process and is
    // visible in the live exposition.
    assert!(
        text.contains("# TYPE sift_trends_frames_served_total counter"),
        "missing frames-served TYPE line:\n{text}"
    );
    assert_eq!(
        sample_value(&text, "sift_trends_frames_served_total "),
        Some(frames),
        "frames served must match StudyStats.frames_requested:\n{text}"
    );

    // The request-latency histogram carries the same story per route.
    assert!(
        text.contains("# TYPE sift_http_request_seconds histogram"),
        "missing latency TYPE line:\n{text}"
    );
    let frame_count = sample_value(
        &text,
        "sift_http_request_seconds_count{route=\"/api/frame\"}",
    )
    .expect("frame-route latency count present");
    assert_eq!(frame_count, frames);
    let inf_bucket = sample_value(
        &text,
        "sift_http_request_seconds_bucket{route=\"/api/frame\",le=\"+Inf\"}",
    )
    .expect("+Inf bucket present");
    assert_eq!(inf_bucket, frames);
    let latency_sum = sample_value(&text, "sift_http_request_seconds_sum{route=\"/api/frame\"}")
        .expect("latency sum present");
    assert!(
        latency_sum > 0.0,
        "latencies must accumulate: {latency_sum}"
    );

    // Request totals cover the frame posts (status 200) as well.
    let ok_frames = sample_value(
        &text,
        "sift_http_requests_total{route=\"/api/frame\",status=\"200\"}",
    )
    .expect("per-status request counter present");
    assert_eq!(ok_frames, frames);

    // Study-stage spans recorded while the study ran over HTTP.
    assert!(
        text.contains("sift_span_seconds_count{span=\"fetch\"}"),
        "missing fetch span series:\n{text}"
    );
    assert!(!result.stats.telemetry.stages.is_empty());

    server.shutdown();
}

#[test]
fn metrics_expose_rate_limit_rejections() {
    let service = Arc::new(TrendsService::with_defaults(Scenario::single_region(
        State::TX,
        vec![],
    )));
    let server = Server::new(trends_router(Arc::clone(&service)))
        .with_rate_limiter(RateLimiterConfig {
            capacity: 2.0,
            refill_per_sec: 0.5,
            ..RateLimiterConfig::default()
        })
        .bind("127.0.0.1:0")
        .expect("bind");

    // Hammer past the 2-token burst under a declared identity; send() does
    // not retry, so each 429 surfaces directly.
    let hammer = HttpClient::new(server.addr()).with_identity("unit-hammer");
    let mut limited = 0u64;
    for _ in 0..6 {
        let resp = hammer.send(&Request::get("/healthz")).expect("send");
        if resp.status.0 == 429 {
            limited += 1;
        }
    }
    assert!(limited > 0, "expected the tight limiter to reject");

    // The scrape comes from a different identity (the peer IP), whose
    // fresh bucket admits it.
    let resp = HttpClient::new(server.addr())
        .send(&Request::get("/metrics"))
        .expect("fetch /metrics");
    assert_eq!(resp.status.0, 200);
    let text = String::from_utf8(resp.body.to_vec()).expect("utf-8 exposition");
    let rejected = sample_value(
        &text,
        "sift_ratelimit_rejected_total{identity=\"unit-hammer\"}",
    )
    .expect("rejection counter present in exposition");
    assert_eq!(rejected, limited as f64);

    server.shutdown();
}

//! Crash-consistency acceptance: a seeded HTTP crawl killed at each of
//! three durability boundaries — mid-journal-record, between a
//! checkpoint's temp write and its rename, and mid-refetch-round — must
//! resume to the *identical* spike set, timelines and clusters an
//! uninterrupted run produces, re-fetching at most the single response
//! that was in flight when the process died. The in-process harness
//! injects panics and recovers under `catch_unwind`; the out-of-process
//! harness spawns this test binary as a child, aborts it at a journal
//! boundary (no unwinding, no flushing — the closest stand-in for
//! `kill -9`) and resumes from the orphaned journal files.

use sift::core::{run_study, run_study_durable, StudyDurability, StudyParams, StudyResult};
use sift::fetcher::{trends_router, HttpTrendsClient};
use sift::journal::testutil::scratch_dir;
use sift::journal::{CrashInjector, CrashMode, CrashPlan, CrashSite};
use sift::net::{Server, ServerHandle};
use sift::simtime::{Hour, HourRange};
use sift::trends::terms::Provider;
use sift::trends::{Cause, OutageEvent, PowerTrigger, Scenario, TrendsService};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;

/// The seeded world every run replays: two target events plus anchor
/// outages keeping the frame chain calibrated. Responses are a pure
/// function of request coordinates and the scenario seed, so independent
/// service instances (even in different processes) serve identical bytes.
fn world() -> Scenario {
    let mut events = vec![
        OutageEvent {
            id: 0,
            name: "power".into(),
            cause: Cause::Power(PowerTrigger::Storm),
            start: Hour(300),
            duration_h: 8,
            states: vec![(sift::geo::State::TX, 0.3), (sift::geo::State::CA, 0.2)],
            severity: 9_000.0,
            lags_h: vec![0, 0],
        },
        OutageEvent {
            id: 1,
            name: "isp".into(),
            cause: Cause::IspNetwork(Provider::Spectrum),
            start: Hour(600),
            duration_h: 5,
            states: vec![(sift::geo::State::CA, 0.2)],
            severity: 8_000.0,
            lags_h: vec![0],
        },
    ];
    for (i, start) in (40..800).step_by(70).enumerate() {
        for (j, state) in [sift::geo::State::TX, sift::geo::State::CA]
            .into_iter()
            .enumerate()
        {
            events.push(OutageEvent {
                id: 100 + (i * 2 + j) as u32,
                name: format!("anchor-{i}-{state}"),
                cause: Cause::IspNetwork(Provider::Frontier),
                start: Hour(start + 11 * j as i64),
                duration_h: 2,
                states: vec![(state, 0.02)],
                severity: 8_000.0,
                lags_h: vec![0],
            });
        }
    }
    let mut scenario = Scenario::single_region(sift::geo::State::TX, vec![]);
    scenario.params.regions = vec![sift::geo::State::TX, sift::geo::State::CA];
    scenario.events = events;
    scenario.events.sort_by_key(|e| (e.start, e.id));
    scenario
}

fn study_params() -> StudyParams {
    StudyParams {
        range: HourRange::new(Hour(0), Hour(800)),
        regions: vec![sift::geo::State::TX, sift::geo::State::CA],
        threads: 2,
        ..StudyParams::default()
    }
}

/// A fresh service + HTTP server + client (no rate limiter: every
/// service-side `frames_served` tick is then exactly one study fetch,
/// which the zero-refetch accounting below relies on).
fn http_stack(identity: &str) -> (Arc<TrendsService>, ServerHandle, HttpTrendsClient) {
    let service = Arc::new(TrendsService::with_defaults(world()));
    let server = Server::new(trends_router(Arc::clone(&service)))
        .with_workers(4)
        .bind("127.0.0.1:0")
        .expect("bind");
    let client = HttpTrendsClient::new(server.addr(), identity);
    (service, server, client)
}

fn assert_same_result(resumed: &StudyResult, baseline: &StudyResult, what: &str) {
    assert_eq!(
        resumed.spikes.len(),
        baseline.spikes.len(),
        "{what}: spike count diverged"
    );
    for (a, b) in resumed.spikes.iter().zip(baseline.spikes.iter()) {
        assert_eq!(a.spike, b.spike, "{what}: spike diverged");
        assert_eq!(a.annotations, b.annotations, "{what}: annotations diverged");
    }
    assert_eq!(
        resumed.timelines, baseline.timelines,
        "{what}: timelines diverged"
    );
    assert_eq!(
        resumed.clusters.len(),
        baseline.clusters.len(),
        "{what}: clusters diverged"
    );
    assert_eq!(
        resumed.heavy_hitters, baseline.heavy_hitters,
        "{what}: heavy hitters diverged"
    );
}

/// Runs the uninterrupted reference crawls; returns the plain result and
/// the number of requests an uninterrupted *durable* run costs. The two
/// baselines differ: journaling dedupes repeat rising fetches within a
/// run (recorded once, replayed after), so the durable run is the fair
/// served-count yardstick — after first asserting it produces the exact
/// same result as the journal-free path.
fn baseline() -> (StudyResult, u64) {
    let (_plain_service, plain_server, plain_client) = http_stack("127.0.0.10");
    let result = run_study(&plain_client, &study_params()).expect("uninterrupted study");
    plain_server.shutdown();

    let (service, server, client) = http_stack("127.0.0.10");
    let durable = run_study_durable(
        &client,
        &study_params(),
        &StudyDurability::new(scratch_dir("resume_http_baseline")),
    )
    .expect("uninterrupted durable study");
    let stats = service.stats();
    server.shutdown();
    assert_same_result(&durable, &result, "uninterrupted durable vs plain");
    (result, stats.frames_served + stats.rising_served)
}

#[test]
fn crawl_killed_at_each_crash_point_resumes_to_the_identical_result() {
    let (reference, served_uninterrupted) = baseline();

    // The three pinned crash points of the acceptance criteria.
    let crash_points = [
        (CrashSite::MidJournalRecord, 5, "mid-journal-record"),
        (
            CrashSite::CheckpointTempWritten,
            2,
            "checkpoint temp-vs-rename",
        ),
        (CrashSite::AfterJournalRecord, 13, "mid-refetch-round"),
    ];

    for (site, occurrence, what) in crash_points {
        // Crashed and resumed runs share one service instance, so its
        // counters accumulate the combined network cost of both lives.
        let (service, server, client) = http_stack("127.0.0.11");
        let dir = scratch_dir(&format!("resume_http_{}", site.label()));

        let inj = Arc::new(CrashInjector::new(
            CrashPlan::nowhere().at(site, occurrence),
        ));
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            let durability = StudyDurability::new(&dir).with_crash(Arc::clone(&inj));
            let _ = run_study_durable(&client, &study_params(), &durability);
        }))
        .is_err();
        assert!(crashed && inj.tripped(), "{what}: injected crash must fire");

        let resumed = run_study_durable(&client, &study_params(), &StudyDurability::new(&dir))
            .expect("resumed study");
        let stats = service.stats();
        server.shutdown();

        assert_same_result(&resumed, &reference, what);
        assert!(
            resumed.stats.frames_replayed > 0,
            "{what}: resume must replay journaled work, stats: {:?}",
            resumed.stats
        );

        // Zero-refetch invariant: across both lives, the service saw the
        // uninterrupted workload plus at most the one response that was
        // in flight at the crash.
        let served = stats.frames_served + stats.rising_served;
        assert!(
            served >= served_uninterrupted,
            "{what}: served {served} < uninterrupted {served_uninterrupted}"
        );
        assert!(
            served <= served_uninterrupted + 1,
            "{what}: {} journaled responses were re-fetched",
            served - served_uninterrupted
        );
    }
}

const CHILD_ENV: &str = "SIFT_RESUME_CHILD_DIR";

/// The child's half of the out-of-process harness: crawl durably against
/// its own server and die by `abort()` at a journal boundary. Never
/// returns through the normal path unless the injector failed to fire —
/// then it exits 0, which the parent treats as a harness failure.
fn child_crawl_and_abort(dir: &Path) {
    let (_service, _server, client) = http_stack("127.0.0.12");
    let inj = Arc::new(CrashInjector::new(
        CrashPlan::nowhere()
            .at(CrashSite::AfterJournalRecord, 11)
            .with_mode(CrashMode::Abort),
    ));
    let durability = StudyDurability::new(dir).with_crash(inj);
    let _ = run_study_durable(&client, &study_params(), &durability);
    std::process::exit(0);
}

#[test]
fn process_killed_without_unwinding_resumes_to_the_identical_result() {
    if let Ok(dir) = std::env::var(CHILD_ENV) {
        child_crawl_and_abort(Path::new(&dir));
        unreachable!("child must abort or exit");
    }

    let (reference, _) = baseline();
    let dir = scratch_dir("resume_http_child");

    let exe = std::env::current_exe().expect("test binary path");
    let status = std::process::Command::new(exe)
        .arg("process_killed_without_unwinding_resumes_to_the_identical_result")
        .arg("--exact")
        .arg("--test-threads=1")
        .env(CHILD_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn child test process");
    assert!(
        !status.success(),
        "child must die at the injected abort, not complete"
    );

    // The orphaned journal files survive the kill; resuming from them in
    // this process reproduces the reference result.
    let resumed = run_study_durable(
        &http_stack("127.0.0.13").2,
        &study_params(),
        &StudyDurability::new(&dir),
    )
    .expect("resume from the killed child's journals");
    assert_same_result(&resumed, &reference, "out-of-process kill");
    assert!(
        resumed.stats.frames_replayed > 0,
        "resume must replay the child's journaled work"
    );
}
